//! RT-level power and area estimation.
//!
//! This crate stands in for the RT-level estimator of [19] the paper plugs
//! its trace statistics into: average power is computed per RT-level unit
//! from effective switched capacitance, supply voltage, switching activity
//! and activation counts, and reported as a [`PowerBreakdown`] over
//! functional units, registers, multiplexer networks, controller and clock —
//! the same decomposition the paper uses when it observes that "interconnect
//! in the form of multiplexer networks may consume more than 40 % of the
//! total power of a CFI circuit".
//!
//! Average power of one unit is
//!
//! ```text
//! P = C_eff · Vdd² · activity · activations_per_pass / (ENC · T_clk)
//! ```
//!
//! with `C_eff` from the module library, activity and activation counts from
//! trace manipulation (`impact-trace`) and the expected number of cycles from
//! the schedule.
//!
//! # Example
//!
//! ```
//! use impact_power::{PowerConfig, PowerEstimator};
//! use impact_rtl::RtlDesign;
//! use impact_sched::{uniform_problem, Scheduler, WaveScheduler};
//! use impact_trace::RtTraces;
//!
//! let cdfg = impact_hdl::compile(
//!     "design d { input a: 8, b: 8; output y: 8; y = a + b; }",
//! )?;
//! let trace = impact_behsim::simulate(&cdfg, &[vec![1, 2], vec![200, 9]])?;
//! let library = impact_modlib::ModuleLibrary::standard();
//! let design = RtlDesign::initial_parallel(&cdfg, &library);
//! let schedule = WaveScheduler::new().schedule(&uniform_problem(&cdfg, trace.profile()))?;
//! let rt = RtTraces::new(&cdfg, &design, &trace);
//! let estimator = PowerEstimator::new(&library, PowerConfig::default());
//! let breakdown = estimator.estimate(&cdfg, &design, &rt, &schedule);
//! assert!(breakdown.total_mw() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod estimator;

pub use estimator::{
    FuPowerProfile, MuxPowerProfile, PowerBreakdown, PowerConfig, PowerEstimator, PowerProfile,
    RegPowerProfile,
};
