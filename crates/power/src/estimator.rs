//! The RT-level power and area estimator.

use impact_cdfg::Cdfg;
use impact_modlib::{ModuleLibrary, VDD_REFERENCE};
use impact_rtl::{MuxTree, RtlDesign};
use impact_sched::SchedulingResult;
use impact_trace::RtTraces;

/// Technology and operating-point parameters of the estimator.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Effective controller capacitance switched per cycle and per state of
    /// the FSM, in picofarads.
    pub controller_cap_per_state_pf: f64,
    /// Effective controller capacitance switched per cycle and per
    /// transition of the FSM, in picofarads.
    pub controller_cap_per_transition_pf: f64,
    /// Clock-network capacitance per register bit, switched every cycle, in
    /// picofarads.
    pub clock_cap_per_bit_pf: f64,
    /// Controller area in equivalent gates per state.
    pub controller_area_per_state: f64,
    /// Controller area in equivalent gates per transition.
    pub controller_area_per_transition: f64,
    /// Fraction of a functional unit's per-activation switching that it also
    /// pays in every cycle in which it is *idle* but its operand registers
    /// keep toggling (no operand isolation, as in the paper's technology).
    /// This is what makes resource sharing able to "reduce physical
    /// capacitance" in the cost function.
    pub idle_switching_fraction: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            vdd: VDD_REFERENCE,
            controller_cap_per_state_pf: 0.004,
            controller_cap_per_transition_pf: 0.0015,
            clock_cap_per_bit_pf: 0.0008,
            controller_area_per_state: 24.0,
            controller_area_per_transition: 6.0,
            idle_switching_fraction: 0.30,
        }
    }
}

impl PowerConfig {
    /// Returns a copy operating at a different supply voltage.
    pub fn at_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }
}

/// Average power split over the RT-level structures, in milliwatts.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PowerBreakdown {
    /// Functional units (adders, multipliers, comparators, …).
    pub functional_units_mw: f64,
    /// Registers.
    pub registers_mw: f64,
    /// Multiplexer networks (the interconnect the restructuring move attacks).
    pub multiplexers_mw: f64,
    /// Controller (FSM) power.
    pub controller_mw: f64,
    /// Clock network power.
    pub clock_mw: f64,
}

impl PowerBreakdown {
    /// Total average power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.functional_units_mw
            + self.registers_mw
            + self.multiplexers_mw
            + self.controller_mw
            + self.clock_mw
    }

    /// Fraction of the total consumed by the multiplexer networks.
    pub fn mux_share(&self) -> f64 {
        let total = self.total_mw();
        if total > 0.0 {
            self.multiplexers_mw / total
        } else {
            0.0
        }
    }
}

/// The estimator: library characterization plus operating point.
#[derive(Clone, Debug)]
pub struct PowerEstimator<'lib> {
    library: &'lib ModuleLibrary,
    config: PowerConfig,
}

impl<'lib> PowerEstimator<'lib> {
    /// Creates an estimator over the given library and configuration.
    pub fn new(library: &'lib ModuleLibrary, config: PowerConfig) -> Self {
        Self { library, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Estimates the average power of one design point.
    ///
    /// `traces` must view the same CDFG and RTL design; `schedule` provides
    /// the expected number of cycles per pass and the controller size.
    pub fn estimate(
        &self,
        cdfg: &Cdfg,
        design: &RtlDesign,
        traces: &RtTraces<'_>,
        schedule: &SchedulingResult,
    ) -> PowerBreakdown {
        let vdd_sq = self.config.vdd * self.config.vdd;
        let enc = schedule.enc.max(1.0);
        let pass_time_ns = enc * schedule.stg.clock_ns();

        // Functional units: energy per activation is C·Vdd²·activity, plus a
        // reduced idle-switching term for every cycle the unit sits unused
        // while its operand registers toggle.
        let mut fu_energy_pj = 0.0;
        for (fu_id, unit) in design.functional_units() {
            let c = self
                .library
                .variant(unit.module)
                .capacitance_for_width(unit.width);
            let activity = traces.fu_input_activity(fu_id).max(0.01);
            let activations = traces.fu_activations_per_pass(fu_id);
            let idle_cycles = (enc - activations).max(0.0);
            fu_energy_pj += c * vdd_sq * activity * activations;
            fu_energy_pj +=
                c * vdd_sq * self.config.idle_switching_fraction * activity * idle_cycles;
        }

        // Registers.
        let mut reg_energy_pj = 0.0;
        let mut reg_bits = 0.0;
        for (reg_id, reg) in design.registers() {
            let c = self.library.register().capacitance_for_width(reg.width);
            let activity = traces.register_activity(reg_id).max(0.01);
            let writes = traces.register_writes_per_pass(reg_id);
            reg_energy_pj += c * vdd_sq * activity * writes;
            reg_bits += f64::from(reg.width);
        }

        // Multiplexer networks: the tree activity follows the paper's
        // equations, with the Huffman-restructured shape where the design
        // says so.
        let mut mux_energy_pj = 0.0;
        for site in design.mux_sites(cdfg) {
            if site.fan_in() < 2 {
                continue;
            }
            let sources = traces.mux_source_stats(&site);
            let tree = if design.is_restructured(site.sink) {
                MuxTree::huffman(sources)
            } else {
                MuxTree::balanced(sources)
            };
            let c = self.library.mux2().capacitance_for_width(site.width);
            let selections = traces.mux_selections_per_pass(&site);
            mux_energy_pj += c * vdd_sq * tree.switching_activity() * selections;
        }

        // Controller: switched every cycle, sized by states and transitions.
        let states = schedule.stg.state_count() as f64;
        let transitions = schedule.stg.transition_count() as f64;
        let controller_energy_pj = enc
            * vdd_sq
            * (self.config.controller_cap_per_state_pf * states
                + self.config.controller_cap_per_transition_pf * transitions);

        // Clock network: every register bit is clocked every cycle.
        let clock_energy_pj = enc * vdd_sq * self.config.clock_cap_per_bit_pf * reg_bits;

        // pJ / ns = mW.
        PowerBreakdown {
            functional_units_mw: fu_energy_pj / pass_time_ns,
            registers_mw: reg_energy_pj / pass_time_ns,
            multiplexers_mw: mux_energy_pj / pass_time_ns,
            controller_mw: controller_energy_pj / pass_time_ns,
            clock_mw: clock_energy_pj / pass_time_ns,
        }
    }

    /// Total area (datapath plus controller) in equivalent gates.
    pub fn area(&self, cdfg: &Cdfg, design: &RtlDesign, schedule: &SchedulingResult) -> f64 {
        let datapath = design.datapath_area(cdfg, self.library);
        let controller = self.config.controller_area_per_state * schedule.stg.state_count() as f64
            + self.config.controller_area_per_transition * schedule.stg.transition_count() as f64;
        datapath + controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_behsim::{simulate, ExecutionTrace};
    use impact_cdfg::OpClass;
    use impact_hdl::compile;
    use impact_sched::{uniform_problem, Scheduler, WaveScheduler};

    fn setup(src: &str, inputs: &[Vec<i64>]) -> (Cdfg, ExecutionTrace, SchedulingResult) {
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, inputs).unwrap();
        let schedule = WaveScheduler::new()
            .schedule(&uniform_problem(&cdfg, trace.profile()))
            .unwrap();
        (cdfg, trace, schedule)
    }

    fn gcd_inputs() -> Vec<Vec<i64>> {
        (1..20).map(|i| vec![3 * i + 1, 2 * i + 5]).collect()
    }

    const GCD: &str = "design gcd { input a: 8, b: 8; output r: 8; var x: 8; var y: 8;
        x = a; y = b;
        while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
        r = x; }";

    #[test]
    fn breakdown_components_are_positive_and_sum_to_total() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let b = estimator.estimate(&cdfg, &design, &rt, &schedule);
        assert!(b.functional_units_mw > 0.0);
        assert!(b.registers_mw > 0.0);
        assert!(b.multiplexers_mw > 0.0);
        assert!(b.controller_mw > 0.0);
        assert!(b.clock_mw > 0.0);
        let sum = b.functional_units_mw
            + b.registers_mw
            + b.multiplexers_mw
            + b.controller_mw
            + b.clock_mw;
        assert!((b.total_mw() - sum).abs() < 1e-12);
        assert!(b.mux_share() > 0.0 && b.mux_share() < 1.0);
    }

    #[test]
    fn power_scales_quadratically_with_vdd() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let p5 = PowerEstimator::new(&lib, PowerConfig::default())
            .estimate(&cdfg, &design, &rt, &schedule)
            .total_mw();
        let p25 = PowerEstimator::new(&lib, PowerConfig::default().at_vdd(2.5))
            .estimate(&cdfg, &design, &rt, &schedule)
            .total_mw();
        assert!((p25 / p5 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn greedy_mux_restructuring_never_increases_mux_power() {
        // The Huffman construction is a heuristic, so IMPACT only keeps a
        // restructuring move when it actually reduces the estimate; applied
        // that way, the mux power never goes up.
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        // Share the two subtractors to create real muxes in front of an adder.
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let baseline = {
            let rt = RtTraces::new(&cdfg, &design, &trace);
            estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .multiplexers_mw
        };
        let mut current = baseline;
        for site in design.mux_sites(&cdfg) {
            design.set_restructured(site.sink, true);
            let rt = RtTraces::new(&cdfg, &design, &trace);
            let candidate = estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .multiplexers_mw;
            if candidate <= current {
                current = candidate;
            } else {
                design.set_restructured(site.sink, false);
            }
        }
        assert!(current <= baseline + 1e-12);
    }

    #[test]
    fn module_selection_changes_functional_unit_power() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let fast = {
            let rt = RtTraces::new(&cdfg, &design, &trace);
            estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .functional_units_mw
        };
        // Swap every adder to the low-capacitance ripple implementation.
        let ripple = lib.variant_by_name("ripple_adder").unwrap();
        for fu in design.units_of_class(OpClass::AddSub) {
            design.substitute_module(&lib, fu, ripple).unwrap();
        }
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let slow = estimator
            .estimate(&cdfg, &design, &rt, &schedule)
            .functional_units_mw;
        assert!(slow < fast, "ripple adders switch less capacitance");
    }

    #[test]
    fn longer_schedules_spread_the_same_energy_over_more_time() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let normal = estimator.estimate(&cdfg, &design, &rt, &schedule);
        let mut slow = schedule.clone();
        slow.enc *= 2.0;
        let relaxed = estimator.estimate(&cdfg, &design, &rt, &slow);
        // Datapath power halves; only the per-cycle controller/clock terms stay.
        assert!(relaxed.functional_units_mw < normal.functional_units_mw);
        assert!(relaxed.total_mw() < normal.total_mw());
    }

    #[test]
    fn area_includes_datapath_and_controller() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let total = estimator.area(&cdfg, &design, &schedule);
        let datapath = design.datapath_area(&cdfg, &lib);
        assert!(total > datapath);
        let _ = trace;
    }

    #[test]
    fn mux_networks_are_a_large_power_share_in_cfi_designs() {
        // The paper quotes >40% mux power for CFI circuits; our characterized
        // library should at least make the interconnect a major contributor
        // once units are shared.
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let comps = design.units_of_class(OpClass::Compare);
        design.share_fus(comps[0], comps[1]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let b = PowerEstimator::new(&lib, PowerConfig::default())
            .estimate(&cdfg, &design, &rt, &schedule);
        assert!(
            b.mux_share() > 0.15,
            "mux share should be substantial in a shared CFI datapath, got {:.3}",
            b.mux_share()
        );
    }
}
