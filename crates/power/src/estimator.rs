//! The RT-level power and area estimator.

use impact_cdfg::Cdfg;
use impact_modlib::{ModuleLibrary, VDD_REFERENCE};
use impact_rtl::{FuId, FunctionalUnit, MuxSite, MuxTree, RegId, Register, RtlDesign};
use impact_sched::SchedulingResult;
use impact_trace::RtTraces;

/// Technology and operating-point parameters of the estimator.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Effective controller capacitance switched per cycle and per state of
    /// the FSM, in picofarads.
    pub controller_cap_per_state_pf: f64,
    /// Effective controller capacitance switched per cycle and per
    /// transition of the FSM, in picofarads.
    pub controller_cap_per_transition_pf: f64,
    /// Clock-network capacitance per register bit, switched every cycle, in
    /// picofarads.
    pub clock_cap_per_bit_pf: f64,
    /// Controller area in equivalent gates per state.
    pub controller_area_per_state: f64,
    /// Controller area in equivalent gates per transition.
    pub controller_area_per_transition: f64,
    /// Fraction of a functional unit's per-activation switching that it also
    /// pays in every cycle in which it is *idle* but its operand registers
    /// keep toggling (no operand isolation, as in the paper's technology).
    /// This is what makes resource sharing able to "reduce physical
    /// capacitance" in the cost function.
    pub idle_switching_fraction: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            vdd: VDD_REFERENCE,
            controller_cap_per_state_pf: 0.004,
            controller_cap_per_transition_pf: 0.0015,
            clock_cap_per_bit_pf: 0.0008,
            controller_area_per_state: 24.0,
            controller_area_per_transition: 6.0,
            idle_switching_fraction: 0.30,
        }
    }
}

impl PowerConfig {
    /// Returns a copy operating at a different supply voltage.
    pub fn at_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Feeds the technology parameters that influence estimation into a
    /// content digest (the supply voltage is deliberately excluded: evaluation
    /// caches key supply-dependent results by the probed Vdd, and the config's
    /// own `vdd` field is overridden per probe via [`Self::at_vdd`]).
    pub fn fingerprint_into(&self, hasher: &mut impact_rtl::FingerprintHasher) {
        hasher.write_tag(0xB7);
        for parameter in [
            self.controller_cap_per_state_pf,
            self.controller_cap_per_transition_pf,
            self.clock_cap_per_bit_pf,
            self.controller_area_per_state,
            self.controller_area_per_transition,
            self.idle_switching_fraction,
        ] {
            hasher.write_f64(parameter);
        }
    }
}

/// Average power split over the RT-level structures, in milliwatts.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PowerBreakdown {
    /// Functional units (adders, multipliers, comparators, …).
    pub functional_units_mw: f64,
    /// Registers.
    pub registers_mw: f64,
    /// Multiplexer networks (the interconnect the restructuring move attacks).
    pub multiplexers_mw: f64,
    /// Controller (FSM) power.
    pub controller_mw: f64,
    /// Clock network power.
    pub clock_mw: f64,
}

impl PowerBreakdown {
    /// Total average power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.functional_units_mw
            + self.registers_mw
            + self.multiplexers_mw
            + self.controller_mw
            + self.clock_mw
    }

    /// Fraction of the total consumed by the multiplexer networks.
    pub fn mux_share(&self) -> f64 {
        let total = self.total_mw();
        if total > 0.0 {
            self.multiplexers_mw / total
        } else {
            0.0
        }
    }
}

/// Per-functional-unit slice of a [`PowerProfile`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FuPowerProfile {
    /// Effective switched capacitance of the unit, in picofarads.
    pub capacitance_pf: f64,
    /// Mean input switching activity (floored at 0.01 as in the estimator).
    pub activity: f64,
    /// Average activations per input pass.
    pub activations_per_pass: f64,
}

/// Per-register slice of a [`PowerProfile`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegPowerProfile {
    /// Effective switched capacitance of the register, in picofarads.
    pub capacitance_pf: f64,
    /// Mean per-write switching activity (floored at 0.01).
    pub activity: f64,
    /// Average writes per input pass.
    pub writes_per_pass: f64,
}

/// Per-mux-site slice of a [`PowerProfile`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MuxPowerProfile {
    /// Effective switched capacitance of one 2-to-1 mux at the site's width,
    /// in picofarads.
    pub capacitance_pf: f64,
    /// Total switching activity of the site's mux tree (Equation (7)), using
    /// the Huffman-restructured shape where the design says so.
    pub tree_activity: f64,
    /// Average selections per input pass.
    pub selections_per_pass: f64,
}

/// Supply-independent power/area coefficients of one design, derived once
/// from the traces and reused for every supply level the Vdd search probes.
///
/// [`PowerEstimator::estimate`] recomputes these coefficients on every call;
/// the incremental engine builds the profile once per design (via
/// [`PowerProfile::from_traces`] or [`PowerProfile::assemble`] with memoized
/// statistics) and calls [`PowerEstimator::estimate_profiled`] per level,
/// which is pure arithmetic. Both paths produce bit-identical breakdowns.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerProfile {
    /// One entry per active functional unit, in allocation order.
    pub fus: Vec<FuPowerProfile>,
    /// One entry per active register, in allocation order.
    pub regs: Vec<RegPowerProfile>,
    /// Total register bits (clock-network load).
    pub register_bits: f64,
    /// One entry per mux site with fan-in of at least two.
    pub muxes: Vec<MuxPowerProfile>,
    /// Datapath area in equivalent gates (controller area comes from the
    /// schedule and is added per evaluation).
    pub datapath_area: f64,
}

impl PowerProfile {
    /// Builds the profile directly from the traces (the uncached reference
    /// path).
    pub fn from_traces(
        library: &ModuleLibrary,
        cdfg: &Cdfg,
        design: &RtlDesign,
        traces: &RtTraces<'_>,
    ) -> Self {
        Self::assemble(
            library,
            cdfg,
            design,
            |fu, _| {
                let stats = traces.fu_stats(fu);
                (stats.input_activity, stats.activations_per_pass)
            },
            |reg, _| {
                let stats = traces.register_stats(reg);
                (stats.activity, stats.writes_per_pass)
            },
            |site, restructured| {
                let sources = traces.mux_source_stats(site);
                let tree = if restructured {
                    MuxTree::huffman(sources)
                } else {
                    MuxTree::balanced(sources)
                };
                (
                    tree.switching_activity(),
                    traces.mux_selections_per_pass(site),
                )
            },
        )
    }

    /// Builds the profile from caller-provided statistics: `fu_stats` returns
    /// `(input_activity, activations_per_pass)`, `reg_stats` returns
    /// `(activity, writes_per_pass)` and `mux_stats` returns
    /// `(tree_activity, selections_per_pass)` for a site and its restructured
    /// flag. This is the hook the evaluation cache uses to memoize trace
    /// statistics by structural content across candidate designs.
    pub fn assemble(
        library: &ModuleLibrary,
        cdfg: &Cdfg,
        design: &RtlDesign,
        fu_stats: impl FnMut(FuId, &FunctionalUnit) -> (f64, f64),
        reg_stats: impl FnMut(RegId, &Register) -> (f64, f64),
        mux_stats: impl FnMut(&MuxSite, bool) -> (f64, f64),
    ) -> Self {
        Self::assemble_with_sites(
            library,
            design,
            &design.mux_sites(cdfg),
            fu_stats,
            reg_stats,
            mux_stats,
        )
    }

    /// [`Self::assemble`] over a caller-provided mux-site list: evaluation
    /// paths that already enumerated the design's sites (context building,
    /// delta patching) hand them in instead of re-enumerating. `sites` must
    /// be (a filtering of) `design.mux_sites(cdfg)` in enumeration order;
    /// sites with fan-in below two are skipped either way, so a pre-filtered
    /// list produces a bit-identical profile.
    pub fn assemble_with_sites(
        library: &ModuleLibrary,
        design: &RtlDesign,
        sites: &[MuxSite],
        mut fu_stats: impl FnMut(FuId, &FunctionalUnit) -> (f64, f64),
        mut reg_stats: impl FnMut(RegId, &Register) -> (f64, f64),
        mut mux_stats: impl FnMut(&MuxSite, bool) -> (f64, f64),
    ) -> Self {
        let mut fus = Vec::new();
        for (fu_id, unit) in design.functional_units() {
            let (activity, activations_per_pass) = fu_stats(fu_id, unit);
            fus.push(FuPowerProfile {
                capacitance_pf: library
                    .variant(unit.module)
                    .capacitance_for_width(unit.width),
                activity: activity.max(0.01),
                activations_per_pass,
            });
        }
        let mut regs = Vec::new();
        let mut register_bits = 0.0;
        for (reg_id, reg) in design.registers() {
            let (activity, writes_per_pass) = reg_stats(reg_id, reg);
            regs.push(RegPowerProfile {
                capacitance_pf: library.register().capacitance_for_width(reg.width),
                activity: activity.max(0.01),
                writes_per_pass,
            });
            register_bits += f64::from(reg.width);
        }
        let mut muxes = Vec::new();
        for site in sites {
            if site.fan_in() < 2 {
                continue;
            }
            let restructured = design.is_restructured(site.sink);
            let (tree_activity, selections_per_pass) = mux_stats(site, restructured);
            muxes.push(MuxPowerProfile {
                capacitance_pf: library.mux2().capacitance_for_width(site.width),
                tree_activity,
                selections_per_pass,
            });
        }
        Self {
            fus,
            regs,
            register_bits,
            muxes,
            datapath_area: design.datapath_area_with_sites(library, sites),
        }
    }
}

/// The estimator: library characterization plus operating point.
#[derive(Clone, Debug)]
pub struct PowerEstimator<'lib> {
    library: &'lib ModuleLibrary,
    config: PowerConfig,
}

impl<'lib> PowerEstimator<'lib> {
    /// Creates an estimator over the given library and configuration.
    pub fn new(library: &'lib ModuleLibrary, config: PowerConfig) -> Self {
        Self { library, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Estimates the average power of one design point.
    ///
    /// `traces` must view the same CDFG and RTL design; `schedule` provides
    /// the expected number of cycles per pass and the controller size. This
    /// rebuilds the [`PowerProfile`] from the traces on every call; callers
    /// evaluating one design at several supply levels should build the
    /// profile once and use [`Self::estimate_profiled`] instead.
    pub fn estimate(
        &self,
        cdfg: &Cdfg,
        design: &RtlDesign,
        traces: &RtTraces<'_>,
        schedule: &SchedulingResult,
    ) -> PowerBreakdown {
        let profile = PowerProfile::from_traces(self.library, cdfg, design, traces);
        self.estimate_profiled(&profile, schedule)
    }

    /// Estimates the average power of one design point from a precomputed
    /// supply-independent profile: pure arithmetic, no trace traversal.
    pub fn estimate_profiled(
        &self,
        profile: &PowerProfile,
        schedule: &SchedulingResult,
    ) -> PowerBreakdown {
        let vdd_sq = self.config.vdd * self.config.vdd;
        let enc = schedule.enc.max(1.0);
        let pass_time_ns = enc * schedule.stg.clock_ns();

        // Functional units: energy per activation is C·Vdd²·activity, plus a
        // reduced idle-switching term for every cycle the unit sits unused
        // while its operand registers toggle.
        let mut fu_energy_pj = 0.0;
        for fu in &profile.fus {
            let idle_cycles = (enc - fu.activations_per_pass).max(0.0);
            fu_energy_pj += fu.capacitance_pf * vdd_sq * fu.activity * fu.activations_per_pass;
            fu_energy_pj += fu.capacitance_pf
                * vdd_sq
                * self.config.idle_switching_fraction
                * fu.activity
                * idle_cycles;
        }

        // Registers.
        let mut reg_energy_pj = 0.0;
        for reg in &profile.regs {
            reg_energy_pj += reg.capacitance_pf * vdd_sq * reg.activity * reg.writes_per_pass;
        }

        // Multiplexer networks: the tree activity follows the paper's
        // equations, with the Huffman-restructured shape where the design
        // says so.
        let mut mux_energy_pj = 0.0;
        for mux in &profile.muxes {
            mux_energy_pj +=
                mux.capacitance_pf * vdd_sq * mux.tree_activity * mux.selections_per_pass;
        }

        // Controller: switched every cycle, sized by states and transitions.
        let states = schedule.stg.state_count() as f64;
        let transitions = schedule.stg.transition_count() as f64;
        let controller_energy_pj = enc
            * vdd_sq
            * (self.config.controller_cap_per_state_pf * states
                + self.config.controller_cap_per_transition_pf * transitions);

        // Clock network: every register bit is clocked every cycle.
        let clock_energy_pj =
            enc * vdd_sq * self.config.clock_cap_per_bit_pf * profile.register_bits;

        // pJ / ns = mW.
        PowerBreakdown {
            functional_units_mw: fu_energy_pj / pass_time_ns,
            registers_mw: reg_energy_pj / pass_time_ns,
            multiplexers_mw: mux_energy_pj / pass_time_ns,
            controller_mw: controller_energy_pj / pass_time_ns,
            clock_mw: clock_energy_pj / pass_time_ns,
        }
    }

    /// Total area (datapath plus controller) in equivalent gates.
    pub fn area(&self, cdfg: &Cdfg, design: &RtlDesign, schedule: &SchedulingResult) -> f64 {
        let datapath = design.datapath_area(cdfg, self.library);
        let controller = self.config.controller_area_per_state * schedule.stg.state_count() as f64
            + self.config.controller_area_per_transition * schedule.stg.transition_count() as f64;
        datapath + controller
    }

    /// Total area from a precomputed profile (datapath area memoized, the
    /// schedule-dependent controller term recomputed per evaluation).
    pub fn area_profiled(&self, profile: &PowerProfile, schedule: &SchedulingResult) -> f64 {
        let controller = self.config.controller_area_per_state * schedule.stg.state_count() as f64
            + self.config.controller_area_per_transition * schedule.stg.transition_count() as f64;
        profile.datapath_area + controller
    }
}

// ---------------------------------------------------------------- snapshot codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`PowerBreakdown`]'s wire layout.
const TAG_POWER_BREAKDOWN: u8 = 0x38;
/// Version tag of [`FuPowerProfile`]'s wire layout.
const TAG_FU_POWER_PROFILE: u8 = 0x39;
/// Version tag of [`RegPowerProfile`]'s wire layout.
const TAG_REG_POWER_PROFILE: u8 = 0x3A;
/// Version tag of [`MuxPowerProfile`]'s wire layout.
const TAG_MUX_POWER_PROFILE: u8 = 0x3B;
/// Version tag of [`PowerProfile`]'s wire layout.
const TAG_POWER_PROFILE: u8 = 0x3C;

impl Encode for PowerBreakdown {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_POWER_BREAKDOWN);
        w.put_f64(self.functional_units_mw);
        w.put_f64(self.registers_mw);
        w.put_f64(self.multiplexers_mw);
        w.put_f64(self.controller_mw);
        w.put_f64(self.clock_mw);
    }
}

impl Decode for PowerBreakdown {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_POWER_BREAKDOWN)?;
        Ok(Self {
            functional_units_mw: r.take_f64()?,
            registers_mw: r.take_f64()?,
            multiplexers_mw: r.take_f64()?,
            controller_mw: r.take_f64()?,
            clock_mw: r.take_f64()?,
        })
    }
}

impl Encode for FuPowerProfile {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_FU_POWER_PROFILE);
        w.put_f64(self.capacitance_pf);
        w.put_f64(self.activity);
        w.put_f64(self.activations_per_pass);
    }
}

impl Decode for FuPowerProfile {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_FU_POWER_PROFILE)?;
        Ok(Self {
            capacitance_pf: r.take_f64()?,
            activity: r.take_f64()?,
            activations_per_pass: r.take_f64()?,
        })
    }
}

impl Encode for RegPowerProfile {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_REG_POWER_PROFILE);
        w.put_f64(self.capacitance_pf);
        w.put_f64(self.activity);
        w.put_f64(self.writes_per_pass);
    }
}

impl Decode for RegPowerProfile {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_REG_POWER_PROFILE)?;
        Ok(Self {
            capacitance_pf: r.take_f64()?,
            activity: r.take_f64()?,
            writes_per_pass: r.take_f64()?,
        })
    }
}

impl Encode for MuxPowerProfile {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_MUX_POWER_PROFILE);
        w.put_f64(self.capacitance_pf);
        w.put_f64(self.tree_activity);
        w.put_f64(self.selections_per_pass);
    }
}

impl Decode for MuxPowerProfile {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_MUX_POWER_PROFILE)?;
        Ok(Self {
            capacitance_pf: r.take_f64()?,
            tree_activity: r.take_f64()?,
            selections_per_pass: r.take_f64()?,
        })
    }
}

impl Encode for PowerProfile {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_POWER_PROFILE);
        self.fus.encode(w);
        self.regs.encode(w);
        w.put_f64(self.register_bits);
        self.muxes.encode(w);
        w.put_f64(self.datapath_area);
    }
}

impl Decode for PowerProfile {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_POWER_PROFILE)?;
        Ok(Self {
            fus: Decode::decode(r)?,
            regs: Decode::decode(r)?,
            register_bits: r.take_f64()?,
            muxes: Decode::decode(r)?,
            datapath_area: r.take_f64()?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::{simulate, ExecutionTrace};
    use impact_cdfg::OpClass;
    use impact_hdl::compile;
    use impact_sched::{uniform_problem, Scheduler, WaveScheduler};

    fn setup(src: &str, inputs: &[Vec<i64>]) -> (Cdfg, ExecutionTrace, SchedulingResult) {
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, inputs).unwrap();
        let schedule = WaveScheduler::new()
            .schedule(&uniform_problem(&cdfg, trace.profile()))
            .unwrap();
        (cdfg, trace, schedule)
    }

    fn gcd_inputs() -> Vec<Vec<i64>> {
        (1..20).map(|i| vec![3 * i + 1, 2 * i + 5]).collect()
    }

    const GCD: &str = "design gcd { input a: 8, b: 8; output r: 8; var x: 8; var y: 8;
        x = a; y = b;
        while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
        r = x; }";

    #[test]
    fn breakdown_components_are_positive_and_sum_to_total() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let b = estimator.estimate(&cdfg, &design, &rt, &schedule);
        assert!(b.functional_units_mw > 0.0);
        assert!(b.registers_mw > 0.0);
        assert!(b.multiplexers_mw > 0.0);
        assert!(b.controller_mw > 0.0);
        assert!(b.clock_mw > 0.0);
        let sum = b.functional_units_mw
            + b.registers_mw
            + b.multiplexers_mw
            + b.controller_mw
            + b.clock_mw;
        assert!((b.total_mw() - sum).abs() < 1e-12);
        assert!(b.mux_share() > 0.0 && b.mux_share() < 1.0);
    }

    #[test]
    fn power_scales_quadratically_with_vdd() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let p5 = PowerEstimator::new(&lib, PowerConfig::default())
            .estimate(&cdfg, &design, &rt, &schedule)
            .total_mw();
        let p25 = PowerEstimator::new(&lib, PowerConfig::default().at_vdd(2.5))
            .estimate(&cdfg, &design, &rt, &schedule)
            .total_mw();
        assert!((p25 / p5 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn greedy_mux_restructuring_never_increases_mux_power() {
        // The Huffman construction is a heuristic, so IMPACT only keeps a
        // restructuring move when it actually reduces the estimate; applied
        // that way, the mux power never goes up.
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        // Share the two subtractors to create real muxes in front of an adder.
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let baseline = {
            let rt = RtTraces::new(&cdfg, &design, &trace);
            estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .multiplexers_mw
        };
        let mut current = baseline;
        for site in design.mux_sites(&cdfg) {
            design.set_restructured(site.sink, true);
            let rt = RtTraces::new(&cdfg, &design, &trace);
            let candidate = estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .multiplexers_mw;
            if candidate <= current {
                current = candidate;
            } else {
                design.set_restructured(site.sink, false);
            }
        }
        assert!(current <= baseline + 1e-12);
    }

    #[test]
    fn module_selection_changes_functional_unit_power() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let fast = {
            let rt = RtTraces::new(&cdfg, &design, &trace);
            estimator
                .estimate(&cdfg, &design, &rt, &schedule)
                .functional_units_mw
        };
        // Swap every adder to the low-capacitance ripple implementation.
        let ripple = lib.variant_by_name("ripple_adder").unwrap();
        for fu in design.units_of_class(OpClass::AddSub) {
            design.substitute_module(&lib, fu, ripple).unwrap();
        }
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let slow = estimator
            .estimate(&cdfg, &design, &rt, &schedule)
            .functional_units_mw;
        assert!(slow < fast, "ripple adders switch less capacitance");
    }

    #[test]
    fn longer_schedules_spread_the_same_energy_over_more_time() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let normal = estimator.estimate(&cdfg, &design, &rt, &schedule);
        let mut slow = schedule.clone();
        slow.enc *= 2.0;
        let relaxed = estimator.estimate(&cdfg, &design, &rt, &slow);
        // Datapath power halves; only the per-cycle controller/clock terms stay.
        assert!(relaxed.functional_units_mw < normal.functional_units_mw);
        assert!(relaxed.total_mw() < normal.total_mw());
    }

    #[test]
    fn profiled_estimate_is_bit_identical_to_the_direct_path() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        for site in design.mux_sites(&cdfg) {
            design.set_restructured(site.sink, true);
        }
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let profile = PowerProfile::from_traces(&lib, &cdfg, &design, &rt);
        for vdd in [5.0, 3.3, 1.5] {
            let estimator = PowerEstimator::new(&lib, PowerConfig::default().at_vdd(vdd));
            let direct = estimator.estimate(&cdfg, &design, &rt, &schedule);
            let profiled = estimator.estimate_profiled(&profile, &schedule);
            assert_eq!(direct, profiled);
            assert_eq!(
                estimator.area(&cdfg, &design, &schedule),
                estimator.area_profiled(&profile, &schedule)
            );
        }
    }

    #[test]
    fn area_includes_datapath_and_controller() {
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let estimator = PowerEstimator::new(&lib, PowerConfig::default());
        let total = estimator.area(&cdfg, &design, &schedule);
        let datapath = design.datapath_area(&cdfg, &lib);
        assert!(total > datapath);
        let _ = trace;
    }

    #[test]
    fn mux_networks_are_a_large_power_share_in_cfi_designs() {
        // The paper quotes >40% mux power for CFI circuits; our characterized
        // library should at least make the interconnect a major contributor
        // once units are shared.
        let (cdfg, trace, schedule) = setup(GCD, &gcd_inputs());
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let comps = design.units_of_class(OpClass::Compare);
        design.share_fus(comps[0], comps[1]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let b = PowerEstimator::new(&lib, PowerConfig::default())
            .estimate(&cdfg, &design, &rt, &schedule);
        assert!(
            b.mux_share() > 0.15,
            "mux share should be substantial in a shared CFI datapath, got {:.3}",
            b.mux_share()
        );
    }
}
