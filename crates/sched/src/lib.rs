//! Schedulers for control-flow intensive CDFGs.
//!
//! Two schedulers are provided, both producing a probabilistic
//! [`Stg`](impact_stg::Stg) whose transition probabilities come from the
//! behavioral profile:
//!
//! * [`BaselineScheduler`] — a path/basic-block list scheduler standing in for
//!   the conventional CFG schedulers the paper compares against ([9, 17]):
//!   no operation chaining, loops execute strictly sequentially, every loop
//!   iteration re-evaluates its header in its own state.
//! * [`WaveScheduler`] — the Wavesched-style scheduler IMPACT uses ([18]):
//!   operation chaining within the clock period, **concurrent loop
//!   optimization** (independent sibling loops are scheduled together), and
//!   **implicit loop unrolling** (the next iteration's header overlaps the
//!   last body state when dependences and resources allow), which minimizes
//!   the expected number of cycles without hurting the minimum or maximum
//!   schedule length.
//!
//! Both schedulers are resource-constrained (operations bound to the same
//! functional unit never share a state) and clock-period-constrained
//! (chained delays, including the 10 % chaining overhead, must fit in the
//! clock).
//!
//! # Example
//!
//! ```
//! use impact_sched::{uniform_problem, BaselineScheduler, Scheduler, WaveScheduler};
//!
//! let cdfg = impact_hdl::compile(
//!     "design acc { input a: 8; output y: 16; var s: 16 = 0; var i: 8;
//!        for (i = 0; i < 8; i = i + 1) { s = s + a; }
//!        y = s; }",
//! )?;
//! let trace = impact_behsim::simulate(&cdfg, &[vec![3], vec![4]])?;
//! let problem = uniform_problem(&cdfg, trace.profile());
//! let base = BaselineScheduler::new().schedule(&problem)?;
//! let wave = WaveScheduler::new().schedule(&problem)?;
//! assert!(wave.enc <= base.enc, "Wavesched never increases the ENC");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod block;
mod error;
mod hierarchical;
mod problem;
mod repair;

pub use block::{block_digest, schedule_block, BlockOutcome, BlockSchedule, PlacedOp};
pub use error::SchedError;
pub use hierarchical::{
    compose, BaselineScheduler, BlockSource, InlineBlocks, Scheduler, WaveScheduler,
};
pub use problem::{
    problem_digest, uniform_problem, ScheduleConfig, SchedulingProblem, SchedulingResult,
};
pub use repair::{repair, repair_with_source, ScheduleDeltaProblem};
