//! Inputs and outputs of the schedulers.

use impact_behsim::ControlProfile;
use impact_cdfg::fingerprint::FingerprintHasher;
use impact_cdfg::{Cdfg, OpClass};
use impact_modlib::{ModuleLibrary, CHAINING_OVERHEAD, DEFAULT_CLOCK_NS};
use impact_stg::Stg;

/// Scheduler knobs.
#[derive(Clone, PartialEq, Debug)]
pub struct ScheduleConfig {
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Allow dependent operations to chain within one clock period.
    pub chaining: bool,
    /// Merge independent sibling loops so they iterate concurrently.
    pub concurrent_loops: bool,
    /// Overlap the next iteration's loop header with the last body state
    /// (implicit loop unrolling).
    pub loop_overlap: bool,
    /// Fractional delay overhead added to every chained operation.
    pub chaining_overhead: f64,
}

impl ScheduleConfig {
    /// Configuration of the baseline (conventional CFG) scheduler.
    pub fn baseline() -> Self {
        Self {
            clock_ns: DEFAULT_CLOCK_NS,
            chaining: false,
            concurrent_loops: false,
            loop_overlap: false,
            chaining_overhead: CHAINING_OVERHEAD,
        }
    }

    /// Configuration of the Wavesched-style scheduler.
    pub fn wavesched() -> Self {
        Self {
            chaining: true,
            concurrent_loops: true,
            loop_overlap: true,
            ..Self::baseline()
        }
    }

    /// Returns a copy with a different clock period.
    pub fn with_clock(mut self, clock_ns: f64) -> Self {
        self.clock_ns = clock_ns;
        self
    }
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self::wavesched()
    }
}

/// Everything a scheduler needs to know about one design point: the CDFG, the
/// effective delay and functional-unit binding of every node, the measured
/// control profile and the configuration.
#[derive(Clone, Debug)]
pub struct SchedulingProblem<'a> {
    /// The design being scheduled.
    pub cdfg: &'a Cdfg,
    /// Effective delay of every node (module delay plus interconnect), in
    /// nanoseconds, indexed by node.
    pub node_delays: Vec<f64>,
    /// Functional-unit instance executing every node (`None` for operations
    /// that need no functional unit); two nodes bound to the same instance
    /// never share a state.
    pub node_fu: Vec<Option<usize>>,
    /// Branch probabilities and loop trip counts from behavioral simulation.
    /// Borrowed, so constructing a problem per candidate design (the engine
    /// does this thousands of times per run) never copies the profile.
    pub profile: &'a ControlProfile,
    /// Scheduler knobs.
    pub config: ScheduleConfig,
}

impl SchedulingProblem<'_> {
    /// Content digest of everything that determines the schedule *besides*
    /// the CDFG and the control profile: the exact per-node delay bits, the
    /// functional-unit binding and the scheduler configuration.
    ///
    /// Scoped by a workload digest (which pins the CDFG and profile), two
    /// problems with equal digests schedule identically — even when they
    /// come from *different* RT-level designs that differ only in
    /// power-relevant ways (module capacitance, register activity, mux-tree
    /// probability ordering that leaves the depths unchanged). That is what
    /// lets an evaluation session share one memoized schedule across such
    /// designs instead of rescheduling each.
    pub fn digest(&self) -> u128 {
        problem_digest(
            &self.config,
            self.node_delays.iter().copied(),
            self.node_fu.iter().copied(),
        )
    }
}

/// [`SchedulingProblem::digest`] computed from streamed parts, for callers
/// that know the per-node delays and binding without materializing a problem
/// — e.g. an evaluator deriving a *parent* problem's schedule key from a
/// cached context and a supply factor. Bit-identical to building the problem
/// and digesting it.
pub fn problem_digest(
    config: &ScheduleConfig,
    node_delays: impl Iterator<Item = f64>,
    node_fu: impl Iterator<Item = Option<usize>>,
) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(0x5C);
    h.write_f64(config.clock_ns);
    h.write_u64(
        u64::from(config.chaining)
            | u64::from(config.concurrent_loops) << 1
            | u64::from(config.loop_overlap) << 2,
    );
    h.write_f64(config.chaining_overhead);
    h.write_tag(1);
    for delay in node_delays {
        h.write_f64(delay);
    }
    h.write_tag(2);
    for fu in node_fu {
        h.write_u64(fu.map_or(0, |f| f as u64 + 1));
    }
    h.finish().as_u128()
}

/// Output of a scheduler: the STG plus its headline metrics.
#[derive(Clone, PartialEq, Debug)]
pub struct SchedulingResult {
    /// The state transition graph.
    pub stg: Stg,
    /// Expected number of cycles of one pass, computed hierarchically from
    /// the measured branch probabilities and loop trip counts.
    pub enc: f64,
    /// Minimum schedule length in cycles.
    pub min_cycles: u32,
    /// Longest acyclic schedule length in cycles (worst-case single visit of
    /// every loop).
    pub max_cycles: u32,
    /// The per-block schedules the STG was composed from, in traversal
    /// order. This is what [`repair`](crate::repair) reuses: a later problem
    /// that leaves a block's digest unchanged splices the recorded schedule
    /// instead of list-scheduling the block again.
    pub blocks: Vec<crate::block::BlockOutcome>,
}

/// Builds a fully-parallel scheduling problem with default characterization:
/// every operation gets its own functional unit using the fastest library
/// variant for its class, `Select`/`Mov`/`Output` cost one mux delay and
/// `EndLoop` is free. This is the "initial RT level architecture" the IMPACT
/// algorithm starts from, and a convenient starting point for tests.
pub fn uniform_problem<'a>(cdfg: &'a Cdfg, profile: &'a ControlProfile) -> SchedulingProblem<'a> {
    let lib = ModuleLibrary::standard();
    let mut node_delays = Vec::with_capacity(cdfg.node_count());
    let mut node_fu = Vec::with_capacity(cdfg.node_count());
    let mut next_fu = 0usize;
    for (_, node) in cdfg.nodes() {
        let class = node.operation.class();
        if class == OpClass::None {
            let delay = if node.operation == impact_cdfg::Operation::EndLoop {
                0.0
            } else {
                lib.mux2().delay_ns
            };
            node_delays.push(delay);
            node_fu.push(None);
        } else {
            let variant = lib
                .fastest(class)
                .expect("standard library covers every functional class");
            // Width is taken from the defined variable when present.
            let width = node
                .defines
                .map(|v| cdfg.variable(v).width)
                .unwrap_or(impact_modlib::REFERENCE_WIDTH);
            node_delays.push(variant.delay_for_width(width));
            node_fu.push(Some(next_fu));
            next_fu += 1;
        }
    }
    SchedulingProblem {
        cdfg,
        node_delays,
        node_fu,
        profile,
        config: ScheduleConfig::wavesched(),
    }
}

// ---------------------------------------------------------------- snapshot codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`SchedulingResult`]'s wire layout.
const TAG_SCHEDULING_RESULT: u8 = 0x2B;

impl Encode for SchedulingResult {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SCHEDULING_RESULT);
        self.stg.encode(w);
        w.put_f64(self.enc);
        w.put_u32(self.min_cycles);
        w.put_u32(self.max_cycles);
        self.blocks.encode(w);
    }
}

impl Decode for SchedulingResult {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SCHEDULING_RESULT)?;
        Ok(Self {
            stg: Decode::decode(r)?,
            enc: r.take_f64()?,
            min_cycles: r.take_u32()?,
            max_cycles: r.take_u32()?,
            blocks: Decode::decode(r)?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;
    use impact_hdl::compile;

    #[test]
    fn config_presets_differ_in_the_expected_knobs() {
        let b = ScheduleConfig::baseline();
        let w = ScheduleConfig::wavesched();
        assert!(!b.chaining && w.chaining);
        assert!(!b.concurrent_loops && w.concurrent_loops);
        assert!(!b.loop_overlap && w.loop_overlap);
        assert_eq!(b.clock_ns, w.clock_ns);
        assert_eq!(ScheduleConfig::default(), w);
        assert_eq!(w.clone().with_clock(20.0).clock_ns, 20.0);
    }

    #[test]
    fn problem_digests_track_delays_binding_and_config() {
        let cdfg = compile(
            "design d { input a: 8; output y: 16; var s: 16 = 0; var i: 8;
               for (i = 0; i < 4; i = i + 1) { s = s + a * 2; }
               y = s; }",
        )
        .unwrap();
        let trace = simulate(&cdfg, &[vec![3]]).unwrap();
        let p = uniform_problem(&cdfg, trace.profile());
        let base = p.digest();
        assert_eq!(base, uniform_problem(&cdfg, trace.profile()).digest());
        let mut slower = p.clone();
        slower.node_delays[0] += 0.5;
        assert_ne!(slower.digest(), base, "delays are part of the digest");
        let mut rebound = p.clone();
        let bound = rebound
            .node_fu
            .iter()
            .position(|f| f.is_some())
            .expect("some node needs a unit");
        rebound.node_fu[bound] = Some(991);
        assert_ne!(rebound.digest(), base, "binding is part of the digest");
        let mut reclocked = p.clone();
        reclocked.config = reclocked.config.with_clock(21.5);
        assert_ne!(reclocked.digest(), base, "the clock is part of the digest");
        let mut unchained = p;
        unchained.config.chaining = false;
        assert_ne!(unchained.digest(), base, "config flags are in the digest");
    }

    #[test]
    fn uniform_problem_covers_every_node() {
        let cdfg = compile(
            "design d { input a: 8; output y: 16; var s: 16 = 0; var i: 8;
               for (i = 0; i < 4; i = i + 1) { s = s + a * 2; }
               y = s; }",
        )
        .unwrap();
        let trace = simulate(&cdfg, &[vec![3]]).unwrap();
        let p = uniform_problem(&cdfg, trace.profile());
        assert_eq!(p.node_delays.len(), cdfg.node_count());
        assert_eq!(p.node_fu.len(), cdfg.node_count());
        // Every functional-unit-needing node got a distinct unit.
        let mut fus: Vec<usize> = p.node_fu.iter().flatten().copied().collect();
        let before = fus.len();
        fus.sort_unstable();
        fus.dedup();
        assert_eq!(fus.len(), before);
        // Structural nodes have no functional unit.
        for (id, node) in cdfg.nodes() {
            if !node.operation.needs_functional_unit() {
                assert!(p.node_fu[id.index()].is_none());
            }
        }
    }
}
