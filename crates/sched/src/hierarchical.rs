//! Hierarchical composition of block schedules into a state transition graph,
//! following the CDFG region tree.
//!
//! The composer is split from block scheduling: every basic block the
//! traversal encounters is requested from a [`BlockSource`] (by default
//! inline list scheduling, but callers can serve blocks from a digest-keyed
//! cache or from a parent schedule being repaired), and the STG, the ENC and
//! the cycle bounds are assembled from the block results. The traversal — and
//! therefore the block order, the state numbering and every tail-placement
//! decision — is deterministic given the problem, which is what makes
//! composition over cached or repaired block schedules bit-identical to
//! scheduling everything inline.

use std::sync::Arc;

use impact_behsim::branch_count;
use impact_cdfg::{NodeId, Region};
use impact_stg::{Guard, ScheduledOp, StateId, Stg};

use crate::block::{block_digest, schedule_block, BlockOutcome, BlockSchedule};
use crate::error::SchedError;
use crate::problem::{ScheduleConfig, SchedulingProblem, SchedulingResult};

/// Supplier of basic-block schedules to the hierarchical composer.
///
/// The composer requests every block in traversal order (`index` counts the
/// requests) and splices the results into the STG. Implementations must
/// return exactly what [`schedule_block`] would produce for the problem and
/// node list, together with the [`block_digest`] identifying that
/// computation — block schedules are pure functions of their digest, so any
/// source that honors the contract composes bit-identically to
/// [`InlineBlocks`].
pub trait BlockSource {
    /// Produces the schedule of the `index`-th block of the traversal.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the block cannot be scheduled (cyclic
    /// intra-block dependences, incomplete per-node tables).
    fn block(
        &mut self,
        problem: &SchedulingProblem<'_>,
        index: usize,
        nodes: &[NodeId],
    ) -> Result<(u128, Arc<BlockSchedule>), SchedError>;
}

/// The default [`BlockSource`]: list-schedule every block inline.
#[derive(Clone, Copy, Debug, Default)]
pub struct InlineBlocks;

impl BlockSource for InlineBlocks {
    fn block(
        &mut self,
        problem: &SchedulingProblem<'_>,
        _index: usize,
        nodes: &[NodeId],
    ) -> Result<(u128, Arc<BlockSchedule>), SchedError> {
        Ok((
            block_digest(problem, nodes),
            Arc::new(schedule_block(problem, nodes)?),
        ))
    }
}

/// Common interface of the IMPACT schedulers.
pub trait Scheduler {
    /// Produces a schedule (STG plus metrics) for the given problem.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the problem is malformed (incomplete
    /// per-node tables, cyclic intra-block dependences).
    fn schedule(&self, problem: &SchedulingProblem<'_>) -> Result<SchedulingResult, SchedError>;
}

/// Conventional basic-block scheduler: no chaining, strictly sequential
/// loops. Stands in for the CFG schedulers of [9, 17].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BaselineScheduler;

impl BaselineScheduler {
    /// Creates a baseline scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for BaselineScheduler {
    fn schedule(&self, problem: &SchedulingProblem<'_>) -> Result<SchedulingResult, SchedError> {
        let mut p = problem.clone();
        p.config = ScheduleConfig {
            chaining: false,
            concurrent_loops: false,
            loop_overlap: false,
            ..problem.config.clone()
        };
        run(&p)
    }
}

/// Wavesched-style scheduler: chaining, concurrent loop optimization and
/// implicit loop unrolling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WaveScheduler;

impl WaveScheduler {
    /// Creates a Wavesched-style scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for WaveScheduler {
    fn schedule(&self, problem: &SchedulingProblem<'_>) -> Result<SchedulingResult, SchedError> {
        let mut p = problem.clone();
        p.config = ScheduleConfig {
            chaining: true,
            concurrent_loops: true,
            loop_overlap: true,
            ..problem.config.clone()
        };
        run(&p)
    }
}

/// A transition waiting for its destination state.
#[derive(Clone, Debug)]
struct PendingEdge {
    from: StateId,
    guard: Guard,
    probability: f64,
}

/// Result of scheduling one region or region sequence.
struct SeqResult {
    outgoing: Vec<PendingEdge>,
    expected: f64,
    entry: Option<StateId>,
}

struct Builder<'p, 'a, 's> {
    problem: &'p SchedulingProblem<'a>,
    stg: Stg,
    first_state: Option<StateId>,
    source: &'s mut dyn BlockSource,
    blocks: Vec<BlockOutcome>,
}

fn run(problem: &SchedulingProblem<'_>) -> Result<SchedulingResult, SchedError> {
    compose(problem, &mut InlineBlocks)
}

/// Composes the hierarchical schedule of `problem` from block schedules
/// served by `source`: the composer walks the region tree, requests every
/// basic block from the source, splices the block STGs together and derives
/// the ENC and cycle bounds. With [`InlineBlocks`] this *is* the scheduler;
/// with a caching or repairing source only the blocks the source cannot
/// serve are list-scheduled, and the composition is bit-identical either
/// way.
///
/// # Errors
///
/// Returns a [`SchedError`] when the problem is malformed (incomplete
/// per-node tables, cyclic intra-block dependences).
pub fn compose(
    problem: &SchedulingProblem<'_>,
    source: &mut dyn BlockSource,
) -> Result<SchedulingResult, SchedError> {
    let required = problem.cdfg.node_count();
    if problem.node_delays.len() < required || problem.node_fu.len() < required {
        return Err(SchedError::IncompleteProblem {
            nodes: required,
            provided: problem.node_delays.len().min(problem.node_fu.len()),
        });
    }
    let mut builder = Builder {
        problem,
        stg: Stg::new(problem.cdfg.name(), problem.config.clock_ns),
        first_state: None,
        source,
        blocks: Vec::new(),
    };
    let result = builder.schedule_sequence(problem.cdfg.regions(), Vec::new(), 0)?;
    // Whatever probability mass is still dangling terminates the pass.
    for edge in &result.outgoing {
        let state = edge.from;
        let current = builder.stg.state(state).exit_probability;
        builder
            .stg
            .set_exit_probability(state, current + edge.probability);
    }
    if let Some(entry) = builder.first_state {
        builder.stg.set_entry(entry);
    } else {
        // Completely empty designs still get one idle state.
        let s = builder.stg.add_state();
        builder.stg.set_exit_probability(s, 1.0);
        builder.stg.set_entry(s);
    }
    let enc = if result.expected > 0.0 {
        result.expected
    } else {
        1.0
    };
    let min_cycles = builder.stg.min_cycles().unwrap_or(0);
    let max_cycles = builder.stg.max_acyclic_cycles();
    Ok(SchedulingResult {
        stg: builder.stg,
        enc,
        min_cycles,
        max_cycles,
        blocks: builder.blocks,
    })
}

impl<'p, 'a, 's> Builder<'p, 'a, 's> {
    fn add_state(&mut self) -> StateId {
        let id = self.stg.add_state();
        if self.first_state.is_none() {
            self.first_state = Some(id);
        }
        id
    }

    fn connect(&mut self, edges: &[PendingEdge], to: StateId) {
        for edge in edges {
            self.stg
                .add_transition(edge.from, to, edge.guard.clone(), edge.probability);
        }
    }

    /// Schedules a sequence of regions, attaching `incoming` transitions to
    /// the first state created.
    fn schedule_sequence(
        &mut self,
        regions: &[Region],
        incoming: Vec<PendingEdge>,
        branch_base: usize,
    ) -> Result<SeqResult, SchedError> {
        let mut pending = incoming;
        let mut expected = 0.0;
        let mut entry = None;
        let mut base = branch_base;

        let mut index = 0usize;
        while index < regions.len() {
            // Concurrent loop optimization: merge runs of adjacent independent
            // loops so their iterations share states.
            let merged_run = if self.problem.config.concurrent_loops {
                self.mergeable_loop_run(regions, index)
            } else {
                1
            };
            let result = if merged_run > 1 {
                let loops: Vec<&Region> = regions[index..index + merged_run].iter().collect();
                let consumed_branches: usize = loops
                    .iter()
                    .map(|r| branch_count(std::slice::from_ref(*r)))
                    .sum();
                let r = self.schedule_merged_loops(&loops, pending, base)?;
                base += consumed_branches;
                index += merged_run;
                r
            } else {
                let region = &regions[index];
                let r = self.schedule_region(region, pending, base)?;
                base += branch_count(std::slice::from_ref(region));
                index += 1;
                r
            };
            pending = result.outgoing;
            expected += result.expected;
            if entry.is_none() {
                entry = result.entry;
            }
        }
        Ok(SeqResult {
            outgoing: pending,
            expected,
            entry,
        })
    }

    /// Length of the run of adjacent, pairwise independent, branch-free loops
    /// with flat block bodies starting at `start` (1 when no merging applies).
    fn mergeable_loop_run(&self, regions: &[Region], start: usize) -> usize {
        let simple_loop = |region: &Region| -> bool {
            match region {
                Region::Loop(info) => {
                    branch_count(std::slice::from_ref(region)) == 0
                        && info.header.iter().all(|r| matches!(r, Region::Block(_)))
                        && info.body.iter().all(|r| matches!(r, Region::Block(_)))
                }
                _ => false,
            }
        };
        if !simple_loop(&regions[start]) {
            return 1;
        }
        let mut run = 1;
        // A candidate extends the run iff it is independent of *every* loop
        // already in it, which is exactly independence against their union —
        // accumulate the union instead of re-deriving per-pair node sets.
        let mut prior_nodes: std::collections::HashSet<NodeId> =
            regions[start].nodes().into_iter().collect();
        while start + run < regions.len() && simple_loop(&regions[start + run]) {
            let candidate_nodes = regions[start + run].nodes();
            let candidate_set: std::collections::HashSet<NodeId> =
                candidate_nodes.iter().copied().collect();
            let dependent = candidate_nodes.iter().any(|&n| {
                self.problem
                    .cdfg
                    .data_predecessors_iter(n)
                    .any(|p| prior_nodes.contains(&p))
            }) || prior_nodes.iter().any(|&n| {
                self.problem
                    .cdfg
                    .data_predecessors_iter(n)
                    .any(|p| candidate_set.contains(&p))
            });
            if dependent {
                break;
            }
            prior_nodes.extend(candidate_nodes);
            run += 1;
        }
        run
    }

    fn schedule_region(
        &mut self,
        region: &Region,
        incoming: Vec<PendingEdge>,
        branch_base: usize,
    ) -> Result<SeqResult, SchedError> {
        match region {
            Region::Block(nodes) => self.schedule_block_region(nodes, incoming),
            Region::Branch {
                then_regions,
                else_regions,
                selects,
                ..
            } => self.schedule_branch(then_regions, else_regions, selects, incoming, branch_base),
            Region::Loop(info) => {
                let expected_iterations = self
                    .problem
                    .profile
                    .loop_stats(&info.label)
                    .average_iterations();
                self.schedule_loop(
                    &info.header,
                    &info.body,
                    &info.end_nodes,
                    &info.label,
                    expected_iterations,
                    incoming,
                    branch_base,
                )
            }
        }
    }

    fn schedule_block_region(
        &mut self,
        nodes: &[NodeId],
        incoming: Vec<PendingEdge>,
    ) -> Result<SeqResult, SchedError> {
        let index = self.blocks.len();
        let (digest, block) = self.source.block(self.problem, index, nodes)?;
        self.blocks.push(BlockOutcome {
            nodes: nodes.to_vec(),
            digest,
            schedule: block.clone(),
        });
        if block.state_count == 0 {
            return Ok(SeqResult {
                outgoing: incoming,
                expected: 0.0,
                entry: None,
            });
        }
        let states = self.stg.add_chain(block.state_count);
        if self.first_state.is_none() {
            self.first_state = Some(states[0]);
        }
        for op in &block.ops {
            self.stg.add_op(
                states[op.state],
                ScheduledOp::new(op.node, op.start_ns, op.start_ns + op.delay_ns),
            );
        }
        self.connect(&incoming, states[0]);
        Ok(SeqResult {
            outgoing: vec![PendingEdge {
                from: *states.last().expect("at least one state"),
                guard: Guard::Always,
                probability: 1.0,
            }],
            expected: block.state_count as f64,
            entry: Some(states[0]),
        })
    }

    fn schedule_branch(
        &mut self,
        then_regions: &[Region],
        else_regions: &[Region],
        selects: &[NodeId],
        incoming: Vec<PendingEdge>,
        branch_base: usize,
    ) -> Result<SeqResult, SchedError> {
        let p = self.problem.profile.branch(branch_base).probability_taken();
        let guard_edges = |edges: &[PendingEdge], taken: bool, prob: f64| -> Vec<PendingEdge> {
            edges
                .iter()
                .map(|e| PendingEdge {
                    from: e.from,
                    guard: Guard::Branch {
                        index: branch_base,
                        taken,
                    },
                    probability: e.probability * prob,
                })
                .collect()
        };
        let then_incoming = guard_edges(&incoming, true, p);
        let else_incoming = guard_edges(&incoming, false, 1.0 - p);
        let then_base = branch_base + 1;
        let else_base = then_base + branch_count(then_regions);

        let then_result = self.schedule_sequence(then_regions, then_incoming, then_base)?;
        let else_result = self.schedule_sequence(else_regions, else_incoming, else_base)?;

        // Place the Sel (merge) nodes at the tail of every side that actually
        // created states; a side that stayed empty keeps its registers
        // unchanged and needs no merge activity.
        let mut then_out = then_result.outgoing;
        let mut then_extra = 0.0;
        if then_result.entry.is_some() && !selects.is_empty() {
            then_extra = self.place_tail_ops(&mut then_out, selects);
        }
        let mut else_out = else_result.outgoing;
        let mut else_extra = 0.0;
        if else_result.entry.is_some() && !selects.is_empty() {
            else_extra = self.place_tail_ops(&mut else_out, selects);
        }

        let expected = p * (then_result.expected + then_extra)
            + (1.0 - p) * (else_result.expected + else_extra);
        let mut outgoing = then_out;
        outgoing.extend(else_out);
        Ok(SeqResult {
            outgoing,
            expected,
            entry: then_result.entry.or(else_result.entry),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_loop(
        &mut self,
        header: &[Region],
        body: &[Region],
        end_nodes: &[NodeId],
        label: &str,
        expected_iterations: f64,
        incoming: Vec<PendingEdge>,
        branch_base: usize,
    ) -> Result<SeqResult, SchedError> {
        let expected_iterations = expected_iterations.max(0.0);
        // Header: executed before every exit test.
        let mut header_result = self.schedule_sequence(header, incoming, branch_base)?;
        if header_result.entry.is_none() {
            // The exit condition is a pre-existing value; the test still needs
            // a state of its own.
            let s = self.add_state();
            self.connect(&header_result.outgoing, s);
            header_result = SeqResult {
                outgoing: vec![PendingEdge {
                    from: s,
                    guard: Guard::Always,
                    probability: 1.0,
                }],
                expected: 1.0,
                entry: Some(s),
            };
        }
        let header_entry = header_result.entry.expect("header entry ensured above");

        // The Elp nodes run when the loop exits; they are free structural
        // operations placed at the header tail.
        let mut header_out = header_result.outgoing;
        let elp_extra = if end_nodes.is_empty() {
            0.0
        } else {
            self.place_tail_ops(&mut header_out, end_nodes)
        };

        let p_continue = expected_iterations / (expected_iterations + 1.0);
        // One guard allocation per loop; every routed edge clones the
        // interned label.
        let continue_guard = Guard::loop_back(label, true);
        let exit_guard = Guard::loop_back(label, false);
        let body_incoming: Vec<PendingEdge> = header_out
            .iter()
            .map(|e| PendingEdge {
                from: e.from,
                guard: continue_guard.clone(),
                probability: e.probability * p_continue,
            })
            .collect();
        let exit_edges: Vec<PendingEdge> = header_out
            .iter()
            .map(|e| PendingEdge {
                from: e.from,
                guard: exit_guard.clone(),
                probability: e.probability * (1.0 - p_continue),
            })
            .collect();

        let body_base = branch_base + branch_count(header);
        let body_result = self.schedule_sequence(body, body_incoming, body_base)?;

        if body_result.entry.is_none() {
            // Degenerate loop with an empty body: only the header repeats.
            // Close the back-edge onto the header itself.
            for e in &body_result.outgoing {
                self.stg
                    .add_transition(e.from, header_entry, e.guard.clone(), e.probability);
            }
            return Ok(SeqResult {
                outgoing: exit_edges,
                expected: (expected_iterations + 1.0) * header_result.expected + elp_extra,
                entry: Some(header_entry),
            });
        }
        let body_entry = body_result.entry.expect("checked above");

        // Implicit loop unrolling: try to replicate the header operations in
        // the body's tail states so the next iteration skips the header.
        let header_nodes: Vec<NodeId> = impact_cdfg::region::collect_all_nodes(header);
        let overlap = self.problem.config.loop_overlap
            && !header_nodes.is_empty()
            && self.can_place_at_tails(&body_result.outgoing, &header_nodes);

        let mut outgoing = exit_edges;
        if overlap {
            let mut body_out = body_result.outgoing;
            let extra = self.place_tail_ops(&mut body_out, &header_nodes);
            debug_assert_eq!(extra, 0.0, "placement feasibility was checked");
            for e in &body_out {
                // Back to the body directly (header already executed here) …
                self.stg.add_transition(
                    e.from,
                    body_entry,
                    continue_guard.clone(),
                    e.probability * p_continue,
                );
                // … or leave the loop.
                outgoing.push(PendingEdge {
                    from: e.from,
                    guard: exit_guard.clone(),
                    probability: e.probability * (1.0 - p_continue),
                });
            }
            let expected =
                header_result.expected + elp_extra + expected_iterations * body_result.expected;
            Ok(SeqResult {
                outgoing,
                expected,
                entry: Some(header_entry),
            })
        } else {
            for e in &body_result.outgoing {
                self.stg
                    .add_transition(e.from, header_entry, e.guard.clone(), e.probability);
            }
            let expected = (expected_iterations + 1.0) * header_result.expected
                + elp_extra
                + expected_iterations * body_result.expected;
            Ok(SeqResult {
                outgoing,
                expected,
                entry: Some(header_entry),
            })
        }
    }

    /// Schedules a run of independent loops as one merged loop iterating
    /// `max` of their expected trip counts; their headers and bodies are
    /// packed together under the shared resource constraints.
    fn schedule_merged_loops(
        &mut self,
        loops: &[&Region],
        incoming: Vec<PendingEdge>,
        branch_base: usize,
    ) -> Result<SeqResult, SchedError> {
        let mut header_nodes = Vec::new();
        let mut body_nodes = Vec::new();
        let mut end_nodes = Vec::new();
        let mut label = String::new();
        let mut expected_iterations = 0.0f64;
        for region in loops {
            let Region::Loop(info) = region else {
                unreachable!("mergeable_loop_run only returns loop regions")
            };
            header_nodes.extend(impact_cdfg::region::collect_all_nodes(&info.header));
            body_nodes.extend(impact_cdfg::region::collect_all_nodes(&info.body));
            end_nodes.extend_from_slice(&info.end_nodes);
            let e = self
                .problem
                .profile
                .loop_stats(&info.label)
                .average_iterations();
            if e >= expected_iterations {
                expected_iterations = e;
                label = info.label.clone();
            }
        }
        let header = vec![Region::Block(header_nodes)];
        let body = vec![Region::Block(body_nodes)];
        self.schedule_loop(
            &header,
            &body,
            &end_nodes,
            &label,
            expected_iterations,
            incoming,
            branch_base,
        )
    }

    /// Returns `true` if `nodes` can be appended (chained) to every distinct
    /// tail state of `edges` without violating the clock or reusing a busy
    /// functional unit.
    fn can_place_at_tails(&self, edges: &[PendingEdge], nodes: &[NodeId]) -> bool {
        let mut tails: Vec<StateId> = edges.iter().map(|e| e.from).collect();
        tails.sort_unstable();
        tails.dedup();
        let clock = self.problem.config.clock_ns;
        let overhead = self.problem.config.chaining_overhead;
        for &state in &tails {
            let s = self.stg.state(state);
            let mut occupancy = s.occupancy_ns();
            // The busy-unit sets here are a handful of entries; a linear
            // probe beats hashing.
            let mut used: Vec<usize> = s
                .ops
                .iter()
                .filter_map(|op| self.problem.node_fu[op.node.index()])
                .collect();
            for &node in nodes {
                if let Some(fu) = self.problem.node_fu[node.index()] {
                    if used.contains(&fu) {
                        return false;
                    }
                    used.push(fu);
                }
                let delay = self.problem.node_delays[node.index()];
                let effective = if occupancy > 0.0 {
                    delay * (1.0 + overhead)
                } else {
                    delay
                };
                occupancy += effective;
                if occupancy > clock + 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// Appends `nodes` to the tail states of `edges`, chaining them after the
    /// current occupancy. When they do not fit, one new state is created,
    /// every edge is redirected into it and the returned value is 1.0 (the
    /// extra expected cycle); otherwise 0.0.
    fn place_tail_ops(&mut self, edges: &mut Vec<PendingEdge>, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() || edges.is_empty() {
            return 0.0;
        }
        if self.can_place_at_tails(edges, nodes) {
            let mut tails: Vec<StateId> = edges.iter().map(|e| e.from).collect();
            tails.sort_unstable();
            tails.dedup();
            let overhead = self.problem.config.chaining_overhead;
            for state in tails {
                let mut occupancy = self.stg.state(state).occupancy_ns();
                for &node in nodes {
                    let delay = self.problem.node_delays[node.index()];
                    let effective = if occupancy > 0.0 {
                        delay * (1.0 + overhead)
                    } else {
                        delay
                    };
                    self.stg.add_op(
                        state,
                        ScheduledOp::new(node, occupancy, occupancy + effective),
                    );
                    occupancy += effective;
                }
            }
            0.0
        } else {
            let state = self.add_state();
            let mut occupancy = 0.0;
            let overhead = self.problem.config.chaining_overhead;
            for &node in nodes {
                let delay = self.problem.node_delays[node.index()];
                let effective = if occupancy > 0.0 {
                    delay * (1.0 + overhead)
                } else {
                    delay
                };
                self.stg.add_op(
                    state,
                    ScheduledOp::new(node, occupancy, occupancy + effective),
                );
                occupancy += effective;
            }
            self.connect(edges, state);
            *edges = vec![PendingEdge {
                from: state,
                guard: Guard::Always,
                probability: 1.0,
            }];
            1.0
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::problem::uniform_problem;
    use impact_behsim::simulate;
    use impact_hdl::compile;

    fn schedule_both(src: &str, inputs: &[Vec<i64>]) -> (SchedulingResult, SchedulingResult) {
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, inputs).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let base = BaselineScheduler::new().schedule(&problem).unwrap();
        let wave = WaveScheduler::new().schedule(&problem).unwrap();
        (base, wave)
    }

    #[test]
    fn straight_line_designs_schedule_into_a_valid_stg() {
        let (base, wave) = schedule_both(
            "design d { input a: 8, b: 8; output y: 8; y = a + b; }",
            &[vec![1, 2]],
        );
        for result in [&base, &wave] {
            assert!(result.stg.validate().is_ok());
            assert!(result.enc >= 1.0);
            assert!(result.min_cycles >= 1);
            assert!(result.max_cycles >= result.min_cycles);
        }
        assert!(wave.enc <= base.enc);
    }

    #[test]
    fn chaining_reduces_enc_on_dependent_chains() {
        let (base, wave) = schedule_both(
            "design d { input a: 8; output y: 8; var t: 8; t = a && 1; y = t || a; }",
            &[vec![1]],
        );
        // Logic operations are 3 ns each, so Wavesched chains them into far
        // fewer states than the baseline.
        assert!(wave.enc < base.enc);
    }

    #[test]
    fn loops_scale_enc_with_trip_count() {
        let (base, _wave) = schedule_both(
            "design d { input a: 8; output y: 16; var s: 16 = 0; var i: 8;
               for (i = 0; i < 10; i = i + 1) { s = s + a; }
               y = s; }",
            &[vec![2]],
        );
        // Ten iterations of a multi-state body dominate the ENC.
        assert!(base.enc > 10.0);
        assert!(base.stg.validate().is_ok());
    }

    #[test]
    fn wavesched_never_increases_enc_across_designs() {
        let designs = [
            "design a { input x: 8; output y: 8; if (x > 3) { y = x + 1; } else { y = x - 1; } }",
            "design b { input x: 8, z: 8; output y: 16; var s: 16 = 0; var i: 8;
               for (i = 0; i < 6; i = i + 1) { s = s + x * z; }
               y = s; }",
            "design c { input a: 8, b: 8; output g: 8; var x: 8; var y: 8;
               x = a; y = b;
               while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
               g = x; }",
        ];
        let inputs: Vec<Vec<Vec<i64>>> = vec![
            vec![vec![1], vec![9]],
            vec![vec![3, 4], vec![5, 6]],
            vec![vec![12, 18], vec![7, 21]],
        ];
        for (src, ins) in designs.iter().zip(inputs) {
            let (base, wave) = schedule_both(src, &ins);
            assert!(
                wave.enc <= base.enc + 1e-9,
                "wavesched ENC {} exceeds baseline {} for {src}",
                wave.enc,
                base.enc
            );
        }
    }

    #[test]
    fn concurrent_loops_are_merged_when_independent() {
        // Two independent accumulation loops over different variables.
        let src = "design d { input a: 8, b: 8; output y: 16, z: 16;
             var s1: 16 = 0; var s2: 16 = 0; var i: 8 = 0; var j: 8 = 0;
             while (i < 8) { s1 = s1 + a; i = i + 1; }
             while (j < 8) { s2 = s2 + b; j = j + 1; }
             y = s1; z = s2; }";
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, &[vec![1, 2]]).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let wave = WaveScheduler::new().schedule(&problem).unwrap();
        let base = BaselineScheduler::new().schedule(&problem).unwrap();
        // Running both loops concurrently roughly halves the loop cycles.
        assert!(
            wave.enc < 0.75 * base.enc,
            "concurrent loop optimization should cut the ENC substantially ({} vs {})",
            wave.enc,
            base.enc
        );
        assert!(wave.stg.validate().is_ok());
    }

    #[test]
    fn dependent_loops_are_not_merged() {
        // The second loop consumes the first loop's result.
        let src = "design d { input a: 8; output y: 16;
             var s1: 16 = 0; var s2: 16 = 0; var i: 8 = 0; var j: 8 = 0;
             while (i < 4) { s1 = s1 + a; i = i + 1; }
             while (j < 4) { s2 = s2 + s1; j = j + 1; }
             y = s2; }";
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, &[vec![1]]).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let wave = WaveScheduler::new().schedule(&problem).unwrap();
        // Both loops must still execute their iterations sequentially: the
        // ENC reflects at least 8 body executions.
        assert!(
            wave.enc >= 8.0,
            "dependent loops must not be merged (ENC {})",
            wave.enc
        );
    }

    #[test]
    fn branch_probabilities_weight_the_enc() {
        let src = "design d { input x: 8; output y: 16;
             var s: 16 = 0; var i: 8;
             if (x > 100) {
               for (i = 0; i < 10; i = i + 1) { s = s + x; }
             } else {
               s = x;
             }
             y = s; }";
        let cdfg = compile(src).unwrap();
        // Mostly take the cheap path.
        let cheap: Vec<Vec<i64>> = (0..9).map(|v| vec![v]).collect();
        let trace_cheap = simulate(&cdfg, &cheap).unwrap();
        let p_cheap = uniform_problem(&cdfg, trace_cheap.profile());
        let enc_cheap = WaveScheduler::new().schedule(&p_cheap).unwrap().enc;
        // Mostly take the expensive loop path.
        let costly: Vec<Vec<i64>> = (0..9).map(|v| vec![120 + v]).collect();
        let trace_costly = simulate(&cdfg, &costly).unwrap();
        let p_costly = uniform_problem(&cdfg, trace_costly.profile());
        let enc_costly = WaveScheduler::new().schedule(&p_costly).unwrap().enc;
        assert!(
            enc_costly > 2.0 * enc_cheap,
            "loop-heavy profile must have much larger ENC ({enc_costly} vs {enc_cheap})"
        );
    }

    #[test]
    fn stg_expected_cycles_is_consistent_with_hierarchical_enc() {
        let src = "design d { input a: 8, b: 8; output g: 8; var x: 8; var y: 8;
             x = a; y = b;
             while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
             g = x; }";
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, &[vec![48, 36], vec![15, 40]]).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let result = BaselineScheduler::new().schedule(&problem).unwrap();
        let markov = result.stg.expected_cycles();
        let relative = (markov - result.enc).abs() / result.enc;
        assert!(
            relative < 0.35,
            "Markov ENC {markov} and hierarchical ENC {} diverge too much",
            result.enc
        );
    }

    #[test]
    fn every_computational_node_is_scheduled_at_least_once() {
        let src = "design d { input a: 8, b: 8; output y: 16;
             var s: 16 = 0; var i: 8;
             for (i = 0; i < 5; i = i + 1) {
               if (a > b) { s = s + a; } else { s = s + b; }
             }
             y = s; }";
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, &[vec![3, 9]]).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        for result in [
            BaselineScheduler::new().schedule(&problem).unwrap(),
            WaveScheduler::new().schedule(&problem).unwrap(),
        ] {
            for (id, node) in cdfg.nodes() {
                if node.operation.needs_functional_unit() {
                    assert!(
                        result.stg.state_of(id).is_some(),
                        "node {id} ({}) missing from the schedule",
                        node.operation
                    );
                }
            }
        }
    }

    #[test]
    fn incomplete_problems_are_rejected() {
        let cdfg = compile("design d { input a: 8; output y: 8; y = a + 1; }").unwrap();
        let trace = simulate(&cdfg, &[vec![1]]).unwrap();
        let mut problem = uniform_problem(&cdfg, trace.profile());
        problem.node_delays.pop();
        assert!(matches!(
            WaveScheduler::new().schedule(&problem),
            Err(SchedError::IncompleteProblem { .. })
        ));
    }
}
