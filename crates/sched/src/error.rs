//! Error type for scheduling.

use std::error::Error;
use std::fmt;

use impact_cdfg::NodeId;

/// Errors reported by the schedulers.
#[derive(Clone, PartialEq, Debug)]
pub enum SchedError {
    /// An operation cannot fit in the clock period even alone in a state.
    /// Its functional unit is too slow for the requested clock (for example
    /// after aggressive Vdd scaling); the caller must either slow the clock,
    /// pick a faster module or raise the supply voltage.
    OperationTooSlow {
        /// The offending node.
        node: NodeId,
        /// Its effective delay in nanoseconds.
        delay_ns: f64,
        /// The clock period in nanoseconds.
        clock_ns: f64,
        /// The number of states a multi-cycle implementation would need.
        states_needed: u32,
    },
    /// The per-node delay or binding tables do not cover every node.
    IncompleteProblem {
        /// Number of nodes in the CDFG.
        nodes: usize,
        /// Number of entries provided.
        provided: usize,
    },
    /// A dependence cycle was found among the operations of one basic block,
    /// which means the CDFG is malformed.
    DependenceCycle {
        /// A node on the cycle.
        node: NodeId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::OperationTooSlow {
                node,
                delay_ns,
                clock_ns,
                states_needed,
            } => write!(
                f,
                "node {node} needs {delay_ns:.1} ns which exceeds the {clock_ns:.1} ns clock ({states_needed} states as a multi-cycle operation)"
            ),
            SchedError::IncompleteProblem { nodes, provided } => write!(
                f,
                "scheduling problem provides {provided} per-node entries for a CDFG with {nodes} nodes"
            ),
            SchedError::DependenceCycle { node } => {
                write!(f, "dependence cycle detected within a basic block at node {node}")
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_node() {
        let e = SchedError::OperationTooSlow {
            node: NodeId::new(3),
            delay_ns: 40.0,
            clock_ns: 15.0,
            states_needed: 3,
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("40.0"));
    }

    #[test]
    fn error_is_std_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SchedError>();
    }
}
