//! Delta-aware schedule repair: reschedule only the blocks a change touched.
//!
//! A typical move of the IMPACT search perturbs the delays or binding of a
//! handful of nodes in one or two basic blocks, yet a fresh hierarchical
//! pass list-schedules every block of the CDFG again. [`repair`] takes the
//! parent's [`SchedulingResult`] (which records the per-block schedules it
//! was composed from) and a [`ScheduleDeltaProblem`] describing the post-move
//! problem together with the touched nodes, and recomposes the schedule:
//! blocks containing no touched node splice their recorded [`BlockSchedule`]
//! straight into the new STG, and only the touched blocks are rescheduled.
//! The composition itself (state numbering, tail placement of selects and
//! loop-end operations, expected-cycle terms) always reruns against the new
//! problem — it is linear in the schedule size and is what keeps the repaired
//! result bit-identical to a full reschedule.
//!
//! [`BlockSchedule`]: crate::BlockSchedule

use crate::block::BlockOutcome;
use crate::error::SchedError;
use crate::hierarchical::{compose, BlockSource, InlineBlocks};
use crate::problem::{SchedulingProblem, SchedulingResult};
use impact_cdfg::NodeId;
use std::sync::Arc;

/// A scheduling problem expressed as a delta against a parent problem: the
/// full post-change problem plus the set of nodes whose delay or binding may
/// differ from the parent's.
#[derive(Debug)]
pub struct ScheduleDeltaProblem<'p, 'a> {
    /// The post-change scheduling problem, in full.
    pub problem: &'p SchedulingProblem<'a>,
    /// Per-node flags: `touched[i]` marks node `i` as possibly scheduling
    /// differently than under the parent problem. Blocks containing only
    /// untouched nodes reuse the parent's block schedules verbatim.
    pub touched: Vec<bool>,
}

impl<'p, 'a> ScheduleDeltaProblem<'p, 'a> {
    /// Diffs `child` against `parent`: a node is touched when its delay bits
    /// or functional-unit binding differ, and every node is touched when a
    /// configuration field the block scheduler reads (clock period, chaining
    /// flag, chaining overhead) differs — a config change invalidates every
    /// block.
    pub fn between(
        parent: &SchedulingProblem<'_>,
        child: &'p SchedulingProblem<'a>,
    ) -> ScheduleDeltaProblem<'p, 'a> {
        let n = child.node_delays.len().min(child.node_fu.len());
        let config_changed = parent.config.clock_ns.to_bits() != child.config.clock_ns.to_bits()
            || parent.config.chaining != child.config.chaining
            || parent.config.chaining_overhead.to_bits()
                != child.config.chaining_overhead.to_bits();
        let touched = (0..n)
            .map(|i| {
                config_changed
                    || parent
                        .node_delays
                        .get(i)
                        .is_none_or(|d| d.to_bits() != child.node_delays[i].to_bits())
                    || parent
                        .node_fu
                        .get(i)
                        .is_none_or(|fu| *fu != child.node_fu[i])
            })
            .collect();
        ScheduleDeltaProblem {
            problem: child,
            touched,
        }
    }

    /// Whether the delta touches the given node.
    pub fn touches(&self, node: NodeId) -> bool {
        // Out-of-range nodes are conservatively treated as touched.
        self.touched.get(node.index()).copied().unwrap_or(true)
    }

    /// Number of touched nodes.
    pub fn touched_count(&self) -> usize {
        self.touched.iter().filter(|&&t| t).count()
    }
}

/// [`BlockSource`] that serves untouched blocks from a parent schedule and
/// delegates the rest to a fallback source.
struct ReuseBlocks<'x> {
    parent: &'x [BlockOutcome],
    touched: &'x [bool],
    fallback: &'x mut dyn BlockSource,
}

impl BlockSource for ReuseBlocks<'_> {
    fn block(
        &mut self,
        problem: &SchedulingProblem<'_>,
        index: usize,
        nodes: &[NodeId],
    ) -> Result<(u128, Arc<crate::block::BlockSchedule>), SchedError> {
        if let Some(recorded) = self.parent.get(index) {
            // The traversal is deterministic, so the parent's block at the
            // same position covers the same nodes whenever the region
            // structure is unchanged; the equality check makes reuse safe
            // even against a parent composed under a different traversal.
            let untouched = |&n: &NodeId| !self.touched.get(n.index()).copied().unwrap_or(true);
            if recorded.nodes == nodes && nodes.iter().all(untouched) {
                return Ok((recorded.digest, recorded.schedule.clone()));
            }
        }
        self.fallback.block(problem, index, nodes)
    }
}

/// Repairs a parent schedule against a changed problem: blocks untouched by
/// the delta splice their recorded schedules into a fresh composition,
/// touched blocks are list-scheduled inline. Bit-identical to scheduling
/// `delta.problem` from scratch — an untouched block's digest (and therefore
/// its schedule, a pure function of the digest) is unchanged by
/// construction, and the composition always reruns against the new problem.
/// A delta touching nodes in every block degenerates to exactly a full
/// reschedule.
///
/// # Errors
///
/// Returns a [`SchedError`] when the post-change problem is malformed.
pub fn repair(
    parent: &SchedulingResult,
    delta: &ScheduleDeltaProblem<'_, '_>,
) -> Result<SchedulingResult, SchedError> {
    repair_with_source(parent, delta, &mut InlineBlocks)
}

/// [`repair`] with an explicit fallback source for the touched blocks (e.g.
/// a shared digest-keyed block cache).
///
/// # Errors
///
/// Returns a [`SchedError`] when the post-change problem is malformed.
pub fn repair_with_source(
    parent: &SchedulingResult,
    delta: &ScheduleDeltaProblem<'_, '_>,
    fallback: &mut dyn BlockSource,
) -> Result<SchedulingResult, SchedError> {
    let mut source = ReuseBlocks {
        parent: &parent.blocks,
        touched: &delta.touched,
        fallback,
    };
    compose(delta.problem, &mut source)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::problem::{uniform_problem, ScheduleConfig};
    use crate::Scheduler;
    use impact_behsim::simulate;
    use impact_hdl::compile;

    fn setup(src: &str, inputs: &[Vec<i64>]) -> (impact_cdfg::Cdfg, impact_behsim::ExecutionTrace) {
        let cdfg = compile(src).unwrap();
        let trace = simulate(&cdfg, inputs).unwrap();
        (cdfg, trace)
    }

    const GCD: &str = "design d { input a: 8, b: 8; output g: 8; var x: 8; var y: 8;
         x = a; y = b;
         while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
         g = x; }";

    #[test]
    fn untouched_repair_reproduces_the_parent_exactly() {
        let (cdfg, trace) = setup(GCD, &[vec![48, 36], vec![15, 40]]);
        let problem = uniform_problem(&cdfg, trace.profile());
        let parent = crate::WaveScheduler::new().schedule(&problem).unwrap();
        let delta = ScheduleDeltaProblem::between(&problem, &problem);
        assert_eq!(delta.touched_count(), 0);
        let repaired = repair(&parent, &delta).unwrap();
        assert_eq!(repaired, parent);
    }

    #[test]
    fn single_node_perturbations_repair_bit_identically() {
        let (cdfg, trace) = setup(GCD, &[vec![48, 36], vec![15, 40], vec![9, 3]]);
        let problem = uniform_problem(&cdfg, trace.profile());
        let parent = crate::WaveScheduler::new().schedule(&problem).unwrap();
        for index in 0..problem.node_delays.len() {
            let mut child = problem.clone();
            child.node_delays[index] += 1.75;
            let delta = ScheduleDeltaProblem::between(&problem, &child);
            assert!(delta.touches(impact_cdfg::NodeId::new(index)));
            let repaired = repair(&parent, &delta).unwrap();
            let oracle = crate::WaveScheduler::new().schedule(&child).unwrap();
            assert_eq!(
                repaired, oracle,
                "perturbing node {index} must repair exactly"
            );
            // Untouched blocks were spliced, not rescheduled: their digests
            // survive from the parent.
            for (r, p) in repaired.blocks.iter().zip(&parent.blocks) {
                if !r.nodes.contains(&impact_cdfg::NodeId::new(index)) {
                    assert_eq!(r.digest, p.digest);
                }
            }
        }
    }

    #[test]
    fn binding_changes_repair_bit_identically() {
        let (cdfg, trace) = setup(GCD, &[vec![12, 18], vec![7, 21]]);
        let problem = uniform_problem(&cdfg, trace.profile());
        let parent = crate::WaveScheduler::new().schedule(&problem).unwrap();
        // Share the first two functional-unit-bound nodes on one unit.
        let bound: Vec<usize> = problem
            .node_fu
            .iter()
            .enumerate()
            .filter_map(|(i, fu)| fu.map(|_| i))
            .collect();
        let mut child = problem.clone();
        child.node_fu[bound[1]] = child.node_fu[bound[0]];
        let delta = ScheduleDeltaProblem::between(&problem, &child);
        let repaired = repair(&parent, &delta).unwrap();
        let oracle = crate::WaveScheduler::new().schedule(&child).unwrap();
        assert_eq!(repaired, oracle);
    }

    #[test]
    fn global_scaling_degenerates_to_a_full_reschedule() {
        // A supply change scales every delay: every node is touched, every
        // block reschedules, and the repair still equals the oracle.
        let (cdfg, trace) = setup(GCD, &[vec![48, 36]]);
        let problem = uniform_problem(&cdfg, trace.profile());
        let parent = crate::WaveScheduler::new().schedule(&problem).unwrap();
        let mut child = problem.clone();
        for d in child.node_delays.iter_mut() {
            *d = *d * 1.3 + 0.25;
        }
        let delta = ScheduleDeltaProblem::between(&problem, &child);
        assert_eq!(delta.touched_count(), child.node_delays.len());
        let repaired = repair(&parent, &delta).unwrap();
        let oracle = crate::WaveScheduler::new().schedule(&child).unwrap();
        assert_eq!(repaired, oracle);
        for (r, p) in repaired.blocks.iter().zip(&parent.blocks) {
            if !r.nodes.is_empty() {
                assert_ne!(r.digest, p.digest, "every non-empty block recomputes");
            }
        }
    }

    #[test]
    fn config_changes_invalidate_every_block() {
        let (cdfg, trace) = setup(GCD, &[vec![48, 36]]);
        let problem = uniform_problem(&cdfg, trace.profile());
        let mut child = problem.clone();
        child.config = ScheduleConfig::wavesched().with_clock(21.0);
        let delta = ScheduleDeltaProblem::between(&problem, &child);
        assert_eq!(delta.touched_count(), child.node_delays.len());
    }
}
