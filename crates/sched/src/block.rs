//! Resource- and clock-constrained list scheduling of one basic block.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use impact_cdfg::fingerprint::FingerprintHasher;
use impact_cdfg::NodeId;

use crate::error::SchedError;
use crate::problem::SchedulingProblem;

/// One operation placed by the block scheduler.
#[derive(Clone, PartialEq, Debug)]
pub struct PlacedOp {
    /// The scheduled node.
    pub node: NodeId,
    /// State index within the block (0-based).
    pub state: usize,
    /// Start offset within its first state, in nanoseconds.
    pub start_ns: f64,
    /// Total delay of the operation, in nanoseconds (may exceed the clock for
    /// multi-cycle operations).
    pub delay_ns: f64,
    /// Index of the state in which the result becomes available.
    pub finish_state: usize,
    /// Offset within `finish_state` at which the result is available.
    pub finish_ns: f64,
}

/// The schedule of one basic block: a dense sequence of states.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BlockSchedule {
    /// Placed operations.
    pub ops: Vec<PlacedOp>,
    /// Number of states used.
    pub state_count: usize,
}

impl BlockSchedule {
    /// Operations placed in a given state (by their start state).
    pub fn ops_in_state(&self, state: usize) -> Vec<&PlacedOp> {
        self.ops.iter().filter(|op| op.state == state).collect()
    }

    /// Latest finish offset used in `state`, in nanoseconds.
    pub fn occupancy(&self, state: usize) -> f64 {
        self.ops
            .iter()
            .filter(|op| op.finish_state == state)
            .map(|op| op.finish_ns)
            .fold(0.0, f64::max)
    }
}

/// The schedule of one basic block as recorded on a
/// [`SchedulingResult`](crate::SchedulingResult): the nodes in traversal
/// order, the content digest the schedule is keyed by, and the shared block
/// schedule itself. This is the unit of reuse of delta-aware schedule repair
/// ([`repair`](crate::repair)) and of block-level schedule memoization.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockOutcome {
    /// The block's nodes, in the composer's traversal order.
    pub nodes: Vec<NodeId>,
    /// [`block_digest`] of the block under the problem it was scheduled for.
    pub digest: u128,
    /// The block's schedule.
    pub schedule: Arc<BlockSchedule>,
}

/// Content digest of everything [`schedule_block`] reads for one block:
/// the node list (ids in order — the CDFG behind them is pinned by the
/// caller's workload scope), the exact per-node delay bits and
/// functional-unit binding, and the configuration fields the block scheduler
/// consults (clock period, chaining flag, chaining overhead). The
/// hierarchical knobs (`concurrent_loops`, `loop_overlap`) are deliberately
/// excluded — they shape the *composition*, never a block's internal
/// schedule — so baseline and overlapping compositions share block entries.
///
/// Two blocks with equal digests schedule identically, which is what lets a
/// cache serve one [`BlockSchedule`] to every design, supply level and sweep
/// run that perturbs only other blocks.
pub fn block_digest(problem: &SchedulingProblem<'_>, nodes: &[NodeId]) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(0x5B);
    h.write_f64(problem.config.clock_ns);
    h.write_u64(u64::from(problem.config.chaining));
    h.write_f64(problem.config.chaining_overhead);
    h.write_u64(nodes.len() as u64);
    for &node in nodes {
        h.write_u64(node.index() as u64);
        h.write_f64(problem.node_delays[node.index()]);
        h.write_u64(problem.node_fu[node.index()].map_or(0, |f| f as u64 + 1));
    }
    h.finish().as_u128()
}

/// Schedules the nodes of one basic block.
///
/// Dependences are the same-iteration data-dependence edges restricted to the
/// nodes of the block; predecessors outside the block are assumed to have
/// completed in earlier states. Operations bound to the same functional unit
/// never overlap, chained delays carry the configured overhead, and
/// operations slower than the clock become multi-cycle.
///
/// # Errors
///
/// Returns [`SchedError::DependenceCycle`] if the block's dependence graph is
/// cyclic and [`SchedError::IncompleteProblem`] if the per-node tables are too
/// short.
pub fn schedule_block(
    problem: &SchedulingProblem<'_>,
    nodes: &[NodeId],
) -> Result<BlockSchedule, SchedError> {
    if nodes.is_empty() {
        return Ok(BlockSchedule::default());
    }
    let required = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
    if problem.node_delays.len() < required || problem.node_fu.len() < required {
        return Err(SchedError::IncompleteProblem {
            nodes: problem.cdfg.node_count(),
            provided: problem.node_delays.len().min(problem.node_fu.len()),
        });
    }

    let clock = problem.config.clock_ns;
    let overhead = problem.config.chaining_overhead;
    let member: HashSet<NodeId> = nodes.iter().copied().collect();

    // Same-iteration predecessors restricted to the block.
    let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &node in nodes {
        let p: Vec<NodeId> = problem
            .cdfg
            .data_predecessors_iter(node)
            .filter(|p| member.contains(p))
            .collect();
        preds.insert(node, p);
    }

    // Priority: delay-weighted height (longest downstream chain).
    let heights = heights(problem, nodes, &preds);

    let mut remaining: Vec<NodeId> = nodes.to_vec();
    let mut placed: HashMap<NodeId, PlacedOp> = HashMap::new();
    let mut schedule = BlockSchedule::default();
    // State index (exclusive) until which each functional unit is busy.
    let mut fu_busy_until: HashMap<usize, usize> = HashMap::new();
    let mut state = 0usize;

    while !remaining.is_empty() {
        let mut fu_used_this_state: HashSet<usize> = HashSet::new();
        let mut progressed = false;

        loop {
            // Gather candidates whose predecessors are all placed and
            // available in (or before) this state.
            let mut candidates: Vec<(NodeId, f64)> = Vec::new();
            for &node in &remaining {
                let Some(ready_at) = ready_time(node, &preds[&node], &placed, state, problem)
                else {
                    continue;
                };
                // Functional-unit availability.
                if let Some(fu) = problem.node_fu[node.index()] {
                    if fu_used_this_state.contains(&fu) {
                        continue;
                    }
                    if fu_busy_until.get(&fu).copied().unwrap_or(0) > state {
                        continue;
                    }
                }
                let delay = problem.node_delays[node.index()];
                let chained = ready_at > 0.0;
                if !chained || problem.config.chaining {
                    let effective = if chained {
                        delay * (1.0 + overhead)
                    } else {
                        delay
                    };
                    let fits_single = ready_at + effective <= clock + 1e-9;
                    let multicycle_ok = !chained && effective > clock;
                    if fits_single || multicycle_ok {
                        candidates.push((node, heights[&node]));
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("heights are finite"));
            let (node, _) = candidates[0];

            let ready_at = ready_time(node, &preds[&node], &placed, state, problem)
                .expect("candidate was ready");
            let delay = problem.node_delays[node.index()];
            let chained = ready_at > 0.0;
            let effective = if chained {
                delay * (1.0 + overhead)
            } else {
                delay
            };
            let (finish_state, finish_ns) = if ready_at + effective <= clock + 1e-9 {
                (state, ready_at + effective)
            } else {
                // Multi-cycle operation starting at the beginning of the state.
                let extra = ((effective - clock) / clock).ceil().max(0.0) as usize + 1;
                let finish_state = state + extra - 1;
                let finish_ns = effective - (extra as f64 - 1.0) * clock;
                (finish_state, finish_ns.max(0.0))
            };
            if let Some(fu) = problem.node_fu[node.index()] {
                fu_used_this_state.insert(fu);
                fu_busy_until.insert(fu, finish_state + 1);
            }
            placed.insert(
                node,
                PlacedOp {
                    node,
                    state,
                    start_ns: ready_at,
                    delay_ns: effective,
                    finish_state,
                    finish_ns,
                },
            );
            remaining.retain(|&n| n != node);
            progressed = true;
        }

        if !progressed {
            // Nothing fit in this state. That is fine while multi-cycle
            // operations are still in flight (or only just completed, with
            // chaining unable to use their tail) or units are busy; otherwise
            // the dependences can never be satisfied.
            let anything_in_flight = fu_busy_until.values().any(|&until| until > state)
                || placed.values().any(|op| op.finish_state >= state);
            let blocked_by_busy_unit = remaining.iter().any(|&n| {
                problem.node_fu[n.index()]
                    .map(|fu| fu_busy_until.get(&fu).copied().unwrap_or(0) > state)
                    .unwrap_or(false)
            });
            if !anything_in_flight && !blocked_by_busy_unit {
                return Err(SchedError::DependenceCycle { node: remaining[0] });
            }
        }
        state += 1;
    }

    schedule.state_count = placed
        .values()
        .map(|op| op.finish_state + 1)
        .max()
        .unwrap_or(0);
    let mut ops: Vec<PlacedOp> = placed.into_values().collect();
    ops.sort_by_key(|op| (op.state, op.node));
    schedule.ops = ops;
    Ok(schedule)
}

fn ready_time(
    node: NodeId,
    preds: &[NodeId],
    placed: &HashMap<NodeId, PlacedOp>,
    state: usize,
    problem: &SchedulingProblem<'_>,
) -> Option<f64> {
    let mut ready = 0.0f64;
    for &p in preds {
        let op = placed.get(&p)?;
        if op.finish_state > state {
            return None;
        }
        if op.finish_state == state {
            if !problem.config.chaining && op.state == state {
                // Without chaining a dependent operation must wait for the
                // next state.
                return None;
            }
            ready = ready.max(op.finish_ns);
        }
    }
    let _ = node;
    Some(ready)
}

fn heights(
    problem: &SchedulingProblem<'_>,
    nodes: &[NodeId],
    preds: &HashMap<NodeId, Vec<NodeId>>,
) -> HashMap<NodeId, f64> {
    // Process nodes in reverse program order; successors inside the block
    // always come later in program order, so one reverse sweep suffices.
    let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (&node, ps) in preds {
        for &p in ps {
            succs.entry(p).or_default().push(node);
        }
    }
    let mut height: HashMap<NodeId, f64> = HashMap::new();
    for &node in nodes.iter().rev() {
        let own = problem.node_delays[node.index()];
        let down = succs
            .get(&node)
            .map(|list| {
                list.iter()
                    .map(|s| height.get(s).copied().unwrap_or(0.0))
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        height.insert(node, own + down);
    }
    height
}

// ---------------------------------------------------------------- snapshot codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`PlacedOp`]'s wire layout.
const TAG_PLACED_OP: u8 = 0x28;
/// Version tag of [`BlockSchedule`]'s wire layout.
const TAG_BLOCK_SCHEDULE: u8 = 0x29;
/// Version tag of [`BlockOutcome`]'s wire layout.
const TAG_BLOCK_OUTCOME: u8 = 0x2A;

impl Encode for PlacedOp {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_PLACED_OP);
        self.node.encode(w);
        w.put_usize(self.state);
        w.put_f64(self.start_ns);
        w.put_f64(self.delay_ns);
        w.put_usize(self.finish_state);
        w.put_f64(self.finish_ns);
    }
}

impl Decode for PlacedOp {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_PLACED_OP)?;
        Ok(Self {
            node: Decode::decode(r)?,
            state: r.take_usize()?,
            start_ns: r.take_f64()?,
            delay_ns: r.take_f64()?,
            finish_state: r.take_usize()?,
            finish_ns: r.take_f64()?,
        })
    }
}

impl Encode for BlockSchedule {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_BLOCK_SCHEDULE);
        self.ops.encode(w);
        w.put_usize(self.state_count);
    }
}

impl Decode for BlockSchedule {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_BLOCK_SCHEDULE)?;
        Ok(Self {
            ops: Decode::decode(r)?,
            state_count: r.take_usize()?,
        })
    }
}

impl Encode for BlockOutcome {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_BLOCK_OUTCOME);
        self.nodes.encode(w);
        w.put_u128(self.digest);
        self.schedule.encode(w);
    }
}

impl Decode for BlockOutcome {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_BLOCK_OUTCOME)?;
        Ok(Self {
            nodes: Decode::decode(r)?,
            digest: r.take_u128()?,
            schedule: Decode::decode(r)?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::problem::{uniform_problem, ScheduleConfig};
    use impact_behsim::simulate;
    use impact_cdfg::Region;
    use impact_hdl::compile;

    fn first_block(cdfg: &impact_cdfg::Cdfg) -> Vec<NodeId> {
        match &cdfg.regions()[0] {
            Region::Block(nodes) => nodes.clone(),
            other => panic!("expected a block, found {other:?}"),
        }
    }

    fn problem_for(src: &str, inputs: &[Vec<i64>]) -> (impact_cdfg::Cdfg, Vec<Vec<i64>>) {
        let cdfg = compile(src).unwrap();
        (cdfg, inputs.to_vec())
    }

    #[test]
    fn independent_operations_share_a_state_on_different_units() {
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8, b: 8; output y: 8, z: 8; y = a + 1; z = b + 2; }",
            &[vec![1, 2]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let block = first_block(&cdfg);
        let sched = schedule_block(&problem, &block).unwrap();
        // Two independent adds on two different adders plus the two chained
        // output transfers all fit in a single state.
        assert_eq!(sched.state_count, 1);
        assert_eq!(sched.ops_in_state(0).len(), block.len());
    }

    #[test]
    fn shared_unit_serializes_independent_operations() {
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8, b: 8; output y: 8, z: 8; y = a + 1; z = b + 2; }",
            &[vec![1, 2]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let mut problem = uniform_problem(&cdfg, trace.profile());
        // Force both adds onto the same functional unit.
        let adds: Vec<usize> = cdfg
            .nodes()
            .filter(|(_, n)| n.operation == impact_cdfg::Operation::Add)
            .map(|(id, _)| id.index())
            .collect();
        let shared = problem.node_fu[adds[0]];
        problem.node_fu[adds[1]] = shared;
        let block = first_block(&cdfg);
        let sched = schedule_block(&problem, &block).unwrap();
        assert!(
            sched.state_count >= 2,
            "one adder cannot do two adds in one state"
        );
    }

    #[test]
    fn chaining_packs_dependent_operations_into_one_state() {
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8; output y: 8; y = (a + 1) + 2; }",
            &[vec![1]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let mut problem = uniform_problem(&cdfg, trace.profile());
        // Shrink the adder delays so two chained adds fit in one 15 ns cycle.
        for d in problem.node_delays.iter_mut() {
            if *d > 5.0 {
                *d = 6.0;
            }
        }
        let block = first_block(&cdfg);
        let chained = schedule_block(&problem, &block).unwrap();
        // 6 + 6·1.1 ≈ 12.6 ns fits in 15 ns, but the dependent output
        // transfer (12.6 + 3.3 ns) spills into a second state.
        assert_eq!(chained.state_count, 2);

        problem.config = ScheduleConfig::baseline();
        let unchained = schedule_block(&problem, &block).unwrap();
        assert_eq!(
            unchained.state_count, 3,
            "without chaining every dependent operation needs its own state"
        );
    }

    #[test]
    fn chaining_overhead_is_applied() {
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8; output y: 8; y = (a + 1) + 2; }",
            &[vec![1]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let mut problem = uniform_problem(&cdfg, trace.profile());
        // 8 + 8·1.1 = 16.8 ns > 15 ns: chaining must NOT happen even though
        // 8 + 8 = 16 > 15 would already fail, so use 7: 7 + 7.7 = 14.7 fits,
        // but with a 20% overhead 7 + 8.4 = 15.4 does not.
        for d in problem.node_delays.iter_mut() {
            if *d > 5.0 {
                *d = 7.0;
            }
        }
        problem.config.chaining_overhead = 0.20;
        let block = first_block(&cdfg);
        let sched = schedule_block(&problem, &block).unwrap();
        assert_eq!(sched.state_count, 2);
    }

    #[test]
    fn slow_operations_become_multi_cycle() {
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8, b: 8; output y: 16; y = a * b + 1; }",
            &[vec![3, 4]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let block = first_block(&cdfg);
        let sched = schedule_block(&problem, &block).unwrap();
        // The 16-bit multiply takes well over one 15 ns cycle; the dependent
        // add must wait for its final state.
        let mul = sched
            .ops
            .iter()
            .find(|op| cdfg.node(op.node).operation == impact_cdfg::Operation::Mul)
            .unwrap();
        assert!(
            mul.finish_state > mul.state,
            "multiply spans several states"
        );
        let add = sched
            .ops
            .iter()
            .find(|op| cdfg.node(op.node).operation == impact_cdfg::Operation::Add)
            .unwrap();
        assert!(add.state >= mul.finish_state);
        assert!(sched.state_count > mul.finish_state);
    }

    #[test]
    fn empty_block_produces_empty_schedule() {
        let (cdfg, inputs) =
            problem_for("design d { input a: 8; output y: 8; y = a; }", &[vec![1]]);
        let trace = simulate(&cdfg, &inputs).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let sched = schedule_block(&problem, &[]).unwrap();
        assert_eq!(sched.state_count, 0);
        assert!(sched.ops.is_empty());
    }

    #[test]
    fn priorities_favor_the_critical_path() {
        // y needs a long chain (mul then add); z is a single cheap op. With a
        // single shared adder the chain's add should not be starved at the end.
        let (cdfg, inputs) = problem_for(
            "design d { input a: 8, b: 8; output y: 16, z: 8; y = a * b + 1; z = a + 2; }",
            &[vec![3, 4]],
        );
        let trace = simulate(&cdfg, &inputs).unwrap();
        let problem = uniform_problem(&cdfg, trace.profile());
        let block = first_block(&cdfg);
        let sched = schedule_block(&problem, &block).unwrap();
        assert!(sched.state_count >= 2);
        // All four operations were placed exactly once.
        assert_eq!(sched.ops.len(), block.len());
    }
}
