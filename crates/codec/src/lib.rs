//! The workspace's binary snapshot codec: trait-driven encoding and decoding
//! of every value the evaluation caches hold.
//!
//! The format is deliberately boring — SBOR-style trait derivation written by
//! hand — so any crate can implement it for its own types without a proc
//! macro or a registry dependency:
//!
//! * fixed-width little-endian integers; floats as their exact IEEE-754 bit
//!   pattern (`-0.0 != 0.0`, NaN payloads preserved),
//! * length-prefixed sequences and strings (`u64` length, then the items),
//! * an explicit one-byte *version tag* in front of every composite type
//!   ([`Encoder::put_tag`] / [`Decoder::expect_tag`]). A type that changes
//!   its wire layout bumps its tag, so snapshots written by an older build
//!   fail decoding with [`DecodeError::BadTag`] instead of being
//!   misinterpreted — stale data degrades to a cache miss, never a wrong hit.
//!
//! Encoding is total and deterministic: the same value always produces the
//! same bytes (containers with unordered iteration must be sorted by their
//! encoders — see the snapshot layer in `impact_core`). Decoding is the
//! fallible direction; every error is represented in [`DecodeError`] and no
//! input can cause a panic or an oversized allocation.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors reported while decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A composite type's version tag did not match the running build's.
    BadTag {
        /// The tag this build writes and expects.
        expected: u8,
        /// The tag found in the input.
        found: u8,
    },
    /// A value was structurally well-formed but semantically impossible
    /// (unknown enum discriminant, index overflow, …).
    Invalid(&'static str),
    /// A length prefix exceeds what the remaining input could possibly hold.
    LengthOverflow {
        /// The claimed element count.
        len: u64,
    },
    /// The value decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Bytes left after the value.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "input truncated: needed {needed} bytes, {remaining} left"
                )
            }
            DecodeError::BadTag { expected, found } => {
                write!(
                    f,
                    "version tag mismatch: expected {expected:#04x}, found {found:#04x}"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
            DecodeError::LengthOverflow { len } => {
                write!(f, "length prefix {len} exceeds the remaining input")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the value")
            }
        }
    }
}

impl Error for DecodeError {}

/// An append-only byte sink with fixed-width little-endian primitives.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a composite type's version tag (one byte; see the module docs).
    pub fn put_tag(&mut self, tag: u8) {
        self.put_u8(tag);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn put_u128(&mut self, value: u128) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian two's-complement `i64`.
    pub fn put_i64(&mut self, value: i64) {
        self.put_u64(value as u64);
    }

    /// Writes the exact bit pattern of a float.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }

    /// Writes a `usize` as a `u64` (lossless on every supported platform).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Writes raw bytes with no length prefix (the caller knows the length).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }
}

/// A cursor over an input slice with fixed-width little-endian primitives.
#[derive(Clone, Copy, Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over the input.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the whole input was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless the input was fully
    /// consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// Takes `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Takes a composite type's version tag and checks it against the tag
    /// this build writes.
    pub fn expect_tag(&mut self, expected: u8) -> Result<(), DecodeError> {
        let found = self.take_u8()?;
        if found == expected {
            Ok(())
        } else {
            Err(DecodeError::BadTag { expected, found })
        }
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let raw = self.take_raw(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let raw = self.take_raw(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// Takes a little-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128, DecodeError> {
        let raw = self.take_raw(16)?;
        Ok(u128::from_le_bytes(raw.try_into().expect("16 bytes")))
    }

    /// Takes a little-endian two's-complement `i64`.
    pub fn take_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.take_u64()? as i64)
    }

    /// Takes a float by its exact bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Takes a `bool`; any byte other than 0 or 1 is invalid.
    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool byte is neither 0 nor 1")),
        }
    }

    /// Takes a `usize` encoded as a `u64`.
    pub fn take_usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| DecodeError::Invalid("usize value exceeds the platform width"))
    }

    /// Takes a sequence length prefix, bounds-checked against the remaining
    /// input so corrupt prefixes cannot trigger huge allocations: every
    /// element of every sequence this codec writes occupies at least
    /// `min_element_bytes` bytes.
    pub fn take_len(&mut self, min_element_bytes: usize) -> Result<usize, DecodeError> {
        let len = self.take_u64()?;
        let bound = (self.remaining() / min_element_bytes.max(1)) as u64;
        if len > bound {
            return Err(DecodeError::LengthOverflow { len });
        }
        Ok(len as usize)
    }

    /// Takes a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_len(1)?;
        self.take_raw(len)
    }

    /// Takes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|_| DecodeError::Invalid("string is not valid UTF-8"))
    }
}

/// A value that can write itself to an [`Encoder`].
pub trait Encode {
    /// Appends this value's encoding.
    fn encode(&self, w: &mut Encoder);
}

/// A value that can read itself back from a [`Decoder`].
///
/// `decode ∘ encode` must be the identity for every value, and decoding must
/// reject (never misinterpret) the encodings of other builds' layouts — see
/// the version-tag convention in the module docs.
pub trait Decode: Sized {
    /// Reads one value.
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Encodes one value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Encoder::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes one value from a slice, requiring the slice to be fully consumed.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Decoder::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! impl_primitive {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Encoder) {
                w.$put(*self);
            }
        }

        impl Decode for $ty {
            fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                r.$take()
            }
        }
    };
}

impl_primitive!(u8, put_u8, take_u8);
impl_primitive!(u32, put_u32, take_u32);
impl_primitive!(u64, put_u64, take_u64);
impl_primitive!(u128, put_u128, take_u128);
impl_primitive!(i64, put_i64, take_i64);
impl_primitive!(f64, put_f64, take_f64);
impl_primitive!(bool, put_bool, take_bool);
impl_primitive!(usize, put_usize, take_usize);

impl Encode for str {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(self);
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(r.take_str()?.to_string())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Encoder) {
        match self {
            None => w.put_u8(0),
            Some(value) => {
                w.put_u8(1);
                value.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option byte is neither 0 nor 1")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        // Every encoded element is at least one byte, so the bound in
        // `take_len` caps the pre-allocation at the remaining input size.
        let len = r.take_len(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Encode + ?Sized> Encode for Arc<T> {
    fn encode(&self, w: &mut Encoder) {
        T::encode(self, w);
    }
}

impl<T: Decode> Decode for Arc<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl Decode for Arc<str> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::from(r.take_str()?))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Encoder) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
        roundtrip(String::from("gcd"));
        roundtrip(String::new());
    }

    #[test]
    fn floats_round_trip_by_bit_pattern() {
        for value in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let bytes = encode_to_vec(&value);
            let back: f64 = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.to_bits(), value.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let back: f64 = decode_from_slice(&encode_to_vec(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![Some(4.5f64), None]);
        roundtrip(Option::<String>::None);
        roundtrip(Some(vec![1u128, 2]));
        roundtrip((42u64, String::from("pair")));
        let arc = Arc::new(vec![7u64]);
        let back: Arc<Vec<u64>> = decode_from_slice(&encode_to_vec(&arc)).unwrap();
        assert_eq!(*back, *arc);
        let label: Arc<str> = Arc::from("loop0");
        let back: Arc<str> = decode_from_slice(&encode_to_vec(&*label)).unwrap();
        assert_eq!(&*back, &*label);
    }

    #[test]
    fn truncated_input_reports_eof() {
        let bytes = encode_to_vec(&12345u64);
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<u64>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::UnexpectedEof { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&1u8);
        bytes.push(0);
        assert!(matches!(
            decode_from_slice::<u8>(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn length_prefixes_are_bounds_checked() {
        // A corrupt length prefix claiming 2^60 elements must fail fast
        // instead of attempting the allocation.
        let mut w = Encoder::new();
        w.put_u64(1 << 60);
        let err = decode_from_slice::<Vec<u64>>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverflow { .. }));
    }

    #[test]
    fn version_tags_gate_decoding() {
        let mut w = Encoder::new();
        w.put_tag(3);
        let mut r = Decoder::new(w.as_bytes());
        assert_eq!(
            r.expect_tag(4),
            Err(DecodeError::BadTag {
                expected: 4,
                found: 3
            })
        );
        let mut r = Decoder::new(w.as_bytes());
        assert!(r.expect_tag(3).is_ok());
        assert!(r.finish().is_ok());
    }

    #[test]
    fn invalid_bool_and_option_bytes_are_rejected() {
        assert!(matches!(
            decode_from_slice::<bool>(&[2]),
            Err(DecodeError::Invalid(_))
        ));
        assert!(matches!(
            decode_from_slice::<Option<u8>>(&[9]),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn errors_render_a_message() {
        for err in [
            DecodeError::UnexpectedEof {
                needed: 8,
                remaining: 3,
            },
            DecodeError::BadTag {
                expected: 1,
                found: 2,
            },
            DecodeError::Invalid("nope"),
            DecodeError::LengthOverflow { len: 99 },
            DecodeError::TrailingBytes { remaining: 4 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
