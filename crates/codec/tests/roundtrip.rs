#![allow(clippy::unwrap_used)]

//! Property tests of the primitive and container codecs: `decode ∘ encode`
//! is the identity for every impl this crate ships, encodings of equal values
//! are identical bytes, and corrupted or truncated inputs produce a
//! [`DecodeError`] — never a panic or a silently wrong value.

use std::sync::Arc;

use impact_codec::{decode_from_slice, encode_to_vec, Decode, Decoder, Encode};
use proptest::collection::vec;
use proptest::prelude::*;

fn assert_roundtrip<T>(value: &T)
where
    T: Encode + Decode + PartialEq + std::fmt::Debug,
{
    let bytes = encode_to_vec(value);
    assert_eq!(bytes, encode_to_vec(value), "encoding is deterministic");
    let back: T = decode_from_slice(&bytes).unwrap();
    assert_eq!(&back, value, "decode ∘ encode must be the identity");
}

/// Decoding arbitrary bytes as `T` either succeeds or errors; it never
/// panics, and a success consumes a prefix that re-encodes to itself.
fn assert_no_panic<T>(bytes: &[u8])
where
    T: Encode + Decode,
{
    let mut r = Decoder::new(bytes);
    if let Ok(value) = T::decode(&mut r) {
        let consumed = bytes.len() - r.remaining();
        assert_eq!(
            encode_to_vec(&value),
            &bytes[..consumed],
            "a successful decode re-encodes to the bytes it consumed"
        );
    }
}

fn arbitrary_f64() -> impl Strategy<Value = f64> {
    // Cover the full bit space, including NaN payloads, infinities, and
    // subnormals: the codec stores the exact bit pattern.
    any::<u64>().prop_map(f64::from_bits)
}

fn arbitrary_string() -> impl Strategy<Value = String> {
    vec(0u32..0xD800, 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn integers_round_trip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        d in any::<i64>(),
    ) {
        assert_roundtrip(&a);
        assert_roundtrip(&b);
        assert_roundtrip(&c);
        assert_roundtrip(&d);
        assert_roundtrip(&((a, b), (c, d)));
    }

    #[test]
    fn wide_and_unsized_scalars_round_trip(
        hi in any::<u64>(),
        lo in any::<u64>(),
        n in any::<usize>(),
        flag in any::<bool>(),
    ) {
        assert_roundtrip(&((u128::from(hi) << 64) | u128::from(lo)));
        assert_roundtrip(&n);
        assert_roundtrip(&flag);
    }

    #[test]
    fn floats_round_trip_bit_exactly(value in arbitrary_f64()) {
        let bytes = encode_to_vec(&value);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), value.to_bits());
    }

    #[test]
    fn strings_round_trip(s in arbitrary_string()) {
        assert_roundtrip(&s);
        let shared: Arc<str> = Arc::from(s.as_str());
        assert_roundtrip(&shared);
    }

    #[test]
    fn options_and_sequences_round_trip(
        values in vec(any::<u64>(), 0..20),
        some in any::<bool>(),
        inner in any::<u32>(),
    ) {
        assert_roundtrip(&values);
        assert_roundtrip(&some.then_some(inner));
        assert_roundtrip(&Arc::new(inner));
        assert_roundtrip(&vec![values.clone(), Vec::new()]);
    }

    #[test]
    fn truncated_encodings_error_instead_of_panicking(
        values in vec(any::<u64>(), 1..10),
        cut_seed in any::<usize>(),
    ) {
        let bytes = encode_to_vec(&values);
        let cut = cut_seed % bytes.len(); // strictly shorter than the input
        prop_assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(junk in vec(any::<u8>(), 0..64)) {
        assert_no_panic::<u8>(&junk);
        assert_no_panic::<u64>(&junk);
        assert_no_panic::<f64>(&junk);
        assert_no_panic::<String>(&junk);
        assert_no_panic::<Option<u64>>(&junk);
        assert_no_panic::<Vec<u32>>(&junk);
        assert_no_panic::<Vec<String>>(&junk);
    }
}
