#![allow(clippy::unwrap_used)]

//! Round-trip tests for every domain codec impl, driven by real synthesis
//! artifacts: for each cache layer's key and value type, `decode ∘ encode`
//! is the identity and re-encoding the decoded value reproduces the original
//! bytes (so snapshots of snapshots are stable).

use impact_behsim::simulate;
use impact_cdfg::{Cdfg, OpClass};
use impact_codec::{decode_from_slice, encode_to_vec, Decode, Encode};
use impact_core::{Evaluator, Impact, SweepSession, SynthesisConfig};
use impact_rtl::RtlDesign;
use proptest::prelude::*;

fn gcd_setup(passes: usize) -> (Cdfg, impact_behsim::ExecutionTrace) {
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let trace = simulate(&cdfg, &bench.input_sequences(passes, 7)).unwrap();
    (cdfg, trace)
}

/// Byte-level identity: works for every codec impl, including types without
/// `PartialEq` (e.g. `DesignContext`, whose lazy index is rebuilt on decode).
fn assert_bytes_roundtrip<T: Encode + Decode>(value: &T, what: &str) {
    let bytes = encode_to_vec(value);
    let back: T = decode_from_slice(&bytes)
        .unwrap_or_else(|e| panic!("decoding a fresh {what} encoding failed: {e:?}"));
    assert_eq!(
        encode_to_vec(&back),
        bytes,
        "{what}: decode ∘ encode must reproduce the original bytes"
    );
}

/// Value-level identity for the types that implement `PartialEq`.
fn assert_value_roundtrip<T>(value: &T, what: &str)
where
    T: Encode + Decode + PartialEq + std::fmt::Debug,
{
    let back: T = decode_from_slice(&encode_to_vec(value)).unwrap();
    assert_eq!(&back, value, "{what}: decode ∘ encode must be the identity");
    assert_bytes_roundtrip(value, what);
}

/// Derives a design from the initial parallel architecture by applying a
/// deterministic pseudo-random subset of moves selected by `seed`.
fn mutated_design(cdfg: &Cdfg, evaluator: &Evaluator<'_>, seed: u64) -> RtlDesign {
    let mut design = RtlDesign::initial_parallel(cdfg, evaluator.library());
    if seed & 1 == 1 {
        let adders = design.units_of_class(OpClass::AddSub);
        if adders.len() >= 2 {
            design.share_fus(adders[0], adders[1]).unwrap();
        }
    }
    if seed & 2 == 2 {
        let comparators = design.units_of_class(OpClass::Compare);
        if comparators.len() >= 2 {
            design.share_fus(comparators[0], comparators[1]).unwrap();
        }
    }
    if seed & 4 == 4 {
        let adders = design.units_of_class(OpClass::AddSub);
        let ripple = evaluator.library().variant_by_name("ripple_adder").unwrap();
        if let Some(&fu) = adders.first() {
            design
                .substitute_module(evaluator.library(), fu, ripple)
                .unwrap();
        }
    }
    if seed & 8 == 8 {
        for site in design.mux_sites(cdfg) {
            if site.fan_in() >= 2 {
                design.set_restructured(site.sink, true);
            }
        }
    }
    design
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn evaluated_points_round_trip(seed in 0u64..16) {
        let (cdfg, trace) = gcd_setup(8);
        let evaluator =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(1.5)).unwrap();
        let design = mutated_design(&cdfg, &evaluator, seed);
        let point = evaluator
            .evaluate(&design)
            .unwrap()
            .expect("gcd at laxity 1.5 is feasible");
        assert_value_roundtrip(&point, "DesignPoint");
        assert_value_roundtrip(&point.design, "RtlDesign");
        assert_value_roundtrip(&point.schedule, "SchedulingResult");
        assert_value_roundtrip(&point.schedule.stg, "Stg");
        assert_value_roundtrip(&point.power, "PowerBreakdown");
    }
}

#[test]
fn every_cache_layer_round_trips_keys_and_values() {
    let (cdfg, trace) = gcd_setup(8);
    let session = SweepSession::new();
    let config = SynthesisConfig::power_optimized(1.6).with_effort(2, 3);
    Impact::new(config)
        .synthesize_with_session(&cdfg, &trace, &session)
        .unwrap();
    let export = session.backend().export();

    assert!(!export.points.is_empty());
    for (k, v) in &export.points {
        assert_value_roundtrip(k, "PointKey");
        assert_value_roundtrip(v, "Arc<DesignPoint>");
    }
    assert!(!export.scaled.is_empty());
    for (k, v) in &export.scaled {
        assert_value_roundtrip(k, "ScaledKey");
        assert_value_roundtrip(v, "Option<Arc<DesignPoint>>");
    }
    assert!(!export.contexts.is_empty());
    for (k, v) in &export.contexts {
        assert_value_roundtrip(k, "ContextKey");
        assert_bytes_roundtrip(v, "Arc<DesignContext>");
    }
    assert!(!export.schedules.is_empty());
    for (k, v) in &export.schedules {
        assert_value_roundtrip(k, "ScheduleKey");
        assert_value_roundtrip(v, "Arc<SchedulingResult>");
    }
    assert!(!export.block_schedules.is_empty());
    for (k, v) in &export.block_schedules {
        assert_value_roundtrip(k, "BlockKey");
        assert_value_roundtrip(v, "Arc<BlockSchedule>");
    }
    assert!(!export.fu_stats.is_empty());
    for (k, v) in &export.fu_stats {
        assert_value_roundtrip(k, "FuStatsKey");
        assert_value_roundtrip(v, "FuStats");
    }
    assert!(!export.reg_stats.is_empty());
    for (k, v) in &export.reg_stats {
        assert_value_roundtrip(k, "RegStatsKey");
        assert_value_roundtrip(v, "RegStats");
    }
    assert!(!export.mux_stats.is_empty());
    for (k, v) in &export.mux_stats {
        assert_value_roundtrip(k, "MuxStatsKey");
        assert_value_roundtrip(v, "MuxEntry");
    }
}
