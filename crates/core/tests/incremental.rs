#![allow(clippy::unwrap_used)]

//! Property tests of the incremental evaluation engine: the Vdd binary
//! search agrees with an exhaustive linear scan of the supply grid, cached
//! and uncached evaluation are bit-identical, and the sequential and
//! incremental engine configurations synthesize identical results.

use impact_behsim::simulate;
use impact_cdfg::{Cdfg, OpClass};
use impact_core::{DesignPoint, EngineConfig, Evaluator, Impact, SynthesisConfig};
use impact_rtl::RtlDesign;
use proptest::prelude::*;

fn gcd_setup(passes: usize) -> (Cdfg, impact_behsim::ExecutionTrace) {
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let inputs = bench.input_sequences(passes, 7);
    let trace = simulate(&cdfg, &inputs).unwrap();
    (cdfg, trace)
}

/// Derives a design from the initial parallel architecture by applying a
/// deterministic pseudo-random subset of moves selected by `seed`.
fn mutated_design(cdfg: &Cdfg, evaluator: &Evaluator<'_>, seed: u64) -> RtlDesign {
    let mut design = RtlDesign::initial_parallel(cdfg, evaluator.library());
    if seed & 1 == 1 {
        let adders = design.units_of_class(OpClass::AddSub);
        if adders.len() >= 2 {
            design.share_fus(adders[0], adders[1]).unwrap();
        }
    }
    if seed & 2 == 2 {
        let comparators = design.units_of_class(OpClass::Compare);
        if comparators.len() >= 2 {
            design.share_fus(comparators[0], comparators[1]).unwrap();
        }
    }
    if seed & 4 == 4 {
        let adders = design.units_of_class(OpClass::AddSub);
        let ripple = evaluator.library().variant_by_name("ripple_adder").unwrap();
        if let Some(&fu) = adders.first() {
            design
                .substitute_module(evaluator.library(), fu, ripple)
                .unwrap();
        }
    }
    if seed & 8 == 8 {
        for site in design.mux_sites(cdfg) {
            if site.fan_in() >= 2 {
                design.set_restructured(site.sink, true);
            }
        }
    }
    if seed & 16 == 16 {
        let registers: Vec<_> = design.registers().map(|(id, _)| id).collect();
        if registers.len() >= 2 {
            design.share_registers(registers[0], registers[1]).unwrap();
        }
    }
    design
}

/// The exhaustive reference implementation of the supply search: scan the
/// grid bottom-up and take the first feasible level.
fn linear_scan(evaluator: &Evaluator<'_>, design: &RtlDesign) -> Option<DesignPoint> {
    evaluator
        .evaluate_at_vdd(design, impact_modlib::VDD_REFERENCE)
        .unwrap()?;
    let levels = evaluator.library().vdd().levels().to_vec();
    levels
        .iter()
        .find_map(|&level| evaluator.evaluate_at_vdd(design, level).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evaluate_matches_an_exhaustive_linear_scan(
        seed in 0u64..32,
        laxity_steps in 0u32..11,
    ) {
        let laxity = 1.0 + 0.2 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(10);
        let evaluator =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(laxity)).unwrap();
        let design = mutated_design(&cdfg, &evaluator, seed);
        let searched = evaluator.evaluate(&design).unwrap();
        let scanned = linear_scan(&evaluator, &design);
        prop_assert_eq!(searched, scanned);
    }

    #[test]
    fn cached_and_uncached_points_are_bit_identical(
        seed in 0u64..32,
        level_index in 0usize..39,
    ) {
        let (cdfg, trace) = gcd_setup(10);
        let config = SynthesisConfig::power_optimized(1.7);
        let cached = Evaluator::new(&cdfg, &trace, config.clone()).unwrap();
        let uncached = Evaluator::new(
            &cdfg,
            &trace,
            config.with_engine(EngineConfig::sequential()),
        )
        .unwrap();
        let design = mutated_design(&cdfg, &cached, seed);
        let levels = cached.library().vdd().levels().to_vec();
        let vdd = levels[level_index % levels.len()];
        let warm = cached.evaluate_at_vdd(&design, vdd).unwrap();
        let replay = cached.evaluate_at_vdd(&design, vdd).unwrap();
        let cold = uncached.evaluate_at_vdd(&design, vdd).unwrap();
        prop_assert_eq!(&warm, &replay);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(cached.evaluate(&design).unwrap(), uncached.evaluate(&design).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_configurations_synthesize_identical_reports(laxity_steps in 0u32..5) {
        let laxity = 1.0 + 0.5 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(10);
        let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
        let sequential = Impact::new(config.clone().with_engine(EngineConfig::sequential()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let incremental = Impact::new(config.with_engine(EngineConfig::incremental()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        prop_assert_eq!(sequential.report.power_mw, incremental.report.power_mw);
        prop_assert_eq!(sequential.report.area, incremental.report.area);
        prop_assert_eq!(sequential.report.vdd, incremental.report.vdd);
        prop_assert_eq!(sequential.report.enc, incremental.report.enc);
        prop_assert_eq!(sequential.design, incremental.design);
        prop_assert_eq!(sequential.history.len(), incremental.history.len());
    }
}
