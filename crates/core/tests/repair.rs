#![allow(clippy::unwrap_used)]

//! Property tests of delta-aware schedule repair: for arbitrary move
//! sequences, seeds, laxities and supply levels, the repaired engine (only
//! the blocks a move touched are rescheduled, untouched blocks spliced from
//! the parent schedule) is bit-identical — STG states, ENC and power — to
//! the full-reschedule oracle (`EngineConfig::full_reschedule`) and to the
//! brute-force sequential path.

use impact_behsim::simulate;
use impact_cdfg::Cdfg;
use impact_core::{EngineConfig, Evaluator, Impact, Move, SynthesisConfig};
use impact_modlib::ModuleLibrary;
use impact_rtl::RtlDesign;
use impact_sched::{repair, uniform_problem, ScheduleDeltaProblem, Scheduler, WaveScheduler};
use proptest::prelude::*;

fn gcd_setup(passes: usize) -> (Cdfg, impact_behsim::ExecutionTrace) {
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let inputs = bench.input_sequences(passes, 29);
    let trace = simulate(&cdfg, &inputs).unwrap();
    (cdfg, trace)
}

/// Every move applicable to `design` (the test's own enumeration,
/// independent of the engine's generator).
fn candidate_moves(cdfg: &Cdfg, library: &ModuleLibrary, design: &RtlDesign) -> Vec<Move> {
    let mut moves = Vec::new();
    for site in design.mux_sites(cdfg) {
        if site.fan_in() >= 2 && !design.is_restructured(site.sink) {
            moves.push(Move::RestructureMux { sink: site.sink });
        }
    }
    for (fu, unit) in design.functional_units() {
        for variant in library.variants_for(unit.class) {
            if variant != unit.module {
                moves.push(Move::SubstituteModule {
                    fu,
                    module: variant,
                });
            }
        }
    }
    let units: Vec<_> = design
        .functional_units()
        .map(|(id, u)| (id, u.class))
        .collect();
    for (i, &(a, class_a)) in units.iter().enumerate() {
        for &(b, class_b) in units.iter().skip(i + 1) {
            if class_a == class_b {
                moves.push(Move::ShareFus { keep: a, remove: b });
            }
        }
    }
    for (fu, _) in design.functional_units() {
        let ops = design.ops_on(fu);
        if ops.len() >= 2 {
            moves.push(Move::SplitFu {
                fu,
                op: ops[ops.len() - 1],
            });
        }
    }
    let regs: Vec<_> = design.registers().map(|(id, _)| id).collect();
    for (i, &a) in regs.iter().enumerate() {
        for &b in regs.iter().skip(i + 1) {
            moves.push(Move::ShareRegisters { keep: a, remove: b });
        }
    }
    moves
}

/// Deterministic pseudo-random successor (LCG).
fn next_seed(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Applies a seed-selected sequence of up to `depth` moves.
fn apply_sequence(
    cdfg: &Cdfg,
    library: &ModuleLibrary,
    design: &mut RtlDesign,
    mut seed: u64,
    depth: usize,
) {
    for _ in 0..depth {
        let moves = candidate_moves(cdfg, library, design);
        if moves.is_empty() {
            break;
        }
        let mv = moves[(seed as usize) % moves.len()].clone();
        seed = next_seed(seed);
        let _ = mv.apply(cdfg, library, design);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn repaired_evaluation_matches_the_full_reschedule_oracle(
        seed in 0u64..1_000_000,
        depth in 0usize..5,
        level_index in 0usize..39,
        laxity_steps in 0u32..11,
    ) {
        let laxity = 1.0 + 0.2 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(8);
        let config = SynthesisConfig::power_optimized(laxity);
        let repaired = Evaluator::new(&cdfg, &trace, config.clone()).unwrap();
        let oracle = Evaluator::new(
            &cdfg,
            &trace,
            config.clone().with_engine(EngineConfig::full_reschedule()),
        )
        .unwrap();
        let brute = Evaluator::new(
            &cdfg,
            &trace,
            config.with_engine(EngineConfig::sequential()),
        )
        .unwrap();
        // An arbitrary parent: the initial architecture after a seed-selected
        // move sequence.
        let mut parent = RtlDesign::initial_parallel(&cdfg, repaired.library());
        apply_sequence(&cdfg, repaired.library(), &mut parent, seed, depth);
        let levels = repaired.library().vdd().levels().to_vec();
        let vdd = levels[level_index % levels.len()];
        // The parent must be in the repaired evaluator's cache first — that
        // is the precondition under which candidate scheduling repairs
        // instead of rescheduling.
        prop_assert_eq!(
            repaired.evaluate(&parent).unwrap(),
            brute.evaluate(&parent).unwrap()
        );
        // Every candidate move off this parent is costed identically by the
        // three paths, at a fixed level and under the full supply search.
        // DesignPoint equality covers the schedule bit-for-bit: STG states
        // and transitions, ENC, cycle bounds, block records and power.
        let moves = candidate_moves(&cdfg, repaired.library(), &parent);
        let mut probe = seed;
        for _ in 0..4 {
            let mv = &moves[(probe as usize) % moves.len()];
            probe = next_seed(probe);
            let spliced = repaired.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            let rescheduled = oracle.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            let cold = brute.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            prop_assert_eq!(&spliced, &rescheduled, "repair vs full reschedule at {}", vdd);
            prop_assert_eq!(&spliced, &cold, "repair vs brute force at {}", vdd);
            let spliced_full = repaired.evaluate_move(&parent, mv).unwrap();
            let rescheduled_full = oracle.evaluate_move(&parent, mv).unwrap();
            let cold_full = brute.evaluate_move(&parent, mv).unwrap();
            prop_assert_eq!(&spliced_full, &rescheduled_full);
            prop_assert_eq!(&spliced_full, &cold_full);
        }
    }

    #[test]
    fn all_blocks_touched_degenerates_to_a_full_reschedule(
        seed in 0u64..1_000_000,
        scale_milli in 1001u64..3000,
    ) {
        // A delta marking every node touched (the projection of a move that
        // perturbs nodes in every block, or of a supply change) must repair
        // into exactly the oracle's schedule, block for block.
        let (cdfg, trace) = gcd_setup(6);
        let problem = uniform_problem(&cdfg, trace.profile());
        let parent = WaveScheduler::new().schedule(&problem).unwrap();
        let mut child = problem.clone();
        let scale = scale_milli as f64 / 1000.0;
        let mut lcg = seed;
        for d in child.node_delays.iter_mut() {
            lcg = next_seed(lcg);
            // Scale plus a tiny per-node jitter so every delay's bits move.
            *d = *d * scale + 0.001 * ((lcg % 97) as f64 + 1.0);
        }
        let delta = ScheduleDeltaProblem {
            problem: &child,
            touched: vec![true; child.node_delays.len()],
        };
        let repaired = repair(&parent, &delta).unwrap();
        let oracle = WaveScheduler::new().schedule(&child).unwrap();
        prop_assert_eq!(repaired, oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn repaired_engine_synthesizes_identically_to_the_oracle_engine(
        laxity_steps in 0u32..5,
    ) {
        let laxity = 1.0 + 0.5 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(10);
        let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
        let spliced = Impact::new(config.clone().with_engine(EngineConfig::incremental()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let oracle = Impact::new(config.clone().with_engine(EngineConfig::full_reschedule()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let brute = Impact::new(config.with_engine(EngineConfig::sequential()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        prop_assert_eq!(&spliced.report, &oracle.report);
        prop_assert_eq!(&spliced.report, &brute.report);
        prop_assert_eq!(&spliced.design, &oracle.design);
        prop_assert_eq!(&spliced.design, &brute.design);
        prop_assert_eq!(spliced.history.len(), oracle.history.len());
        // The repaired engine actually exercises the block layer; the oracle
        // never touches it.
        prop_assert!(spliced.cache_stats.block.hits + spliced.cache_stats.block.misses > 0);
        prop_assert_eq!(oracle.cache_stats.block.hits + oracle.cache_stats.block.misses, 0);
    }
}
