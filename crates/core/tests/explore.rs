#![allow(clippy::unwrap_used)]

//! The explorer-layer contract, pinned from the outside:
//!
//! - `GreedyExplorer` is **bit-identical** to the pre-refactor monolithic
//!   engine. The pins below are `f64::to_bits` values captured from the
//!   engine as it stood before the search-policy extraction; any drift in
//!   power, area, supply, ENC, or the committed-move/pass counts is a
//!   regression in the kernel or the greedy policy, not noise.
//! - `BeamExplorer` with width 1 degenerates to greedy, bit for bit.
//! - `RestartExplorer` never does worse than greedy and is deterministic
//!   for a fixed seed.
//! - Every member of a `ParetoSweep` front is non-dominated and the front
//!   contains the greedy optimum.

use impact_behsim::simulate;
use impact_cdfg::Cdfg;
use impact_core::{BeamExplorer, ExplorerKind, Impact, SynthesisConfig, SynthesisOutcome};
use proptest::prelude::*;

/// One pinned run: benchmark, laxity, then `f64::to_bits` of the final
/// power (at the chosen supply), power at the reference supply, area,
/// supply, and ENC — plus the committed-move and pass counts.
struct Pin {
    bench: &'static str,
    laxity: f64,
    power: u64,
    power_ref: u64,
    area: u64,
    vdd: u64,
    enc: u64,
    moves: usize,
    passes: usize,
}

/// Captured from the pre-refactor engine at `with_effort(2, 3)` over
/// `input_sequences(12, 17)`. Do not regenerate these from current code:
/// their whole point is that they predate the explorer extraction.
const PINS: &[Pin] = &[
    Pin {
        bench: "gcd",
        laxity: 1.0,
        power: 0x3fc9cbb935689ea3,
        power_ref: 0x3fce7a21792c3d9b,
        area: 0x407e800000000000,
        vdd: 0x4012666666666666,
        enc: 0x4052eaaaaaaaaaab,
        moves: 6,
        passes: 2,
    },
    Pin {
        bench: "gcd",
        laxity: 2.0,
        power: 0x3fb37bdea1d9bc3c,
        power_ref: 0x3fcf10992a8ad3f4,
        area: 0x4082f80000000000,
        vdd: 0x4006666666666666,
        enc: 0x4060655555555555,
        moves: 6,
        passes: 2,
    },
    Pin {
        bench: "x25_send",
        laxity: 1.0,
        power: 0x3fdc8b23faef3613,
        power_ref: 0x3fe0dc999c389f76,
        area: 0x4095f90000000000,
        vdd: 0x4012666666666666,
        enc: 0x40509aaaaaaaaaab,
        moves: 5,
        passes: 2,
    },
    Pin {
        bench: "x25_send",
        laxity: 2.0,
        power: 0x3fc56b51a8be4f2c,
        power_ref: 0x3fe94e66c4f24460,
        area: 0x40a2128000000000,
        vdd: 0x4002666666666666,
        enc: 0x4060a80000000000,
        moves: 0,
        passes: 1,
    },
    Pin {
        bench: "dealer",
        laxity: 1.0,
        power: 0x3fe21055adfec640,
        power_ref: 0x3fe64d0e1f801133,
        area: 0x409d720000000000,
        vdd: 0x4012000000000000,
        enc: 0x4039000000000000,
        moves: 1,
        passes: 2,
    },
    Pin {
        bench: "dealer",
        laxity: 2.0,
        power: 0x3fcaacf31b06e452,
        power_ref: 0x3fef843acea18c8c,
        area: 0x40a6e50000000000,
        vdd: 0x4002666666666666,
        enc: 0x4048f55555555556,
        moves: 0,
        passes: 1,
    },
    Pin {
        bench: "paulin",
        laxity: 1.0,
        power: 0x40038e44f4857994,
        power_ref: 0x40071ac78c5423ba,
        area: 0x40c0cb8000000000,
        vdd: 0x4012666666666666,
        enc: 0x405ec00000000000,
        moves: 6,
        passes: 2,
    },
    Pin {
        bench: "paulin",
        laxity: 2.0,
        power: 0x3fecf5afd1ead722,
        power_ref: 0x40058593b5928518,
        area: 0x40c1bf8000000000,
        vdd: 0x4007333333333333,
        enc: 0x406e800000000000,
        moves: 2,
        passes: 2,
    },
];

fn setup(bench: &str) -> (Cdfg, impact_behsim::ExecutionTrace) {
    let bench = impact_benchmarks::by_name(bench).unwrap();
    let cdfg = bench.compile().unwrap();
    let inputs = bench.input_sequences(12, 17);
    let trace = simulate(&cdfg, &inputs).unwrap();
    (cdfg, trace)
}

fn run(
    cdfg: &Cdfg,
    trace: &impact_behsim::ExecutionTrace,
    laxity: f64,
    explorer: ExplorerKind,
) -> SynthesisOutcome {
    let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
    let engine = config.engine.with_explorer(explorer);
    let config = config.with_engine(engine);
    Impact::new(config).synthesize(cdfg, trace).unwrap()
}

#[test]
fn greedy_explorer_is_bit_identical_to_the_pre_refactor_engine() {
    for pin in PINS {
        let (cdfg, trace) = setup(pin.bench);
        let outcome = run(&cdfg, &trace, pin.laxity, ExplorerKind::Greedy);
        let label = format!("{} laxity {}", pin.bench, pin.laxity);
        assert_eq!(
            outcome.report.power_mw.to_bits(),
            pin.power,
            "{label}: power"
        );
        assert_eq!(
            outcome.report.power_at_reference_mw.to_bits(),
            pin.power_ref,
            "{label}: reference power"
        );
        assert_eq!(outcome.report.area.to_bits(), pin.area, "{label}: area");
        assert_eq!(outcome.report.vdd.to_bits(), pin.vdd, "{label}: vdd");
        assert_eq!(outcome.report.enc.to_bits(), pin.enc, "{label}: enc");
        assert_eq!(outcome.report.moves_applied, pin.moves, "{label}: moves");
        assert_eq!(outcome.report.passes, pin.passes, "{label}: passes");
        assert!(outcome.front.is_empty(), "{label}: greedy reports no front");
        for record in &outcome.history {
            assert_eq!(record.strategy, "greedy", "{label}: strategy tag");
        }
    }
}

/// The exact outcome facets a search strategy determines; two outcomes with
/// equal facets committed the same moves to the same design.
fn facets(outcome: &SynthesisOutcome) -> (u64, u64, u64, u64, usize, usize, Vec<String>) {
    (
        outcome.report.power_mw.to_bits(),
        outcome.report.area.to_bits(),
        outcome.report.vdd.to_bits(),
        outcome.report.enc.to_bits(),
        outcome.report.moves_applied,
        outcome.report.passes,
        outcome
            .history
            .iter()
            .map(|r| format!("{:?}@{}", r.applied, r.pass))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Beam search with width 1 explores exactly one node per step and must
    /// therefore reproduce the greedy trajectory bit for bit, across
    /// benchmarks and laxities.
    #[test]
    fn beam_width_one_is_bit_identical_to_greedy(case in 0usize..6) {
        let bench = ["gcd", "dealer"][case % 2];
        let laxity = [1.0f64, 1.5, 2.0][case / 2];
        let (cdfg, trace) = setup(bench);
        let greedy = run(&cdfg, &trace, laxity, ExplorerKind::Greedy);
        let beam = run(&cdfg, &trace, laxity, ExplorerKind::Beam { width: 1 });
        let beam_strategies: Vec<_> =
            beam.history.iter().map(|r| r.strategy).collect();
        prop_assert!(beam_strategies.iter().all(|s| *s == "beam"));
        prop_assert_eq!(facets(&greedy), facets(&beam));
    }
}

#[test]
fn beam_explorer_width_defaults_are_exposed() {
    let beam = BeamExplorer {
        width: impact_core::DEFAULT_BEAM_WIDTH,
    };
    assert_eq!(beam.width, 3);
    assert_eq!(
        ExplorerKind::parse("beam").unwrap(),
        ExplorerKind::Beam {
            width: impact_core::DEFAULT_BEAM_WIDTH
        }
    );
}

#[test]
fn restart_explorer_never_loses_to_greedy_and_is_deterministic() {
    let (cdfg, trace) = setup("gcd");
    for laxity in [1.0, 2.0] {
        let greedy = run(&cdfg, &trace, laxity, ExplorerKind::Greedy);
        let kind = ExplorerKind::Restart {
            restarts: 2,
            kicks: 2,
            seed: 7,
        };
        let first = run(&cdfg, &trace, laxity, kind);
        let second = run(&cdfg, &trace, laxity, kind);
        assert!(
            first.report.power_mw <= greedy.report.power_mw + 1e-9,
            "restart must never be worse than greedy (laxity {laxity})"
        );
        assert_eq!(
            facets(&first),
            facets(&second),
            "restart is deterministic for a fixed seed (laxity {laxity})"
        );
    }
}

#[test]
fn pareto_front_members_are_mutually_non_dominated_and_contain_the_best() {
    let (cdfg, trace) = setup("gcd");
    for laxity in [1.0, 2.0] {
        let greedy = run(&cdfg, &trace, laxity, ExplorerKind::Greedy);
        let outcome = run(&cdfg, &trace, laxity, ExplorerKind::Pareto);
        assert_eq!(
            outcome.report.power_mw.to_bits(),
            greedy.report.power_mw.to_bits(),
            "the Pareto best point is the greedy optimum (laxity {laxity})"
        );
        let front = &outcome.front;
        assert!(!front.is_empty(), "front is never empty (laxity {laxity})");
        assert!(
            front.iter().any(|p| {
                p.power.total_mw().to_bits() == outcome.report.power_mw.to_bits()
                    && p.area.to_bits() == outcome.report.area.to_bits()
            }),
            "front contains the reported optimum (laxity {laxity})"
        );
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominated = a.power.total_mw() <= b.power.total_mw()
                    && a.area <= b.area
                    && a.enc() <= b.enc()
                    && (a.power.total_mw() < b.power.total_mw()
                        || a.area < b.area
                        || a.enc() < b.enc());
                assert!(
                    !dominated,
                    "front member {j} is dominated by {i} (laxity {laxity})"
                );
            }
        }
    }
}

#[test]
fn explore_stats_count_probes_and_commits() {
    let (cdfg, trace) = setup("gcd");
    let outcome = run(&cdfg, &trace, 2.0, ExplorerKind::Greedy);
    let stats = outcome.cache_stats.explore;
    assert!(stats.rank_probes > 0, "ranking probed candidates");
    assert!(stats.probes > 0, "full probes were made");
    assert_eq!(
        stats.commits as usize, outcome.report.moves_applied,
        "commit count matches the history"
    );
    assert_eq!(stats.restarts, 0);
    assert_eq!(stats.pareto_kept, 0);

    let pareto = run(&cdfg, &trace, 2.0, ExplorerKind::Pareto);
    let pstats = pareto.cache_stats.explore;
    assert_eq!(pstats.pareto_kept as usize, pareto.front.len());
    let restart = run(
        &cdfg,
        &trace,
        2.0,
        ExplorerKind::Restart {
            restarts: 2,
            kicks: 1,
            seed: 3,
        },
    );
    assert_eq!(restart.cache_stats.explore.restarts, 2);
}
