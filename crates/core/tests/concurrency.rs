#![allow(clippy::unwrap_used)]

//! Concurrency and algebra of the shared cache merge path: `export` racing
//! `absorb` on one [`InMemoryCache`] never observes a torn snapshot, and
//! `absorb` is idempotent and order-independent — the properties the
//! sharded search relies on when worker deltas arrive in arbitrary order
//! and possibly more than once.

use std::sync::OnceLock;

use impact_behsim::simulate;
use impact_core::{
    encode_snapshot, CacheBackend, CacheSnapshot, Impact, InMemoryCache, SweepSession,
    SynthesisConfig,
};
use proptest::prelude::*;

/// One real run's cache contents, built once — synthesis is the expensive
/// part of these tests and every case partitions the same snapshot.
fn populated_snapshot() -> &'static CacheSnapshot {
    static SNAPSHOT: OnceLock<CacheSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = simulate(&cdfg, &bench.input_sequences(6, 11)).unwrap();
        let session = SweepSession::new();
        for laxity in [1.4, 2.2] {
            Impact::new(SynthesisConfig::power_optimized(laxity).with_effort(2, 3))
                .synthesize_with_session(&cdfg, &trace, &session)
                .unwrap();
        }
        session.backend().export()
    })
}

/// Splits a snapshot into two disjoint parts: entry `i` (counted across the
/// layers in sorted key order, so the partition is deterministic) goes to
/// the first part when bit `i % 64` of `mask` is set.
fn partition(snapshot: &CacheSnapshot, mask: u64) -> (CacheSnapshot, CacheSnapshot) {
    let mut a = CacheSnapshot::default();
    let mut b = CacheSnapshot::default();
    let mut index = 0usize;
    macro_rules! split {
        ($field:ident) => {
            let mut entries: Vec<_> = snapshot.$field.iter().collect();
            entries.sort_by_key(|(key, _)| **key);
            for (key, value) in entries {
                if (mask >> (index % 64)) & 1 == 1 {
                    a.$field.insert(*key, value.clone());
                } else {
                    b.$field.insert(*key, value.clone());
                }
                index += 1;
            }
        };
    }
    split!(points);
    split!(scaled);
    split!(contexts);
    split!(schedules);
    split!(block_schedules);
    split!(fu_stats);
    split!(reg_stats);
    split!(mux_stats);
    let _ = index;
    (a, b)
}

#[test]
fn export_racing_absorb_never_tears() {
    let snapshot = populated_snapshot();
    let total = snapshot.len();
    assert!(total > 0, "a real run populates the cache");
    let (first, second) = partition(snapshot, 0xAAAA_AAAA_AAAA_AAAA);
    let cache = InMemoryCache::new();
    cache.absorb(first.clone());

    std::thread::scope(|scope| {
        // One thread merges the second half in small pieces while the others
        // continuously export. Every export must see a coherent prefix of
        // the merge: at least the first half, never more than the union, and
        // sizes only grow (absorb never removes entries).
        scope.spawn(|| {
            for shift in 0..64 {
                let (piece, _) = partition(&second, 1u64 << shift);
                cache.absorb(piece);
            }
            cache.absorb(second.clone());
        });
        for _ in 0..2 {
            scope.spawn(|| {
                let mut last_len = 0usize;
                for _ in 0..50 {
                    let view = cache.export();
                    assert!(view.len() >= first.len(), "the first half never vanishes");
                    assert!(view.len() <= total, "no entry appears from nowhere");
                    assert!(view.len() >= last_len, "absorb only ever adds entries");
                    last_len = view.len();
                }
            });
        }
    });

    assert_eq!(
        encode_snapshot(&cache.export()),
        encode_snapshot(snapshot),
        "after the race the merge converged on the full snapshot"
    );
}

#[test]
fn concurrent_absorbs_from_many_threads_converge() {
    let snapshot = populated_snapshot();
    let (a, rest) = partition(snapshot, 0x9249_2492_4924_9249);
    let (b, c) = partition(&rest, 0x5555_5555_5555_5555);
    let cache = InMemoryCache::new();
    std::thread::scope(|scope| {
        for part in [&a, &b, &c] {
            scope.spawn(|| {
                cache.absorb(part.clone());
            });
        }
    });
    assert_eq!(encode_snapshot(&cache.export()), encode_snapshot(snapshot));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Absorbing the same snapshot twice changes nothing: the second pass is
    /// all duplicates and the contents (hence the encoded bytes) are stable.
    #[test]
    fn absorb_is_idempotent(mask in any::<u64>()) {
        let (part, _) = partition(populated_snapshot(), mask);
        let entries = part.len() as u64;
        let cache = InMemoryCache::new();
        let first = cache.absorb(part.clone());
        prop_assert_eq!(first.absorbed, entries);
        let after_once = encode_snapshot(&cache.export());
        let second = cache.absorb(part);
        prop_assert_eq!(second.absorbed, 0);
        prop_assert_eq!(second.duplicates, entries);
        prop_assert_eq!(encode_snapshot(&cache.export()), after_once);
    }

    /// Merge order never matters: A then B equals B then A byte-for-byte,
    /// and both equal the undivided snapshot.
    #[test]
    fn absorb_is_order_independent(mask in any::<u64>()) {
        let snapshot = populated_snapshot();
        let (a, b) = partition(snapshot, mask);
        let ab = InMemoryCache::new();
        ab.absorb(a.clone());
        ab.absorb(b.clone());
        let ba = InMemoryCache::new();
        ba.absorb(b);
        ba.absorb(a);
        let bytes_ab = encode_snapshot(&ab.export());
        prop_assert_eq!(&bytes_ab, &encode_snapshot(&ba.export()));
        prop_assert_eq!(&bytes_ab, &encode_snapshot(snapshot));
    }
}
