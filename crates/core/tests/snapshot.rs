#![allow(clippy::unwrap_used)]

//! Persistence tests: snapshot round trips are lossless and deterministic,
//! warm-started sessions replay bit-identically with a full point-layer hit
//! rate, and stale, truncated or corrupt snapshots degrade to a cold start —
//! never a wrong hit — while leaving the session usable.

use std::sync::Arc;

use impact_behsim::simulate;
use impact_core::{
    CacheBackend, DiskCache, Evaluator, Impact, SnapshotRejection, SnapshotScope, SweepSession,
    SynthesisConfig, SynthesisOutcome, SNAPSHOT_MAGIC,
};

fn gcd_job() -> (
    impact_cdfg::Cdfg,
    impact_behsim::ExecutionTrace,
    SynthesisConfig,
) {
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let trace = simulate(&cdfg, &bench.input_sequences(10, 7)).unwrap();
    let config = SynthesisConfig::power_optimized(1.6).with_effort(2, 3);
    (cdfg, trace, config)
}

fn run(
    cdfg: &impact_cdfg::Cdfg,
    trace: &impact_behsim::ExecutionTrace,
    config: &SynthesisConfig,
    session: &SweepSession,
) -> SynthesisOutcome {
    Impact::new(config.clone())
        .synthesize_with_session(cdfg, trace, session)
        .unwrap()
}

/// A populated session plus the cold outcome and its snapshot bytes.
fn populated() -> (SynthesisOutcome, Vec<u8>) {
    let (cdfg, trace, config) = gcd_job();
    let session = SweepSession::new();
    let cold = run(&cdfg, &trace, &config, &session);
    let bytes = session.save_snapshot();
    (cold, bytes)
}

#[test]
fn snapshots_are_deterministic_and_round_trip_losslessly() {
    let (cdfg, trace, config) = gcd_job();
    let session = SweepSession::new();
    let cold = run(&cdfg, &trace, &config, &session);
    let bytes = session.save_snapshot();
    assert_eq!(bytes, session.save_snapshot(), "same contents, same bytes");
    assert_eq!(session.stats().snapshot.saves, 2);

    // Export → save → load → absorb into a fresh session: the re-encoded
    // bytes are identical, so the round trip lost nothing.
    let warm = SweepSession::new();
    let merged = warm.load_snapshot(&bytes, SnapshotScope::Any).unwrap();
    assert!(merged.absorbed > 0, "the cold run populated every layer");
    assert_eq!(merged.duplicates, 0, "the fresh session had no entries");
    assert_eq!(merged.dropped, 0, "nothing was evicted at default capacity");
    assert_eq!(warm.save_snapshot(), bytes, "decode∘encode is the identity");
    assert_eq!(warm.stats().snapshot.loads, 1);

    // The warm replay reproduces the cold run bit for bit and never
    // recomputes a design point.
    let replay = run(&cdfg, &trace, &config, &warm);
    assert_eq!(replay.report, cold.report);
    assert_eq!(replay.design, cold.design);
    assert_eq!(replay.schedule, cold.schedule);
    let stats = warm.stats();
    assert!(stats.point.hits > 0);
    assert_eq!(
        stats.point.misses, 0,
        "a warm replay answers every point lookup from the snapshot"
    );
}

#[test]
fn workload_scoped_loads_accept_their_workload_and_reject_others() {
    let (cdfg, trace, config) = gcd_job();
    let session = SweepSession::new();
    let _ = run(&cdfg, &trace, &config, &session);
    let bytes = session.save_snapshot();
    let workload = Evaluator::with_session(&cdfg, &trace, config, &session)
        .unwrap()
        .workload();

    let scoped = SweepSession::new();
    assert!(scoped
        .load_snapshot(&bytes, SnapshotScope::Workload(workload))
        .is_ok());

    // A snapshot of a different workload (same benchmark, different trace)
    // fails the scope check and leaves the session cold.
    let other_trace = simulate(&cdfg, &impact_benchmarks::gcd().input_sequences(6, 3)).unwrap();
    let other_workload = Evaluator::with_session(
        &cdfg,
        &other_trace,
        SynthesisConfig::power_optimized(1.6).with_effort(2, 3),
        &scoped,
    )
    .unwrap()
    .workload();
    assert_ne!(workload, other_workload);
    let strict = SweepSession::new();
    assert_eq!(
        strict.load_snapshot(&bytes, SnapshotScope::Workload(other_workload)),
        Err(SnapshotRejection::Digest)
    );
    assert_eq!(strict.stats().snapshot.rejected_digest, 1);
    assert_eq!(strict.save_snapshot(), SweepSession::new().save_snapshot());
}

#[test]
fn every_sampled_bit_flip_is_rejected() {
    let (_, bytes) = populated();
    let session = SweepSession::new();
    // Exhaustively flipping every bit of a multi-megabyte snapshot is too
    // slow for CI; cover the structure instead: every byte of the header and
    // trailer plus a stride through the payload.
    let mut positions: Vec<usize> = (0..64.min(bytes.len())).collect();
    positions.extend((bytes.len().saturating_sub(48)..bytes.len()).collect::<Vec<_>>());
    positions.extend((0..bytes.len()).step_by(4097));
    for pos in positions {
        for bit in [0, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert!(
                session.load_snapshot(&corrupt, SnapshotScope::Any).is_err(),
                "a flip of byte {pos} bit {bit} must be rejected"
            );
        }
    }
    assert_eq!(session.stats().snapshot.loads, 0);
    // The session survived every rejection unchanged and still loads the
    // pristine bytes.
    assert!(session.load_snapshot(&bytes, SnapshotScope::Any).is_ok());
}

#[test]
fn truncations_are_rejected_with_the_truncation_reason() {
    let (_, bytes) = populated();
    let session = SweepSession::new();
    let cuts = [0, 1, 8, 20, 35, 36, 100, bytes.len() / 2, bytes.len() - 1];
    for &cut in &cuts {
        assert_eq!(
            session.load_snapshot(&bytes[..cut], SnapshotScope::Any),
            Err(SnapshotRejection::Truncated),
            "a snapshot cut to {cut} bytes must classify as truncated"
        );
    }
    assert_eq!(
        session.stats().snapshot.rejected_truncated,
        cuts.len() as u64
    );
}

#[test]
fn foreign_versions_and_magics_are_rejected_as_version_mismatches() {
    let (_, bytes) = populated();
    let session = SweepSession::new();

    // A writer with a bumped container version.
    let mut future = bytes.clone();
    future[SNAPSHOT_MAGIC.len()] = future[SNAPSHOT_MAGIC.len()].wrapping_add(1);
    assert_eq!(
        session.load_snapshot(&future, SnapshotScope::Any),
        Err(SnapshotRejection::Version)
    );

    // A different file format altogether.
    let mut alien = bytes.clone();
    alien[..SNAPSHOT_MAGIC.len()].copy_from_slice(b"NOTCACHE");
    assert_eq!(
        session.load_snapshot(&alien, SnapshotScope::Any),
        Err(SnapshotRejection::Version)
    );

    // Trailing junk after the declared length.
    let mut padded = bytes.clone();
    padded.push(0);
    assert_eq!(
        session.load_snapshot(&padded, SnapshotScope::Any),
        Err(SnapshotRejection::Version)
    );

    assert_eq!(session.stats().snapshot.rejected_version, 3);
}

#[test]
fn disk_cache_persists_across_opens_and_degrades_corrupt_files_to_cold() {
    let path = std::env::temp_dir().join(format!(
        "impact_disk_cache_test_{}.snapshot",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let (cdfg, trace, config) = gcd_job();

    // A missing file is a normal cold open.
    let disk = Arc::new(DiskCache::open(&path, SnapshotScope::Any).unwrap());
    assert_eq!(disk.stats().snapshot.loads, 0);
    assert_eq!(disk.stats().snapshot.rejected(), 0);
    let session = SweepSession::with_backend(disk.clone());
    let cold = run(&cdfg, &trace, &config, &session);
    disk.flush().unwrap();

    // Reopening hydrates from disk; the replay is bit-identical with a full
    // point-layer hit rate.
    let reopened = Arc::new(DiskCache::open(&path, SnapshotScope::Any).unwrap());
    assert_eq!(reopened.stats().snapshot.loads, 1);
    let warm = SweepSession::with_backend(reopened.clone());
    let replay = run(&cdfg, &trace, &config, &warm);
    assert_eq!(replay.report, cold.report);
    assert_eq!(replay.design, cold.design);
    let stats = warm.stats();
    assert!(stats.point.hits > 0);
    assert_eq!(stats.point.misses, 0);

    // A corrupted file degrades to a counted cold start and the session
    // stays fully usable.
    let mut corrupt = std::fs::read(&path).unwrap();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    std::fs::write(&path, &corrupt).unwrap();
    let recovered = Arc::new(DiskCache::open(&path, SnapshotScope::Any).unwrap());
    let stats = recovered.stats();
    assert_eq!(stats.snapshot.loads, 0);
    assert_eq!(stats.snapshot.rejected(), 1);
    assert_eq!(stats.points, 0, "nothing from the corrupt file is trusted");
    let fresh = SweepSession::with_backend(recovered.clone());
    let redone = run(&cdfg, &trace, &config, &fresh);
    assert_eq!(
        redone.report, cold.report,
        "cold recomputation still agrees"
    );
    // Flushing replaces the corrupt file wholesale.
    recovered.flush().unwrap();
    let healed = DiskCache::open(&path, SnapshotScope::Any).unwrap();
    assert_eq!(healed.stats().snapshot.loads, 1);

    let _ = std::fs::remove_file(&path);
}
