#![allow(clippy::unwrap_used)]

//! Property tests of delta evaluation: for arbitrary move sequences, seeds
//! and supply levels, delta-patched candidate evaluation (incremental
//! fingerprints, patched contexts, memoized schedules) is bit-identical to
//! the full-rebuild oracle and to the brute-force sequential path, and
//! `revert_delta` restores the exact pre-move design.

use impact_behsim::simulate;
use impact_cdfg::Cdfg;
use impact_core::{EngineConfig, Evaluator, Impact, Move, SynthesisConfig};
use impact_modlib::ModuleLibrary;
use impact_rtl::RtlDesign;
use proptest::prelude::*;

fn gcd_setup(passes: usize) -> (Cdfg, impact_behsim::ExecutionTrace) {
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let inputs = bench.input_sequences(passes, 13);
    let trace = simulate(&cdfg, &inputs).unwrap();
    (cdfg, trace)
}

/// Every move applicable to `design`, across all six move families (the
/// test's own enumeration, independent of the engine's generator).
fn candidate_moves(cdfg: &Cdfg, library: &ModuleLibrary, design: &RtlDesign) -> Vec<Move> {
    let mut moves = Vec::new();
    for site in design.mux_sites(cdfg) {
        if site.fan_in() >= 2 && !design.is_restructured(site.sink) {
            moves.push(Move::RestructureMux { sink: site.sink });
        }
    }
    for (fu, unit) in design.functional_units() {
        for variant in library.variants_for(unit.class) {
            if variant != unit.module {
                moves.push(Move::SubstituteModule {
                    fu,
                    module: variant,
                });
            }
        }
    }
    let units: Vec<_> = design
        .functional_units()
        .map(|(id, u)| (id, u.class))
        .collect();
    for (i, &(a, class_a)) in units.iter().enumerate() {
        for &(b, class_b) in units.iter().skip(i + 1) {
            if class_a == class_b {
                moves.push(Move::ShareFus { keep: a, remove: b });
            }
        }
    }
    for (fu, _) in design.functional_units() {
        let ops = design.ops_on(fu);
        if ops.len() >= 2 {
            moves.push(Move::SplitFu {
                fu,
                op: ops[ops.len() - 1],
            });
        }
    }
    let regs: Vec<_> = design.registers().map(|(id, _)| id).collect();
    for (i, &a) in regs.iter().enumerate() {
        for &b in regs.iter().skip(i + 1) {
            moves.push(Move::ShareRegisters { keep: a, remove: b });
        }
    }
    for (reg, r) in design.registers() {
        if r.variables.len() >= 2 {
            moves.push(Move::SplitRegister {
                reg,
                var: r.variables[r.variables.len() - 1],
            });
        }
    }
    moves
}

/// Deterministic pseudo-random successor (LCG).
fn next_seed(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Applies a seed-selected sequence of up to `depth` moves, returning the
/// applied moves' deltas together with the chosen moves.
fn apply_sequence(
    cdfg: &Cdfg,
    library: &ModuleLibrary,
    design: &mut RtlDesign,
    mut seed: u64,
    depth: usize,
) -> Vec<(Move, impact_rtl::DesignDelta)> {
    let mut applied = Vec::new();
    for _ in 0..depth {
        let moves = candidate_moves(cdfg, library, design);
        if moves.is_empty() {
            break;
        }
        let mv = moves[(seed as usize) % moves.len()].clone();
        seed = next_seed(seed);
        if let Ok(delta) = mv.apply(cdfg, library, design) {
            applied.push((mv, delta));
        }
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fingerprints_patch_exactly_and_deltas_revert_exactly(
        seed in 0u64..1_000_000,
        depth in 1usize..8,
    ) {
        let (cdfg, _) = gcd_setup(6);
        let library = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &library);
        let original = design.clone();
        let mut running = design.fingerprint();
        let applied = apply_sequence(&cdfg, &library, &mut design, seed, depth);
        prop_assert!(!applied.is_empty(), "some move always applies");
        // Replaying the chain of patches tracks the full recomputation at
        // every step.
        let mut replay = original.clone();
        for (_, delta) in &applied {
            replay.apply_delta(delta);
            running = RtlDesign::fingerprint_update(running, delta);
            prop_assert_eq!(running, replay.fingerprint());
        }
        prop_assert_eq!(&replay, &design);
        // Reverting in reverse order restores the exact pre-move design.
        for (_, delta) in applied.iter().rev() {
            design.revert_delta(delta);
        }
        prop_assert_eq!(&design, &original);
        prop_assert_eq!(design.fingerprint(), original.fingerprint());
    }

    #[test]
    fn delta_patched_evaluation_matches_oracle_and_brute_force(
        seed in 0u64..1_000_000,
        depth in 0usize..5,
        level_index in 0usize..39,
        laxity_steps in 0u32..11,
    ) {
        let laxity = 1.0 + 0.2 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(8);
        let config = SynthesisConfig::power_optimized(laxity);
        let delta_eval = Evaluator::new(&cdfg, &trace, config.clone()).unwrap();
        let oracle = Evaluator::new(
            &cdfg,
            &trace,
            config.clone().with_engine(EngineConfig::full_rebuild()),
        )
        .unwrap();
        let brute = Evaluator::new(
            &cdfg,
            &trace,
            config.with_engine(EngineConfig::sequential()),
        )
        .unwrap();
        // An arbitrary parent: the initial architecture after a seed-selected
        // move sequence.
        let mut parent = RtlDesign::initial_parallel(&cdfg, delta_eval.library());
        apply_sequence(&cdfg, delta_eval.library(), &mut parent, seed, depth);
        let levels = delta_eval.library().vdd().levels().to_vec();
        let vdd = levels[level_index % levels.len()];
        // Every candidate move off this parent is costed identically by the
        // three paths, at a fixed level and under the full supply search.
        let moves = candidate_moves(&cdfg, delta_eval.library(), &parent);
        let mut probe = seed;
        for _ in 0..4 {
            let mv = &moves[(probe as usize) % moves.len()];
            probe = next_seed(probe);
            let patched = delta_eval.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            let rebuilt = oracle.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            let cold = brute.evaluate_move_at_vdd(&parent, mv, vdd).unwrap();
            prop_assert_eq!(&patched, &rebuilt, "patched vs oracle at {}", vdd);
            prop_assert_eq!(&patched, &cold, "patched vs brute force at {}", vdd);
            let patched_full = delta_eval.evaluate_move(&parent, mv).unwrap();
            let rebuilt_full = oracle.evaluate_move(&parent, mv).unwrap();
            let cold_full = brute.evaluate_move(&parent, mv).unwrap();
            prop_assert_eq!(&patched_full, &rebuilt_full);
            prop_assert_eq!(&patched_full, &cold_full);
        }
        // The parent itself evaluates identically too (cache replay path).
        prop_assert_eq!(
            delta_eval.evaluate(&parent).unwrap(),
            brute.evaluate(&parent).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn delta_engine_synthesizes_identically_to_the_oracle_engine(
        laxity_steps in 0u32..5,
    ) {
        let laxity = 1.0 + 0.5 * f64::from(laxity_steps);
        let (cdfg, trace) = gcd_setup(10);
        let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
        let delta = Impact::new(config.clone().with_engine(EngineConfig::incremental()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let oracle = Impact::new(config.clone().with_engine(EngineConfig::full_rebuild()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let brute = Impact::new(config.with_engine(EngineConfig::sequential()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        prop_assert_eq!(&delta.report, &oracle.report);
        prop_assert_eq!(&delta.report, &brute.report);
        prop_assert_eq!(&delta.design, &oracle.design);
        prop_assert_eq!(&delta.design, &brute.design);
        prop_assert_eq!(delta.history.len(), oracle.history.len());
        // The delta engine actually exercises the schedule-memo layer.
        prop_assert!(delta.cache_stats.schedule.hits + delta.cache_stats.schedule.misses > 0);
    }
}
