//! Cache keys of the incremental evaluation engine.
//!
//! Evaluation results are memoized at three granularities:
//!
//! * whole design points, keyed by [`PointKey`] (workload, design fingerprint
//!   and the exact supply-voltage bits) — deliberately *independent* of the
//!   laxity constraint, so sweep sessions share points across `enc_limit`
//!   values and apply the ENC budget at read time,
//! * per-design contexts (base delays plus power profile), keyed by
//!   [`ContextKey`] (workload and fingerprint), and the outcome of the full
//!   supply search, keyed by [`ScaledKey`] (which *does* carry the ENC budget
//!   — the selected supply depends on it),
//! * raw trace statistics, keyed by the *content* of the resource they
//!   describe ([`FuStatsKey`], [`RegStatsKey`], [`MuxStatsKey`]) rather than
//!   by resource ids — candidate designs in one ranking stage differ from the
//!   working design by a single move, so almost every unit, register and mux
//!   site of a candidate hits statistics already computed for its siblings.
//!
//! Every key embeds the [`WorkloadId`] of the `(CDFG, trace, technology)`
//! combination it was computed under, so one shared
//! [`SweepSession`](crate::SweepSession) can serve jobs over *different*
//! benchmarks without id collisions, and independently populated shard caches
//! merge without ambiguity.

use impact_cdfg::NodeId;
use impact_cdfg::VarId;
use impact_rtl::{DesignFingerprint, MuxSite, RtlDesign, SignalKey};

/// Content digest of one evaluation workload: the CDFG, the execution trace
/// and the technology parameters (clock period, power configuration) shared
/// by every design evaluated under it. Scopes all cache keys of a session.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WorkloadId(pub(crate) u128);

impl WorkloadId {
    /// Raw digest value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

/// Key of one fully evaluated design point (laxity-independent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PointKey {
    /// Workload the point was evaluated under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
    /// Bit pattern of the supply voltage the point was evaluated at.
    pub(crate) vdd_bits: u64,
}

impl PointKey {
    pub(crate) fn new(workload: WorkloadId, design: DesignFingerprint, vdd: f64) -> Self {
        Self {
            workload,
            design,
            vdd_bits: vdd.to_bits(),
        }
    }
}

/// Key of the outcome of one full supply search. Unlike [`PointKey`] it
/// carries the ENC budget and the scaling mode: the *search result* (which
/// supply wins, or infeasibility) depends on both, even though the per-level
/// points it probes do not.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScaledKey {
    /// Workload the search ran under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
    /// Bit pattern of the ENC budget the search was constrained to.
    pub(crate) enc_limit_bits: u64,
    /// Whether supply scaling was enabled (`false` pins the reference
    /// supply).
    pub(crate) vdd_scaling: bool,
}

impl ScaledKey {
    pub(crate) fn new(
        workload: WorkloadId,
        design: DesignFingerprint,
        enc_limit: f64,
        vdd_scaling: bool,
    ) -> Self {
        Self {
            workload,
            design,
            enc_limit_bits: enc_limit.to_bits(),
            vdd_scaling,
        }
    }
}

/// Key of one memoized hierarchical schedule: the workload (which pins the
/// CDFG and control profile) plus the scheduling-problem digest over the
/// exact per-node delay bits, the functional-unit binding and the scheduler
/// configuration (clock period included). Deliberately *not* keyed by design
/// fingerprint: designs that differ only in power-relevant ways (module
/// capacitance, register grouping, mux probability ordering with unchanged
/// depths) produce the same digest and share one schedule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduleKey {
    /// Workload the schedule was computed under.
    pub(crate) workload: WorkloadId,
    /// [`SchedulingProblem::digest`](impact_sched::SchedulingProblem::digest)
    /// of the problem.
    pub(crate) problem: u128,
}

impl ScheduleKey {
    pub(crate) fn new(workload: WorkloadId, problem: u128) -> Self {
        Self { workload, problem }
    }
}

/// Key of one per-design evaluation context (laxity-independent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ContextKey {
    /// Workload the context was built under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
}

impl ContextKey {
    pub(crate) fn new(workload: WorkloadId, design: DesignFingerprint) -> Self {
        Self { workload, design }
    }
}

/// Content identity of a physical signal, stable across designs (raw
/// [`SignalKey`]s carry allocation indices, which shift as moves add and
/// remove resources).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum SignalContent {
    /// A register, identified by the variables it stores (in storage order,
    /// which determines write interleaving) and its width.
    Register(Vec<VarId>, u8),
    /// A functional-unit output, identified by the operations bound to the
    /// unit and its width.
    FuOutput(Vec<NodeId>, u8),
    /// A hard-wired constant.
    Constant(i64),
}

/// Key of per-unit trace statistics: the merged operations plus the width the
/// activity is normalized to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FuStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) ops: Vec<NodeId>,
    pub(crate) width: u8,
}

/// Key of per-register trace statistics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) variables: Vec<VarId>,
    pub(crate) width: u8,
}

/// Key of per-mux-site statistics: the site's sources by content identity (in
/// site order, which fixes the tree shape) plus the tree construction used.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MuxStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) sources: Vec<(SignalContent, Vec<NodeId>)>,
    pub(crate) restructured: bool,
}

impl SignalContent {
    pub(crate) fn of(design: &RtlDesign, key: SignalKey) -> Self {
        match key {
            SignalKey::Register(reg) => match design.register(reg) {
                Ok(r) => SignalContent::Register(r.variables.clone(), r.width),
                Err(_) => SignalContent::Register(Vec::new(), 0),
            },
            SignalKey::FuOutput(fu) => {
                let width = design.functional_unit(fu).map(|f| f.width).unwrap_or(8);
                SignalContent::FuOutput(design.ops_on(fu), width)
            }
            SignalKey::Constant(c) => SignalContent::Constant(c),
        }
    }
}

impl MuxStatsKey {
    pub(crate) fn of(
        workload: WorkloadId,
        design: &RtlDesign,
        site: &MuxSite,
        restructured: bool,
    ) -> Self {
        Self {
            workload,
            sources: site
                .sources
                .iter()
                .map(|src| (SignalContent::of(design, src.key), src.ops.clone()))
                .collect(),
            restructured,
        }
    }
}
