//! Cache keys of the incremental evaluation engine.
//!
//! Evaluation results are memoized at three granularities:
//!
//! * whole design points, keyed by [`PointKey`] (workload, design fingerprint
//!   and the exact supply-voltage bits) — deliberately *independent* of the
//!   laxity constraint, so sweep sessions share points across `enc_limit`
//!   values and apply the ENC budget at read time,
//! * per-design contexts (base delays plus power profile), keyed by
//!   [`ContextKey`] (workload and fingerprint), and the outcome of the full
//!   supply search, keyed by [`ScaledKey`] (which *does* carry the ENC budget
//!   — the selected supply depends on it),
//! * raw trace statistics, keyed by the *content* of the resource they
//!   describe ([`FuStatsKey`], [`RegStatsKey`], [`MuxStatsKey`]) rather than
//!   by resource ids — candidate designs in one ranking stage differ from the
//!   working design by a single move, so almost every unit, register and mux
//!   site of a candidate hits statistics already computed for its siblings.
//!
//! Every key embeds the [`WorkloadId`] of the `(CDFG, trace, technology)`
//! combination it was computed under, so one shared
//! [`SweepSession`](crate::SweepSession) can serve jobs over *different*
//! benchmarks without id collisions, and independently populated shard caches
//! merge without ambiguity.

use impact_cdfg::VarId;
use impact_rtl::{DesignFingerprint, FingerprintHasher, FuId, MuxSite, RtlDesign, SignalKey};

/// Content digest of one evaluation workload: the CDFG, the execution trace
/// and the technology parameters (clock period, power configuration) shared
/// by every design evaluated under it. Scopes all cache keys of a session.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WorkloadId(pub(crate) u128);

impl WorkloadId {
    /// Raw digest value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

/// Key of one fully evaluated design point (laxity-independent).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PointKey {
    /// Workload the point was evaluated under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
    /// Bit pattern of the supply voltage the point was evaluated at.
    pub(crate) vdd_bits: u64,
}

impl PointKey {
    pub(crate) fn new(workload: WorkloadId, design: DesignFingerprint, vdd: f64) -> Self {
        Self {
            workload,
            design,
            vdd_bits: vdd.to_bits(),
        }
    }
}

/// Key of the outcome of one full supply search. Unlike [`PointKey`] it
/// carries the ENC budget and the scaling mode: the *search result* (which
/// supply wins, or infeasibility) depends on both, even though the per-level
/// points it probes do not.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ScaledKey {
    /// Workload the search ran under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
    /// Bit pattern of the ENC budget the search was constrained to.
    pub(crate) enc_limit_bits: u64,
    /// Whether supply scaling was enabled (`false` pins the reference
    /// supply).
    pub(crate) vdd_scaling: bool,
}

impl ScaledKey {
    pub(crate) fn new(
        workload: WorkloadId,
        design: DesignFingerprint,
        enc_limit: f64,
        vdd_scaling: bool,
    ) -> Self {
        Self {
            workload,
            design,
            enc_limit_bits: enc_limit.to_bits(),
            vdd_scaling,
        }
    }
}

/// Key of one memoized hierarchical schedule: the workload (which pins the
/// CDFG and control profile) plus the scheduling-problem digest over the
/// exact per-node delay bits, the functional-unit binding and the scheduler
/// configuration (clock period included). Deliberately *not* keyed by design
/// fingerprint: designs that differ only in power-relevant ways (module
/// capacitance, register grouping, mux probability ordering with unchanged
/// depths) produce the same digest and share one schedule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ScheduleKey {
    /// Workload the schedule was computed under.
    pub(crate) workload: WorkloadId,
    /// [`SchedulingProblem::digest`](impact_sched::SchedulingProblem::digest)
    /// of the problem.
    pub(crate) problem: u128,
}

impl ScheduleKey {
    pub(crate) fn new(workload: WorkloadId, problem: u128) -> Self {
        Self { workload, problem }
    }
}

/// Key of one memoized basic-block schedule: the workload (which pins the
/// CDFG behind the node ids) plus the
/// [`block_digest`](impact_sched::block_digest) over the block's node list,
/// the exact per-node delay bits and binding, and the configuration fields
/// the block scheduler reads. Finer-grained than [`ScheduleKey`]: a problem
/// whose whole-schedule digest misses still shares every block a change did
/// not touch, across designs, supply levels and sweep runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockKey {
    /// Workload the block schedule was computed under.
    pub(crate) workload: WorkloadId,
    /// [`block_digest`](impact_sched::block_digest) of the block.
    pub(crate) digest: u128,
}

impl BlockKey {
    pub(crate) fn new(workload: WorkloadId, digest: u128) -> Self {
        Self { workload, digest }
    }
}

/// Key of one per-design evaluation context (laxity-independent).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContextKey {
    /// Workload the context was built under.
    pub(crate) workload: WorkloadId,
    /// Structural fingerprint of the design.
    pub(crate) design: DesignFingerprint,
}

impl ContextKey {
    pub(crate) fn new(workload: WorkloadId, design: DesignFingerprint) -> Self {
        Self { workload, design }
    }
}

/// Key of per-unit trace statistics: a 128-bit content digest over the
/// merged operations plus the width the activity is normalized to. Stats
/// keys used to store (and deep-hash) the content vectors themselves; the
/// engine performs thousands of stats lookups per run, so the keys are
/// digested once at construction — the same collision-resistance assumption
/// every other digest-keyed layer already makes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) digest: u128,
}

/// Key of per-register trace statistics: a content digest over the stored
/// variables (in storage order, which determines write interleaving) and the
/// register width.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) digest: u128,
}

/// Key of per-mux-site statistics: a content digest over the site's sources
/// by content identity (in site order, which fixes the tree shape) plus the
/// tree construction used. Content identity — not raw [`SignalKey`]s, which
/// carry allocation indices that shift as moves add and remove resources.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MuxStatsKey {
    pub(crate) workload: WorkloadId,
    pub(crate) digest: u128,
}

/// Writes the content identity of a physical signal: registers by stored
/// variables and width, unit outputs by bound operations and width,
/// constants by value.
fn write_signal_content(hasher: &mut FingerprintHasher, design: &RtlDesign, key: SignalKey) {
    match key {
        SignalKey::Register(reg) => {
            hasher.write_u64(1);
            match design.register(reg) {
                Ok(r) => {
                    hasher.write_u64(u64::from(r.width));
                    hasher.write_u64(r.variables.len() as u64);
                    for &var in &r.variables {
                        hasher.write_u64(var.index() as u64);
                    }
                }
                Err(_) => {
                    hasher.write_u64(0);
                    hasher.write_u64(0);
                }
            }
        }
        SignalKey::FuOutput(fu) => {
            hasher.write_u64(2);
            let width = design.functional_unit(fu).map(|f| f.width).unwrap_or(8);
            hasher.write_u64(u64::from(width));
            let mut count = 0u64;
            for op in design.ops_on_iter(fu) {
                hasher.write_u64(op.index() as u64);
                count += 1;
            }
            hasher.write_u64(count);
        }
        SignalKey::Constant(c) => {
            hasher.write_u64(3);
            hasher.write_i64(c);
        }
    }
}

impl FuStatsKey {
    pub(crate) fn of(workload: WorkloadId, design: &RtlDesign, fu: FuId, width: u8) -> Self {
        let mut hasher = FingerprintHasher::new();
        hasher.write_tag(0xA1);
        let mut count = 0u64;
        for op in design.ops_on_iter(fu) {
            hasher.write_u64(op.index() as u64);
            count += 1;
        }
        hasher.write_u64(count);
        hasher.write_u64(u64::from(width));
        Self {
            workload,
            digest: hasher.finish().as_u128(),
        }
    }
}

impl RegStatsKey {
    pub(crate) fn of(workload: WorkloadId, variables: &[VarId], width: u8) -> Self {
        let mut hasher = FingerprintHasher::new();
        hasher.write_tag(0xA2);
        hasher.write_u64(variables.len() as u64);
        for &var in variables {
            hasher.write_u64(var.index() as u64);
        }
        hasher.write_u64(u64::from(width));
        Self {
            workload,
            digest: hasher.finish().as_u128(),
        }
    }
}

impl MuxStatsKey {
    pub(crate) fn of(
        workload: WorkloadId,
        design: &RtlDesign,
        site: &MuxSite,
        restructured: bool,
    ) -> Self {
        let mut hasher = FingerprintHasher::new();
        hasher.write_tag(0xA3);
        hasher.write_u64(site.sources.len() as u64);
        for src in &site.sources {
            write_signal_content(&mut hasher, design, src.key);
            hasher.write_u64(src.ops.len() as u64);
            for &op in &src.ops {
                hasher.write_u64(op.index() as u64);
            }
        }
        hasher.write_u64(u64::from(restructured));
        Self {
            workload,
            digest: hasher.finish().as_u128(),
        }
    }
}

// ---------------------------------------------------------------- snapshot codec
//
// Cache keys are fixed-width field bundles. Like the other identifier types
// they encode bare (no per-key version tag) — the snapshot section that
// embeds them is versioned as a whole.

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

impl Encode for WorkloadId {
    fn encode(&self, w: &mut Encoder) {
        w.put_u128(self.0);
    }
}

impl Decode for WorkloadId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self(r.take_u128()?))
    }
}

impl Encode for PointKey {
    fn encode(&self, w: &mut Encoder) {
        self.workload.encode(w);
        self.design.encode(w);
        w.put_u64(self.vdd_bits);
    }
}

impl Decode for PointKey {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            workload: Decode::decode(r)?,
            design: Decode::decode(r)?,
            vdd_bits: r.take_u64()?,
        })
    }
}

impl Encode for ScaledKey {
    fn encode(&self, w: &mut Encoder) {
        self.workload.encode(w);
        self.design.encode(w);
        w.put_u64(self.enc_limit_bits);
        w.put_bool(self.vdd_scaling);
    }
}

impl Decode for ScaledKey {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            workload: Decode::decode(r)?,
            design: Decode::decode(r)?,
            enc_limit_bits: r.take_u64()?,
            vdd_scaling: r.take_bool()?,
        })
    }
}

impl Encode for ScheduleKey {
    fn encode(&self, w: &mut Encoder) {
        self.workload.encode(w);
        w.put_u128(self.problem);
    }
}

impl Decode for ScheduleKey {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            workload: Decode::decode(r)?,
            problem: r.take_u128()?,
        })
    }
}

impl Encode for ContextKey {
    fn encode(&self, w: &mut Encoder) {
        self.workload.encode(w);
        self.design.encode(w);
    }
}

impl Decode for ContextKey {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            workload: Decode::decode(r)?,
            design: Decode::decode(r)?,
        })
    }
}

macro_rules! impl_digest_key_codec {
    ($ty:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Encoder) {
                self.workload.encode(w);
                w.put_u128(self.digest);
            }
        }

        impl Decode for $ty {
            fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok(Self {
                    workload: Decode::decode(r)?,
                    digest: r.take_u128()?,
                })
            }
        }
    };
}

impl_digest_key_codec!(BlockKey);
impl_digest_key_codec!(FuStatsKey);
impl_digest_key_codec!(RegStatsKey);
impl_digest_key_codec!(MuxStatsKey);
