//! Cache keys of the incremental evaluation engine.
//!
//! Evaluation results are memoized at three granularities:
//!
//! * whole design points, keyed by [`PointKey`] (design fingerprint plus the
//!   exact supply-voltage bits),
//! * per-design contexts (base delays plus power profile), keyed by the
//!   [`impact_rtl::DesignFingerprint`] alone,
//! * raw trace statistics, keyed by the *content* of the resource they
//!   describe ([`FuStatsKey`], [`RegStatsKey`], [`MuxStatsKey`]) rather than
//!   by resource ids — candidate designs in one ranking stage differ from the
//!   working design by a single move, so almost every unit, register and mux
//!   site of a candidate hits statistics already computed for its siblings.

use impact_cdfg::NodeId;
use impact_cdfg::VarId;
use impact_rtl::{DesignFingerprint, MuxSite, RtlDesign, SignalKey};

/// Key of one fully evaluated design point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct PointKey {
    /// Structural fingerprint of the design.
    pub design: DesignFingerprint,
    /// Bit pattern of the supply voltage the point was evaluated at.
    pub vdd_bits: u64,
}

impl PointKey {
    pub(crate) fn new(design: DesignFingerprint, vdd: f64) -> Self {
        Self {
            design,
            vdd_bits: vdd.to_bits(),
        }
    }
}

/// Content identity of a physical signal, stable across designs (raw
/// [`SignalKey`]s carry allocation indices, which shift as moves add and
/// remove resources).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum SignalContent {
    /// A register, identified by the variables it stores (in storage order,
    /// which determines write interleaving) and its width.
    Register(Vec<VarId>, u8),
    /// A functional-unit output, identified by the operations bound to the
    /// unit and its width.
    FuOutput(Vec<NodeId>, u8),
    /// A hard-wired constant.
    Constant(i64),
}

/// Key of per-unit trace statistics: the merged operations plus the width the
/// activity is normalized to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct FuStatsKey {
    pub ops: Vec<NodeId>,
    pub width: u8,
}

/// Key of per-register trace statistics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct RegStatsKey {
    pub variables: Vec<VarId>,
    pub width: u8,
}

/// Key of per-mux-site statistics: the site's sources by content identity (in
/// site order, which fixes the tree shape) plus the tree construction used.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct MuxStatsKey {
    pub sources: Vec<(SignalContent, Vec<NodeId>)>,
    pub restructured: bool,
}

impl SignalContent {
    pub(crate) fn of(design: &RtlDesign, key: SignalKey) -> Self {
        match key {
            SignalKey::Register(reg) => match design.register(reg) {
                Ok(r) => SignalContent::Register(r.variables.clone(), r.width),
                Err(_) => SignalContent::Register(Vec::new(), 0),
            },
            SignalKey::FuOutput(fu) => {
                let width = design.functional_unit(fu).map(|f| f.width).unwrap_or(8);
                SignalContent::FuOutput(design.ops_on(fu), width)
            }
            SignalKey::Constant(c) => SignalContent::Constant(c),
        }
    }
}

impl MuxStatsKey {
    pub(crate) fn of(design: &RtlDesign, site: &MuxSite, restructured: bool) -> Self {
        Self {
            sources: site
                .sources
                .iter()
                .map(|src| (SignalContent::of(design, src.key), src.ops.clone()))
                .collect(),
            restructured,
        }
    }
}
