//! Persistent cache snapshots: a compact, self-describing binary format for
//! [`CacheSnapshot`] plus a disk-backed [`CacheBackend`].
//!
//! The wire format is deliberately paranoid. A snapshot written by a previous
//! process is *advice*, never truth: any stale, truncated or corrupt file
//! must degrade to a cache miss — an honest cold start — and can never be
//! misread into a wrong hit. The layout:
//!
//! ```text
//! magic  b"IMPCACHE"                     8 bytes
//! format version (little-endian u32)     4 bytes
//! total file length (u64)                8 bytes   distinguishes truncation
//!                                                  from corruption
//! workload digest (u128)                16 bytes   digest over the sorted
//!                                                  distinct WorkloadIds
//! section count (u32, = 8)               4 bytes
//! 8 × section:
//!   tag (u8) | payload length (u64) | payload digest (u128) | payload
//! whole-file digest (u128)              16 bytes   over everything above
//! ```
//!
//! Each section holds one cache layer's entries as length-prefixed
//! `(key, value)` pairs sorted by key, so equal cache contents always
//! serialize to identical bytes (the property the warm-start benches assert
//! across processes). Rejections are classified three ways — wrong
//! magic/version/shape ([`SnapshotRejection::Version`]), any digest mismatch
//! including wrong-workload scope ([`SnapshotRejection::Digest`]), and inputs
//! that end early ([`SnapshotRejection::Truncated`]) — and surface in
//! [`SnapshotStats`]. Because the whole-file digest covers every preceding
//! byte, any single bit flip anywhere in a snapshot is detected.
//!
//! Loads merge through [`CacheBackend::absorb`], the same deterministic path
//! shard merges use, so a warm-started session is bit-identical to a cold one
//! — it just skips the recomputation.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};

use impact_codec::{Decode, Decoder, Encode, Encoder};
use impact_rtl::FingerprintHasher;

use crate::cache::{
    AbsorbStats, CacheBackend, CacheSnapshot, CacheStats, DesignContext, InMemoryCache, MuxEntry,
};
use crate::evaluate::DesignPoint;
use crate::fingerprint::{
    BlockKey, ContextKey, FuStatsKey, MuxStatsKey, PointKey, RegStatsKey, ScaledKey, ScheduleKey,
    WorkloadId,
};

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"IMPCACHE";

/// Version of the snapshot container format. Bump on any layout change —
/// readers reject every other version to a cold start.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Number of sections (one per cache layer).
const SECTION_COUNT: u32 = 8;

/// Section tags, in file order.
const SEC_POINTS: u8 = 1;
const SEC_SCALED: u8 = 2;
const SEC_CONTEXTS: u8 = 3;
const SEC_SCHEDULES: u8 = 4;
const SEC_BLOCKS: u8 = 5;
const SEC_FU_STATS: u8 = 6;
const SEC_REG_STATS: u8 = 7;
const SEC_MUX_STATS: u8 = 8;

/// Why a snapshot was rejected at load time. Every class degrades to a cache
/// miss; the distinction only feeds the [`SnapshotStats`] counters and
/// operator-facing reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotRejection {
    /// Wrong magic, unknown format version, or a shape the current reader
    /// does not understand (section tags, per-type version tags).
    Version,
    /// A content digest did not match: section payload, whole-file trailer,
    /// or the workload scope the loader required.
    Digest,
    /// The input ended before the declared structure was complete.
    Truncated,
}

impl fmt::Display for SnapshotRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotRejection::Version => write!(f, "unsupported snapshot version or layout"),
            SnapshotRejection::Digest => write!(f, "snapshot digest mismatch"),
            SnapshotRejection::Truncated => write!(f, "snapshot truncated"),
        }
    }
}

impl Error for SnapshotRejection {}

/// Which workloads a loader accepts from a snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SnapshotScope {
    /// Accept entries of any workload. Safe: every cache key embeds its
    /// [`WorkloadId`], so entries of other workloads can never answer this
    /// session's lookups — they only occupy capacity.
    #[default]
    Any,
    /// Accept only snapshots whose entries all belong to the given workload;
    /// anything else is rejected as a [`SnapshotRejection::Digest`] mismatch.
    Workload(WorkloadId),
}

/// Save/load counters of one backend, including per-reason load rejections.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapshotStats {
    /// Snapshots serialized by the backend.
    pub saves: u64,
    /// Snapshots decoded and absorbed successfully.
    pub loads: u64,
    /// Loads rejected for a version/layout mismatch.
    pub rejected_version: u64,
    /// Loads rejected for a digest mismatch (corruption or wrong workload).
    pub rejected_digest: u64,
    /// Loads rejected because the input ended early.
    pub rejected_truncated: u64,
}

impl SnapshotStats {
    /// Total rejected loads across every reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_version + self.rejected_digest + self.rejected_truncated
    }

    pub(crate) fn record_rejection(&mut self, rejection: SnapshotRejection) {
        match rejection {
            SnapshotRejection::Version => self.rejected_version += 1,
            SnapshotRejection::Digest => self.rejected_digest += 1,
            SnapshotRejection::Truncated => self.rejected_truncated += 1,
        }
    }
}

/// Errors of the file-level snapshot helpers: I/O problems on one side,
/// well-formed-but-rejected snapshots on the other.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The file was read but its contents were rejected.
    Rejected(SnapshotRejection),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapshotError::Rejected(r) => write!(f, "snapshot rejected: {r}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotRejection> for SnapshotError {
    fn from(r: SnapshotRejection) -> Self {
        SnapshotError::Rejected(r)
    }
}

/// Digest of a byte string: length-prefixed, fed to the workspace hasher in
/// little-endian 64-bit words (final partial word zero-padded).
fn digest_bytes(bytes: &[u8]) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(0xC6);
    h.write_u64(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let remainder = chunks.remainder();
    if !remainder.is_empty() {
        let mut word = [0u8; 8];
        word[..remainder.len()].copy_from_slice(remainder);
        h.write_u64(u64::from_le_bytes(word));
    }
    h.finish().as_u128()
}

/// Digest of a set of workload ids (sorted, distinct).
fn workload_digest(workloads: &BTreeSet<u128>) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(0xC5);
    h.write_u64(workloads.len() as u64);
    for &w in workloads {
        h.write_u128(w);
    }
    h.finish().as_u128()
}

/// The sorted distinct workload ids across every entry of a snapshot.
fn snapshot_workloads(snapshot: &CacheSnapshot) -> BTreeSet<u128> {
    let mut workloads = BTreeSet::new();
    workloads.extend(snapshot.points.keys().map(|k| k.workload.as_u128()));
    workloads.extend(snapshot.scaled.keys().map(|k| k.workload.as_u128()));
    workloads.extend(snapshot.contexts.keys().map(|k| k.workload.as_u128()));
    workloads.extend(snapshot.schedules.keys().map(|k| k.workload.as_u128()));
    workloads.extend(
        snapshot
            .block_schedules
            .keys()
            .map(|k| k.workload.as_u128()),
    );
    workloads.extend(snapshot.fu_stats.keys().map(|k| k.workload.as_u128()));
    workloads.extend(snapshot.reg_stats.keys().map(|k| k.workload.as_u128()));
    workloads.extend(snapshot.mux_stats.keys().map(|k| k.workload.as_u128()));
    workloads
}

fn encode_section<K, V>(out: &mut Encoder, tag: u8, map: &HashMap<K, V>)
where
    K: Encode + Ord,
    V: Encode,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut payload = Encoder::new();
    payload.put_usize(entries.len());
    for (key, value) in entries {
        key.encode(&mut payload);
        value.encode(&mut payload);
    }
    let bytes = payload.into_bytes();
    out.put_u8(tag);
    out.put_u64(bytes.len() as u64);
    out.put_u128(digest_bytes(&bytes));
    out.put_raw(&bytes);
}

fn decode_section<K, V>(r: &mut Decoder<'_>, tag: u8) -> Result<HashMap<K, V>, SnapshotRejection>
where
    K: Decode + Eq + Hash,
    V: Decode,
{
    let found = r.take_u8().map_err(|_| SnapshotRejection::Truncated)?;
    if found != tag {
        return Err(SnapshotRejection::Version);
    }
    let len = r.take_u64().map_err(|_| SnapshotRejection::Truncated)?;
    let len = usize::try_from(len).map_err(|_| SnapshotRejection::Truncated)?;
    let declared = r.take_u128().map_err(|_| SnapshotRejection::Truncated)?;
    if len > r.remaining() {
        return Err(SnapshotRejection::Truncated);
    }
    let payload = r.take_raw(len).map_err(|_| SnapshotRejection::Truncated)?;
    if digest_bytes(payload) != declared {
        return Err(SnapshotRejection::Digest);
    }
    // The payload's bytes are digest-verified from here on: a decode failure
    // means the writer's layout differs from ours under the same container
    // version — a versioning problem, not corruption.
    let mut pr = Decoder::new(payload);
    let count = pr.take_len(1).map_err(|_| SnapshotRejection::Version)?;
    let mut map = HashMap::with_capacity(count);
    for _ in 0..count {
        let key = K::decode(&mut pr).map_err(|_| SnapshotRejection::Version)?;
        let value = V::decode(&mut pr).map_err(|_| SnapshotRejection::Version)?;
        map.insert(key, value);
    }
    pr.finish().map_err(|_| SnapshotRejection::Version)?;
    Ok(map)
}

/// Serializes a [`CacheSnapshot`] into the versioned wire format.
/// Deterministic: equal snapshot contents always produce identical bytes.
pub fn encode_snapshot(snapshot: &CacheSnapshot) -> Vec<u8> {
    let mut sections = Encoder::new();
    sections.put_u128(workload_digest(&snapshot_workloads(snapshot)));
    sections.put_u32(SECTION_COUNT);
    encode_section(&mut sections, SEC_POINTS, &snapshot.points);
    encode_section(&mut sections, SEC_SCALED, &snapshot.scaled);
    encode_section(&mut sections, SEC_CONTEXTS, &snapshot.contexts);
    encode_section(&mut sections, SEC_SCHEDULES, &snapshot.schedules);
    encode_section(&mut sections, SEC_BLOCKS, &snapshot.block_schedules);
    encode_section(&mut sections, SEC_FU_STATS, &snapshot.fu_stats);
    encode_section(&mut sections, SEC_REG_STATS, &snapshot.reg_stats);
    encode_section(&mut sections, SEC_MUX_STATS, &snapshot.mux_stats);
    let mut out = Encoder::new();
    out.put_raw(&SNAPSHOT_MAGIC);
    out.put_u32(SNAPSHOT_VERSION);
    // magic + version + length field + sections + 16-byte trailer.
    out.put_u64((SNAPSHOT_MAGIC.len() + 4 + 8 + sections.len() + 16) as u64);
    out.put_raw(sections.as_bytes());
    let trailer = digest_bytes(out.as_bytes());
    out.put_u128(trailer);
    out.into_bytes()
}

/// Decodes snapshot bytes, verifying magic, version, every digest and the
/// workload scope.
///
/// # Errors
///
/// Returns the [`SnapshotRejection`] class on any mismatch; the caller treats
/// every class as a cache miss.
pub fn decode_snapshot(
    bytes: &[u8],
    scope: SnapshotScope,
) -> Result<CacheSnapshot, SnapshotRejection> {
    // Fixed prelude (magic + version + declared length) and trailer.
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 + 16 {
        return Err(SnapshotRejection::Truncated);
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotRejection::Version);
    }
    // Parse the body only: the trailing 16 bytes are the whole-file digest.
    let (body, trailer) = bytes.split_at(bytes.len() - 16);
    let mut r = Decoder::new(&body[SNAPSHOT_MAGIC.len()..]);
    let version = r.take_u32().map_err(|_| SnapshotRejection::Truncated)?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotRejection::Version);
    }
    let declared_len = r.take_u64().map_err(|_| SnapshotRejection::Truncated)?;
    match u64::try_from(bytes.len()) {
        Ok(actual) if actual < declared_len => return Err(SnapshotRejection::Truncated),
        Ok(actual) if actual > declared_len => return Err(SnapshotRejection::Version),
        Ok(_) => {}
        Err(_) => return Err(SnapshotRejection::Version),
    }
    // The trailer covers every preceding byte, so from here on ANY bit flip
    // in the file — header fields and section digests included — is caught.
    // (A flip in the length field itself misclassifies as truncation or
    // trailing junk, but is still rejected.)
    let declared_trailer = u128::from_le_bytes(trailer.try_into().expect("16-byte trailer"));
    if digest_bytes(body) != declared_trailer {
        return Err(SnapshotRejection::Digest);
    }
    let header_workloads = r.take_u128().map_err(|_| SnapshotRejection::Truncated)?;
    let sections = r.take_u32().map_err(|_| SnapshotRejection::Truncated)?;
    if sections != SECTION_COUNT {
        return Err(SnapshotRejection::Version);
    }
    let snapshot = CacheSnapshot {
        points: decode_section::<PointKey, _>(&mut r, SEC_POINTS)?,
        scaled: decode_section::<ScaledKey, Option<std::sync::Arc<DesignPoint>>>(
            &mut r, SEC_SCALED,
        )?,
        contexts: decode_section::<ContextKey, std::sync::Arc<DesignContext>>(
            &mut r,
            SEC_CONTEXTS,
        )?,
        schedules: decode_section::<ScheduleKey, _>(&mut r, SEC_SCHEDULES)?,
        block_schedules: decode_section::<BlockKey, _>(&mut r, SEC_BLOCKS)?,
        fu_stats: decode_section::<FuStatsKey, _>(&mut r, SEC_FU_STATS)?,
        reg_stats: decode_section::<RegStatsKey, _>(&mut r, SEC_REG_STATS)?,
        mux_stats: decode_section::<MuxStatsKey, MuxEntry>(&mut r, SEC_MUX_STATS)?,
    };
    if !r.is_empty() {
        return Err(SnapshotRejection::Version);
    }
    // The header's workload digest must agree with the decoded keys, and the
    // decoded workloads must fit the requested scope.
    let workloads = snapshot_workloads(&snapshot);
    if workload_digest(&workloads) != header_workloads {
        return Err(SnapshotRejection::Digest);
    }
    if let SnapshotScope::Workload(only) = scope {
        if workloads.iter().any(|&w| w != only.as_u128()) {
            return Err(SnapshotRejection::Digest);
        }
    }
    Ok(snapshot)
}

/// Writes snapshot bytes to `path` atomically: the bytes land in a sibling
/// temporary file which is then renamed over the target, so readers only ever
/// observe either the old snapshot or the complete new one. Parent
/// directories are created as needed.
///
/// # Errors
///
/// Propagates filesystem errors; the temporary file is removed on failure.
pub fn write_snapshot_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// A disk-backed [`CacheBackend`]: an [`InMemoryCache`] that can hydrate from
/// a snapshot file at open and persist back with [`DiskCache::flush`].
///
/// Opening with a missing file is a normal cold start; a stale, truncated or
/// corrupt file degrades to a cold start too (counted in
/// [`SnapshotStats`], surfaced via [`CacheStats::snapshot`]) and is replaced
/// wholesale on the next flush. All lookup/store traffic is served by the
/// in-memory store — the disk is touched only at `open` and `flush`.
#[derive(Debug)]
pub struct DiskCache {
    inner: InMemoryCache,
    path: PathBuf,
    scope: SnapshotScope,
}

impl DiskCache {
    /// Opens a disk cache at `path`, loading the snapshot there if one
    /// exists and it passes verification under `scope`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the file not existing.
    /// Rejected snapshot *contents* are not an error — they leave the cache
    /// cold with the rejection counted.
    pub fn open(path: impl Into<PathBuf>, scope: SnapshotScope) -> io::Result<Self> {
        let cache = Self {
            inner: InMemoryCache::new(),
            path: path.into(),
            scope,
        };
        match fs::read(&cache.path) {
            Ok(bytes) => {
                let _ = cache.inner.load_snapshot(&bytes, cache.scope);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(cache)
    }

    /// Writes the current entries to the snapshot file (atomic
    /// temp-file-and-rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&self) -> io::Result<()> {
        write_snapshot_bytes(&self.path, &self.inner.save_snapshot())
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The workload scope loads are verified against.
    pub fn scope(&self) -> SnapshotScope {
        self.scope
    }
}

impl CacheBackend for DiskCache {
    fn lookup_point(&self, key: &PointKey) -> Option<std::sync::Arc<DesignPoint>> {
        self.inner.lookup_point(key)
    }
    fn store_point(&self, key: PointKey, value: std::sync::Arc<DesignPoint>) {
        self.inner.store_point(key, value);
    }
    fn lookup_scaled(&self, key: &ScaledKey) -> Option<Option<std::sync::Arc<DesignPoint>>> {
        self.inner.lookup_scaled(key)
    }
    fn store_scaled(&self, key: ScaledKey, value: Option<std::sync::Arc<DesignPoint>>) {
        self.inner.store_scaled(key, value);
    }
    fn lookup_context(&self, key: &ContextKey) -> Option<std::sync::Arc<DesignContext>> {
        self.inner.lookup_context(key)
    }
    fn store_context(&self, key: ContextKey, value: std::sync::Arc<DesignContext>) {
        self.inner.store_context(key, value);
    }
    fn lookup_schedule(
        &self,
        key: &ScheduleKey,
    ) -> Option<std::sync::Arc<impact_sched::SchedulingResult>> {
        self.inner.lookup_schedule(key)
    }
    fn store_schedule(
        &self,
        key: ScheduleKey,
        value: std::sync::Arc<impact_sched::SchedulingResult>,
    ) {
        self.inner.store_schedule(key, value);
    }
    fn lookup_block(&self, key: &BlockKey) -> Option<std::sync::Arc<impact_sched::BlockSchedule>> {
        self.inner.lookup_block(key)
    }
    fn store_block(&self, key: BlockKey, value: std::sync::Arc<impact_sched::BlockSchedule>) {
        self.inner.store_block(key, value);
    }
    fn lookup_fu(&self, key: &FuStatsKey) -> Option<impact_trace::FuStats> {
        self.inner.lookup_fu(key)
    }
    fn store_fu(&self, key: FuStatsKey, value: impact_trace::FuStats) {
        self.inner.store_fu(key, value);
    }
    fn lookup_reg(&self, key: &RegStatsKey) -> Option<impact_trace::RegStats> {
        self.inner.lookup_reg(key)
    }
    fn store_reg(&self, key: RegStatsKey, value: impact_trace::RegStats) {
        self.inner.store_reg(key, value);
    }
    fn lookup_mux(&self, key: &MuxStatsKey) -> Option<MuxEntry> {
        self.inner.lookup_mux(key)
    }
    fn store_mux(&self, key: MuxStatsKey, value: MuxEntry) {
        self.inner.store_mux(key, value);
    }
    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
    fn record_explore(&self, stats: crate::ExploreStats) {
        self.inner.record_explore(stats);
    }
    fn export(&self) -> CacheSnapshot {
        self.inner.export()
    }
    fn absorb(&self, snapshot: CacheSnapshot) -> AbsorbStats {
        self.inner.absorb(snapshot)
    }
    fn save_snapshot(&self) -> Vec<u8> {
        self.inner.save_snapshot()
    }
    fn load_snapshot(
        &self,
        bytes: &[u8],
        scope: SnapshotScope,
    ) -> Result<AbsorbStats, SnapshotRejection> {
        self.inner.load_snapshot(bytes, scope)
    }
}
