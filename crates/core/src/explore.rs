//! The search-policy layer: [`Explorer`] strategies over the probe/commit
//! kernel.
//!
//! The paper's IMPACT loop is a greedy best-candidate-per-pass descent, and
//! until this module existed that exact shape was hardwired into the engine.
//! Delta evaluation and schedule repair made probing a candidate nearly free,
//! so the search policy is now a first-class, swappable layer:
//!
//! * [`SearchKernel`] is the policy-free probe/commit kernel. It owns the
//!   mechanics every strategy shares — candidate generation, the
//!   fingerprint-once-per-step bookkeeping, cheap reference-supply ranking
//!   with deterministic tie-breaks, the fall-through-on-infeasible walk of
//!   the ranked list, and the [`ExploreStats`] counters.
//! * [`Explorer`] is the policy: given the kernel and the initial design
//!   point, decide which moves to probe, what to commit, and when to stop.
//!
//! Four explorers ship with the engine, selected through
//! [`ExplorerKind`](crate::ExplorerKind) on
//! [`EngineConfig`](crate::EngineConfig):
//!
//! * [`GreedyExplorer`] — the paper's variable-depth descent, bit-identical
//!   to the pre-refactor engine. It is the oracle every other strategy is
//!   pinned against: none may return a worse design at the same laxity.
//! * [`BeamExplorer`] — keeps the top-k move sequences alive per step
//!   instead of one; `k = 1` reduces exactly to greedy.
//! * [`RestartExplorer`] — best-of-n greedy descents from seeded
//!   perturbation kicks, with the kicks rolled back through the
//!   transactional [`DesignDelta`](impact_rtl::DesignDelta) exact-revert
//!   path.
//! * [`ParetoSweep`] — a greedy descent that keeps every feasible probe and
//!   returns the non-dominated power/area/latency front for the laxity
//!   instead of a single point.
//!
//! All strategies run over the same [`Evaluator`] and therefore share one
//! [`SweepSession`](crate::SweepSession) cache: exploring more of the move
//! space amortizes the way sweeps and shard fleets already amortize
//! evaluation.

use impact_cdfg::analysis::ExclusionInfo;
use impact_cdfg::Cdfg;
use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use impact_rtl::{DesignDelta, RtlDesign};
use rand::prelude::*;

use crate::config::{OptimizationMode, SynthesisConfig};
use crate::engine::MoveRecord;
use crate::error::SynthesisError;
use crate::evaluate::{DesignPoint, Evaluator};
use crate::moves::{generate, Move};

/// Strict-improvement tolerance shared by every strategy's "keep the better
/// design" comparisons; equal-cost candidates keep the incumbent, so ties
/// never flap on floating-point noise.
const GAIN_EPS: f64 = 1e-9;

// ----------------------------------------------------------------- counters

/// Search-effort counters of the explore layer, reported alongside the cache
/// layers in [`CacheStats`](crate::CacheStats): how many candidates the
/// strategy probed, what it committed, and the strategy-specific work (beam
/// width realized, restarts taken, Pareto dominance outcomes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Full (supply-search) candidate evaluations issued.
    pub probes: u64,
    /// Cheap reference-supply ranking evaluations issued.
    pub rank_probes: u64,
    /// Moves committed into a run's history (including moves committed by
    /// descents a best-of-n strategy later discarded).
    pub commits: u64,
    /// Exact-revert rollbacks of applied deltas (restart kicks undone).
    pub reverts: u64,
    /// Widest beam actually realized (0 for non-beam strategies).
    pub beam_width: u64,
    /// Perturbation restarts taken.
    pub restarts: u64,
    /// Pareto-front members kept after dominance filtering.
    pub pareto_kept: u64,
    /// Collected points discarded as dominated (or metric-duplicates).
    pub pareto_dominated: u64,
}

impl ExploreStats {
    /// Accumulates another run's counters (sums, except `beam_width`, which
    /// keeps the maximum realized).
    pub fn accumulate(&mut self, other: ExploreStats) {
        self.probes += other.probes;
        self.rank_probes += other.rank_probes;
        self.commits += other.commits;
        self.reverts += other.reverts;
        self.beam_width = self.beam_width.max(other.beam_width);
        self.restarts += other.restarts;
        self.pareto_kept += other.pareto_kept;
        self.pareto_dominated += other.pareto_dominated;
    }
}

// ------------------------------------------------------------ kind + codec

/// Default beam width of [`ExplorerKind::Beam`] when none is given.
pub const DEFAULT_BEAM_WIDTH: usize = 3;
/// Default restart count of [`ExplorerKind::Restart`].
pub const DEFAULT_RESTARTS: usize = 4;
/// Default perturbation length (moves per kick) of
/// [`ExplorerKind::Restart`].
pub const DEFAULT_KICKS: usize = 2;
/// Default kick seed of [`ExplorerKind::Restart`].
pub const DEFAULT_RESTART_SEED: u64 = 1998;

/// Which search strategy the engine runs — the policy knob of
/// [`EngineConfig`](crate::EngineConfig). `Copy`/`Eq` like the rest of the
/// engine configuration, and wire-encodable so shard fleets can carry a
/// strategy per job.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExplorerKind {
    /// The paper's greedy variable-depth descent (the oracle).
    #[default]
    Greedy,
    /// Top-`width` beam over ranked move sequences (`width = 1` ≡ greedy).
    Beam {
        /// Number of move sequences kept alive per step.
        width: usize,
    },
    /// Best-of-n greedy descents from seeded perturbation kicks.
    Restart {
        /// Number of perturbation restarts after the base descent.
        restarts: usize,
        /// Moves per perturbation kick.
        kicks: usize,
        /// Seed of the kick generator.
        seed: u64,
    },
    /// Greedy descent that returns the whole non-dominated
    /// power/area/latency front of the probed space.
    Pareto,
}

impl ExplorerKind {
    /// Short stable name, used in reports, history attribution and CLIs.
    pub fn name(&self) -> &'static str {
        match self {
            ExplorerKind::Greedy => "greedy",
            ExplorerKind::Beam { .. } => "beam",
            ExplorerKind::Restart { .. } => "restart",
            ExplorerKind::Pareto => "pareto",
        }
    }

    /// The four kinds with their default parameters, in oracle-first order —
    /// what `search_bench` sweeps.
    pub fn all() -> [ExplorerKind; 4] {
        [
            ExplorerKind::Greedy,
            ExplorerKind::Beam {
                width: DEFAULT_BEAM_WIDTH,
            },
            ExplorerKind::Restart {
                restarts: DEFAULT_RESTARTS,
                kicks: DEFAULT_KICKS,
                seed: DEFAULT_RESTART_SEED,
            },
            ExplorerKind::Pareto,
        ]
    }

    /// Parses a CLI spelling: `greedy`, `beam`, `beam:K`, `restart`,
    /// `restart:N`, `restart:N:K`, `restart:N:K:SEED`, `pareto`. Returns
    /// `None` for anything else.
    pub fn parse(spec: &str) -> Option<ExplorerKind> {
        let mut parts = spec.split(':');
        let head = parts.next()?;
        let arg = |part: Option<&str>, default: usize| -> Option<usize> {
            match part {
                None => Some(default),
                Some(text) => text.parse().ok(),
            }
        };
        let kind = match head {
            "greedy" => ExplorerKind::Greedy,
            "beam" => ExplorerKind::Beam {
                width: arg(parts.next(), DEFAULT_BEAM_WIDTH)?,
            },
            "restart" => ExplorerKind::Restart {
                restarts: arg(parts.next(), DEFAULT_RESTARTS)?,
                kicks: arg(parts.next(), DEFAULT_KICKS)?,
                seed: match parts.next() {
                    None => DEFAULT_RESTART_SEED,
                    Some(text) => text.parse().ok()?,
                },
            },
            "pareto" => ExplorerKind::Pareto,
            _ => return None,
        };
        parts.next().is_none().then_some(kind)
    }

    /// Instantiates the strategy.
    pub(crate) fn build(self) -> Box<dyn Explorer> {
        match self {
            ExplorerKind::Greedy => Box::new(GreedyExplorer),
            ExplorerKind::Beam { width } => Box::new(BeamExplorer { width }),
            ExplorerKind::Restart {
                restarts,
                kicks,
                seed,
            } => Box::new(RestartExplorer {
                restarts,
                kicks,
                seed,
            }),
            ExplorerKind::Pareto => Box::new(ParetoSweep),
        }
    }
}

/// Version tag of [`ExplorerKind`]'s wire layout (shard job protocol).
const TAG_EXPLORER_KIND: u8 = 0x5E;

const KIND_GREEDY: u8 = 0;
const KIND_BEAM: u8 = 1;
const KIND_RESTART: u8 = 2;
const KIND_PARETO: u8 = 3;

impl Encode for ExplorerKind {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_EXPLORER_KIND);
        match self {
            ExplorerKind::Greedy => w.put_u8(KIND_GREEDY),
            ExplorerKind::Beam { width } => {
                w.put_u8(KIND_BEAM);
                w.put_usize(*width);
            }
            ExplorerKind::Restart {
                restarts,
                kicks,
                seed,
            } => {
                w.put_u8(KIND_RESTART);
                w.put_usize(*restarts);
                w.put_usize(*kicks);
                w.put_u64(*seed);
            }
            ExplorerKind::Pareto => w.put_u8(KIND_PARETO),
        }
    }
}

impl Decode for ExplorerKind {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_EXPLORER_KIND)?;
        match r.take_u8()? {
            KIND_GREEDY => Ok(ExplorerKind::Greedy),
            KIND_BEAM => Ok(ExplorerKind::Beam {
                width: r.take_usize()?,
            }),
            KIND_RESTART => Ok(ExplorerKind::Restart {
                restarts: r.take_usize()?,
                kicks: r.take_usize()?,
                seed: r.take_u64()?,
            }),
            KIND_PARETO => Ok(ExplorerKind::Pareto),
            _ => Err(DecodeError::Invalid("unknown explorer kind")),
        }
    }
}

// ------------------------------------------------------------------ kernel

/// A ranked candidate that survived full evaluation: the move, the resulting
/// design point, and its gain relative to the working design it was probed
/// from.
#[derive(Clone, Debug)]
pub struct RankedCandidate {
    /// The move.
    pub mv: Move,
    /// Fully evaluated (supply-scaled) result of applying it.
    pub point: DesignPoint,
    /// Cost reduction versus the working design, in the units of the
    /// optimization mode (negative for uphill moves).
    pub gain: f64,
}

/// The policy-free probe/commit kernel every [`Explorer`] runs on.
///
/// It bundles what used to be hardwired into the engine's improvement pass:
/// candidate generation over the working design, the working design's
/// fingerprint hashed once per step (candidates are then delta-patched from
/// it), the cheap reference-supply ranking stage with its deterministic
/// tie-break, and the fall-through walk that fully evaluates candidates in
/// rank order until enough survive. The kernel also accumulates the
/// [`ExploreStats`] the engine reports.
pub struct SearchKernel<'e, 'a> {
    cdfg: &'e Cdfg,
    evaluator: &'e Evaluator<'a>,
    exclusion: ExclusionInfo,
    stats: ExploreStats,
    /// When set, every feasible full probe (and the initial point) is kept
    /// for post-hoc dominance filtering — the Pareto strategy's collector.
    collected: Option<Vec<DesignPoint>>,
}

impl<'e, 'a> SearchKernel<'e, 'a> {
    /// Builds a kernel over a prepared evaluator.
    pub fn new(cdfg: &'e Cdfg, evaluator: &'e Evaluator<'a>) -> Self {
        Self {
            cdfg,
            evaluator,
            exclusion: ExclusionInfo::compute(cdfg),
            stats: ExploreStats::default(),
            collected: None,
        }
    }

    /// The CDFG under synthesis.
    pub fn cdfg(&self) -> &Cdfg {
        self.cdfg
    }

    /// The evaluator the kernel probes through.
    pub fn evaluator(&self) -> &Evaluator<'a> {
        self.evaluator
    }

    /// The run's configuration.
    pub fn config(&self) -> &SynthesisConfig {
        self.evaluator.config()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExploreStats {
        self.stats
    }

    /// The fully evaluated initial (fully parallel) architecture.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn initial_point(&mut self) -> Result<DesignPoint, SynthesisError> {
        let point = self.evaluator.initial_point()?;
        self.collect(&point);
        Ok(point)
    }

    /// Candidate moves applicable to `design`, in generation (preference)
    /// order.
    pub fn candidates(&self, design: &RtlDesign) -> Vec<Move> {
        generate(
            self.cdfg,
            self.evaluator.library(),
            design,
            self.config(),
            &self.exclusion,
        )
    }

    /// One ranked search step: generates the candidates of `working`, ranks
    /// them with the cheap reference-supply evaluation, then fully evaluates
    /// in rank order — falling through infeasible candidates — until up to
    /// `width` survive. Returns the survivors in rank order; an empty vector
    /// means the step is exhausted (no candidates, or none feasible).
    ///
    /// `width = 1` is exactly the classic greedy step: probe the ranked list
    /// until the first feasible candidate.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn ranked_step(
        &mut self,
        working: &DesignPoint,
        width: usize,
    ) -> Result<Vec<RankedCandidate>, SynthesisError> {
        let candidates = self.candidates(&working.design);
        if candidates.is_empty() {
            return Ok(Vec::new());
        }

        // Fingerprint the working design once per step; every candidate's
        // digest and context are then patched from it through the move's
        // delta.
        let parent_fingerprint = self
            .evaluator
            .session()
            .is_some()
            .then(|| working.design.fingerprint());
        let ranked = self.rank_candidates(working, &candidates, parent_fingerprint)?;
        self.stats.rank_probes += candidates.len() as u64;

        let mode = self.config().mode;
        let mut chosen: Vec<RankedCandidate> = Vec::new();
        let mut rest: &[(usize, f64)] = &ranked;
        while chosen.len() < width && !rest.is_empty() {
            let mut probed = 0u64;
            let advanced = first_feasible(rest, |index| -> Result<_, SynthesisError> {
                probed += 1;
                Ok(self
                    .evaluator
                    .evaluate_move_shared(&working.design, parent_fingerprint, &candidates[index])?
                    .map(|point| (*point).clone()))
            })?;
            self.stats.probes += probed;
            let Some((index, point)) = advanced else {
                break;
            };
            let position = rest
                .iter()
                .position(|&(i, _)| i == index)
                .expect("first_feasible returns an index from the ranked slice");
            rest = &rest[position + 1..];
            self.collect(&point);
            chosen.push(RankedCandidate {
                mv: candidates[index].clone(),
                gain: working.cost(mode) - point.cost(mode),
                point,
            });
        }
        Ok(chosen)
    }

    /// Fully evaluates one specific move against `working` (the restart
    /// strategy's kick probe). Returns `None` when the move is inapplicable
    /// or infeasible under the ENC budget.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn probe_move(
        &mut self,
        working: &DesignPoint,
        mv: &Move,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        let parent_fingerprint = self
            .evaluator
            .session()
            .is_some()
            .then(|| working.design.fingerprint());
        self.stats.probes += 1;
        let point = self
            .evaluator
            .evaluate_move_shared(&working.design, parent_fingerprint, mv)?
            .map(|point| (*point).clone());
        if let Some(point) = &point {
            self.collect(point);
        }
        Ok(point)
    }

    /// Scores every applicable candidate at the reference supply and returns
    /// `(candidate index, gain)` pairs sorted best-first.
    ///
    /// The ordering is deterministic and independent of the thread count:
    /// higher gain first, and among equal gains the earliest-generated
    /// candidate wins (move generation orders candidates by preference, e.g.
    /// mutually exclusive sharing pairs first, so the tie-break preserves
    /// that intent — and matches the winner the historical
    /// first-strictly-greater scan selected).
    fn rank_candidates(
        &self,
        working: &DesignPoint,
        candidates: &[Move],
        parent_fingerprint: Option<impact_rtl::DesignFingerprint>,
    ) -> Result<Vec<(usize, f64)>, SynthesisError> {
        let mode = self.config().mode;
        let evaluator = self.evaluator;
        let working_reference_cost = reference_cost(working, mode);
        let score = |index: usize| -> Result<Option<f64>, SynthesisError> {
            let Some(point) = evaluator.evaluate_move_at_vdd_shared(
                &working.design,
                parent_fingerprint,
                &candidates[index],
                impact_modlib::VDD_REFERENCE,
            )?
            else {
                return Ok(None);
            };
            Ok(Some(
                working_reference_cost - reference_cost(point.as_ref(), mode),
            ))
        };

        let threads = self.ranking_threads(candidates.len());
        let mut gains: Vec<Option<f64>> = vec![None; candidates.len()];
        if threads <= 1 {
            for (index, slot) in gains.iter_mut().enumerate() {
                *slot = score(index)?;
            }
        } else {
            // Scoped worker threads strided over the candidate set; results
            // land in per-index slots, so scheduling order cannot influence
            // the outcome.
            type ScoredChunk = Result<Vec<(usize, Option<f64>)>, SynthesisError>;
            let chunks: Vec<ScoredChunk> = std::thread::scope(|scope| {
                let score = &score;
                let handles: Vec<_> = (0..threads)
                    .map(|offset| {
                        scope.spawn(move || {
                            (offset..candidates.len())
                                .step_by(threads)
                                .map(|index| Ok((index, score(index)?)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("ranking worker panicked"))
                    .collect()
            });
            for chunk in chunks {
                for (index, gain) in chunk? {
                    gains[index] = gain;
                }
            }
        }

        let mut ranked: Vec<(usize, f64)> = gains
            .into_iter()
            .enumerate()
            .filter_map(|(index, gain)| gain.map(|gain| (index, gain)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(ranked)
    }

    /// Worker-thread count for one ranking stage.
    fn ranking_threads(&self, candidate_count: usize) -> usize {
        let engine = &self.config().engine;
        if !engine.parallel_ranking {
            return 1;
        }
        let available = if engine.ranking_threads > 0 {
            engine.ranking_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        available.min(candidate_count).max(1)
    }

    /// Starts collecting feasible probes (the Pareto strategy's sweep).
    fn begin_collection(&mut self) {
        self.collected = Some(Vec::new());
    }

    /// Drains the collected points.
    fn take_collected(&mut self) -> Vec<DesignPoint> {
        self.collected.take().unwrap_or_default()
    }

    fn collect(&mut self, point: &DesignPoint) {
        if let Some(collected) = &mut self.collected {
            collected.push(point.clone());
        }
    }

    fn note_commits(&mut self, count: usize) {
        self.stats.commits += count as u64;
    }

    fn note_revert(&mut self) {
        self.stats.reverts += 1;
    }

    fn note_beam_width(&mut self, width: usize) {
        self.stats.beam_width = self.stats.beam_width.max(width as u64);
    }

    fn note_restart(&mut self) {
        self.stats.restarts += 1;
    }
}

fn reference_cost(point: &DesignPoint, mode: OptimizationMode) -> f64 {
    match mode {
        OptimizationMode::Power => point.power_at_reference.total_mw(),
        OptimizationMode::Area => point.area,
    }
}

/// Walks a ranked candidate list and returns the first candidate that
/// survives full evaluation, together with its design point. A top-ranked
/// candidate whose full Vdd-scaled evaluation is infeasible no longer aborts
/// the caller's sequence — lower-ranked feasible candidates get their turn.
pub(crate) fn first_feasible<E>(
    ranked: &[(usize, f64)],
    mut evaluate: impl FnMut(usize) -> Result<Option<DesignPoint>, E>,
) -> Result<Option<(usize, DesignPoint)>, E> {
    for &(index, _) in ranked {
        if let Some(point) = evaluate(index)? {
            return Ok(Some((index, point)));
        }
    }
    Ok(None)
}

// ------------------------------------------------------------------- trait

/// Result of one [`Explorer::explore`] run.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The best design point found (what the engine reports).
    pub best: DesignPoint,
    /// Committed moves leading to `best`, in application order.
    pub history: Vec<MoveRecord>,
    /// Improvement passes executed (of the descent that produced `best`).
    pub passes: usize,
    /// Non-dominated power/area/latency front of the probed space. Empty
    /// for single-point strategies; [`ParetoSweep`] fills it.
    pub front: Vec<DesignPoint>,
}

/// A search strategy over the probe/commit kernel: given the kernel (which
/// wraps the [`Evaluator`] and the candidate generator) and the evaluated
/// initial design, decide which moves to probe, what to commit, and when to
/// stop.
///
/// Contract every implementation must honor (property-tested against
/// [`GreedyExplorer`], the oracle): the returned `best` is feasible under
/// the run's ENC budget and its cost is never worse than what the greedy
/// descent reaches from the same initial point.
pub trait Explorer {
    /// Short stable name, recorded into each committed move's
    /// [`MoveRecord::strategy`].
    fn name(&self) -> &'static str;

    /// Runs the strategy to completion.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures surfaced by the kernel's probes.
    fn explore(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        initial: DesignPoint,
    ) -> Result<Exploration, SynthesisError>;
}

// ---------------------------------------------------------- greedy descent

/// One variable-depth improvement pass of the classic descent (Figure 7 of
/// the paper): build a sequence of locally best moves, then commit the
/// prefix with the best cumulative gain. Returns `true` when at least one
/// move was committed.
fn greedy_pass(
    kernel: &mut SearchKernel<'_, '_>,
    current: &mut DesignPoint,
    pass: usize,
    strategy: &'static str,
    history: &mut Vec<MoveRecord>,
) -> Result<bool, SynthesisError> {
    let max_sequence_length = kernel.config().max_sequence_length;
    let mut working = current.clone();
    let mut sequence: Vec<(Move, DesignPoint, f64)> = Vec::new();
    let mut cumulative_gain = 0.0;
    let mut best_gain = 0.0;
    let mut best_prefix = 0usize;

    for _ in 0..max_sequence_length {
        let mut step = kernel.ranked_step(&working, 1)?;
        let Some(chosen) = step.pop() else { break };
        cumulative_gain += chosen.gain;
        working = chosen.point.clone();
        sequence.push((chosen.mv, chosen.point, chosen.gain));
        if cumulative_gain > best_gain + GAIN_EPS {
            best_gain = cumulative_gain;
            best_prefix = sequence.len();
        }
    }

    if best_prefix == 0 {
        return Ok(false);
    }
    // Commit the prefix with the best cumulative gain.
    kernel.note_commits(best_prefix);
    for (mv, _, gain) in sequence.iter().take(best_prefix) {
        history.push(MoveRecord {
            applied: mv.clone(),
            gain: *gain,
            pass,
            strategy,
        });
    }
    *current = sequence[best_prefix - 1].1.clone();
    Ok(true)
}

/// The full classic descent: improvement passes until one commits nothing
/// (or the pass limit). Shared by the greedy, restart and Pareto strategies
/// so the point they all descend to is computed by one code path.
fn greedy_descent(
    kernel: &mut SearchKernel<'_, '_>,
    start: DesignPoint,
    strategy: &'static str,
) -> Result<Exploration, SynthesisError> {
    let max_passes = kernel.config().max_passes;
    let mut current = start;
    let mut history: Vec<MoveRecord> = Vec::new();
    let mut passes = 0usize;
    for pass in 0..max_passes {
        passes = pass + 1;
        if !greedy_pass(kernel, &mut current, pass, strategy, &mut history)? {
            break;
        }
    }
    Ok(Exploration {
        best: current,
        history,
        passes,
        front: Vec::new(),
    })
}

// --------------------------------------------------------------- explorers

/// The paper's greedy variable-depth descent — the oracle strategy,
/// bit-identical to the engine before the search-policy layer existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyExplorer;

impl Explorer for GreedyExplorer {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn explore(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        initial: DesignPoint,
    ) -> Result<Exploration, SynthesisError> {
        greedy_descent(kernel, initial, "greedy")
    }
}

/// Beam search over move sequences: each step expands every live sequence
/// by its top-`width` feasible candidates and keeps the best `width`
/// children overall, with deterministic tie-breaks (cumulative gain, then
/// parent beam position, then candidate rank). The best prefix seen across
/// the whole beam is committed per pass — with `width = 1` this is exactly
/// the greedy pass.
#[derive(Clone, Copy, Debug)]
pub struct BeamExplorer {
    /// Number of move sequences kept alive per step (minimum 1).
    pub width: usize,
}

/// One live sequence of a beam pass.
struct BeamNode {
    seq: Vec<(Move, DesignPoint, f64)>,
    cumulative_gain: f64,
}

impl BeamExplorer {
    fn beam_pass(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        current: &mut DesignPoint,
        pass: usize,
        history: &mut Vec<MoveRecord>,
    ) -> Result<bool, SynthesisError> {
        let width = self.width.max(1);
        let max_sequence_length = kernel.config().max_sequence_length;
        let root = current.clone();
        let mut beam = vec![BeamNode {
            seq: Vec::new(),
            cumulative_gain: 0.0,
        }];
        let mut best_gain = 0.0;
        let mut best_seq: Vec<(Move, DesignPoint, f64)> = Vec::new();

        for _ in 0..max_sequence_length {
            // Expand every live sequence by its top-`width` feasible
            // candidates; (parent position, candidate rank) ride along as
            // the deterministic tie-break.
            let mut children: Vec<(usize, usize, BeamNode)> = Vec::new();
            for (parent, node) in beam.iter().enumerate() {
                let working = node.seq.last().map_or(&root, |(_, point, _)| point).clone();
                let expansions = kernel.ranked_step(&working, width)?;
                for (rank, candidate) in expansions.into_iter().enumerate() {
                    let mut seq = node.seq.clone();
                    let child_gain = node.cumulative_gain + candidate.gain;
                    seq.push((candidate.mv, candidate.point, candidate.gain));
                    children.push((
                        parent,
                        rank,
                        BeamNode {
                            seq,
                            cumulative_gain: child_gain,
                        },
                    ));
                }
            }
            if children.is_empty() {
                break;
            }
            children.sort_by(|a, b| {
                b.2.cumulative_gain
                    .total_cmp(&a.2.cumulative_gain)
                    .then(a.0.cmp(&b.0))
                    .then(a.1.cmp(&b.1))
            });
            children.truncate(width);
            kernel.note_beam_width(children.len());
            // First-strictly-greater in sorted order, so ties keep the
            // earlier (better-ranked) sequence — with width 1 this is the
            // greedy pass's best-prefix update.
            for (_, _, node) in &children {
                if node.cumulative_gain > best_gain + GAIN_EPS {
                    best_gain = node.cumulative_gain;
                    best_seq = node.seq.clone();
                }
            }
            beam = children.into_iter().map(|(_, _, node)| node).collect();
        }

        if best_seq.is_empty() {
            return Ok(false);
        }
        kernel.note_commits(best_seq.len());
        for (mv, _, gain) in &best_seq {
            history.push(MoveRecord {
                applied: mv.clone(),
                gain: *gain,
                pass,
                strategy: "beam",
            });
        }
        *current = best_seq[best_seq.len() - 1].1.clone();
        Ok(true)
    }
}

impl Explorer for BeamExplorer {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn explore(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        initial: DesignPoint,
    ) -> Result<Exploration, SynthesisError> {
        let mut current = initial;
        let mut history: Vec<MoveRecord> = Vec::new();
        let mut passes = 0usize;
        for pass in 0..kernel.config().max_passes {
            passes = pass + 1;
            if !self.beam_pass(kernel, &mut current, pass, &mut history)? {
                break;
            }
        }
        Ok(Exploration {
            best: current,
            history,
            passes,
            front: Vec::new(),
        })
    }
}

/// Best-of-n restarts: run the unperturbed greedy descent first (so the
/// result is never worse than greedy's), then repeatedly kick the incumbent
/// with a few seeded random feasible moves and descend again, keeping the
/// strictly best outcome. Kicks are applied to a scratch design through
/// [`Move::apply`] and rolled back delta by delta through the transactional
/// exact-revert path, so the incumbent is never mutated.
#[derive(Clone, Copy, Debug)]
pub struct RestartExplorer {
    /// Perturbation restarts after the base descent.
    pub restarts: usize,
    /// Moves per perturbation kick.
    pub kicks: usize,
    /// Seed of the kick generator (compat `rand` SplitMix64).
    pub seed: u64,
}

/// Random-candidate draws attempted per kick move before giving up on the
/// kick step (an infeasible draw is retried with the next random index).
const KICK_ATTEMPTS: usize = 8;

impl RestartExplorer {
    /// Perturbs `from` by up to `self.kicks` random feasible moves. Returns
    /// the kicked design point and the kick's history records, or `None`
    /// when no feasible perturbation was found. The scratch design the kick
    /// mutates is rolled back through [`RtlDesign::revert_delta`] before
    /// returning, which (debug-)asserts the exact pre-kick state is
    /// restored.
    fn kick(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        from: &DesignPoint,
        rng: &mut StdRng,
    ) -> Result<Option<(DesignPoint, Vec<MoveRecord>)>, SynthesisError> {
        let mode = kernel.config().mode;
        let mut scratch = from.design.clone();
        let before = scratch.fingerprint();
        let mut deltas: Vec<DesignDelta> = Vec::new();
        let mut records: Vec<MoveRecord> = Vec::new();
        let mut point = from.clone();

        for _ in 0..self.kicks {
            let candidates = kernel.candidates(&scratch);
            if candidates.is_empty() {
                break;
            }
            let mut advanced = None;
            for _ in 0..KICK_ATTEMPTS {
                let pick = rng.random_range(0..candidates.len());
                if let Some(next) = kernel.probe_move(&point, &candidates[pick])? {
                    advanced = Some((candidates[pick].clone(), next));
                    break;
                }
            }
            let Some((mv, next)) = advanced else { break };
            let Ok(delta) = mv.apply(kernel.cdfg(), kernel.evaluator().library(), &mut scratch)
            else {
                break;
            };
            deltas.push(delta);
            records.push(MoveRecord {
                applied: mv,
                gain: point.cost(mode) - next.cost(mode),
                pass: 0,
                strategy: "restart-kick",
            });
            point = next;
        }

        // Roll the scratch design back move by move — the transactional
        // exact-revert path the deltas exist for.
        for delta in deltas.iter().rev() {
            scratch.revert_delta(delta);
            kernel.note_revert();
        }
        debug_assert_eq!(
            scratch.fingerprint(),
            before,
            "reverting a kick must restore the exact pre-kick design"
        );

        if records.is_empty() {
            return Ok(None);
        }
        Ok(Some((point, records)))
    }
}

impl Explorer for RestartExplorer {
    fn name(&self) -> &'static str {
        "restart"
    }

    fn explore(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        initial: DesignPoint,
    ) -> Result<Exploration, SynthesisError> {
        let mode = kernel.config().mode;
        // Run 0 is the unperturbed descent: the restart strategy can only
        // ever improve on the greedy result.
        let mut best = greedy_descent(kernel, initial, "restart")?;
        if kernel.config().max_passes == 0 || self.kicks == 0 {
            return Ok(best);
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.restarts {
            kernel.note_restart();
            let Some((kicked, kick_records)) = self.kick(kernel, &best.best, &mut rng)? else {
                continue;
            };
            let descent = greedy_descent(kernel, kicked, "restart")?;
            if descent.best.cost(mode) < best.best.cost(mode) - GAIN_EPS {
                // The winning restart's history is the kick that escaped the
                // basin plus the descent that followed it.
                kernel.note_commits(kick_records.len());
                let mut history = kick_records;
                history.extend(descent.history);
                best = Exploration {
                    best: descent.best,
                    history,
                    passes: descent.passes,
                    front: Vec::new(),
                };
            }
        }
        Ok(best)
    }
}

/// Greedy descent with a sweep collector: every feasible fully evaluated
/// probe (and the initial point) is kept, and the non-dominated
/// power/area/latency front is returned alongside the greedy best point.
/// The reported design is bit-identical to [`GreedyExplorer`]'s; the front
/// is the extra product.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParetoSweep;

impl Explorer for ParetoSweep {
    fn name(&self) -> &'static str {
        "pareto"
    }

    fn explore(
        &self,
        kernel: &mut SearchKernel<'_, '_>,
        initial: DesignPoint,
    ) -> Result<Exploration, SynthesisError> {
        kernel.begin_collection();
        kernel.collect(&initial);
        let mut exploration = greedy_descent(kernel, initial, "pareto")?;
        let collected = kernel.take_collected();
        let (front, dominated) = pareto_front(collected);
        kernel.stats.pareto_kept += front.len() as u64;
        kernel.stats.pareto_dominated += dominated;
        exploration.front = front;
        Ok(exploration)
    }
}

/// Whether `a` dominates `b` on the (power, area, ENC) objectives: no worse
/// on all three and strictly better on at least one.
fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    let a_metrics = [a.power.total_mw(), a.area, a.enc()];
    let b_metrics = [b.power.total_mw(), b.area, b.enc()];
    let no_worse = a_metrics.iter().zip(&b_metrics).all(|(x, y)| x <= y);
    let strictly_better = a_metrics.iter().zip(&b_metrics).any(|(x, y)| x < y);
    no_worse && strictly_better
}

/// Dominance-filters a set of design points on (power, area, ENC). Returns
/// the non-dominated front in deterministic order (power ascending, then
/// area, then ENC) and the number of points discarded as dominated or as
/// metric-duplicates.
pub fn pareto_front(mut points: Vec<DesignPoint>) -> (Vec<DesignPoint>, u64) {
    let offered = points.len();
    points.sort_by(|a, b| {
        a.power
            .total_mw()
            .total_cmp(&b.power.total_mw())
            .then(a.area.total_cmp(&b.area))
            .then(a.enc().total_cmp(&b.enc()))
            .then(a.vdd.total_cmp(&b.vdd))
    });
    // Points with identical objectives are interchangeable for the front;
    // keep the first (lowest supply after the sort above).
    points.dedup_by(|a, b| {
        a.power.total_mw() == b.power.total_mw() && a.area == b.area && a.enc() == b.enc()
    });
    let front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    let dominated = (offered - front.len()) as u64;
    (front, dominated)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn explorer_kind_parses_cli_spellings() {
        assert_eq!(ExplorerKind::parse("greedy"), Some(ExplorerKind::Greedy));
        assert_eq!(
            ExplorerKind::parse("beam"),
            Some(ExplorerKind::Beam {
                width: DEFAULT_BEAM_WIDTH
            })
        );
        assert_eq!(
            ExplorerKind::parse("beam:7"),
            Some(ExplorerKind::Beam { width: 7 })
        );
        assert_eq!(
            ExplorerKind::parse("restart:5:3:42"),
            Some(ExplorerKind::Restart {
                restarts: 5,
                kicks: 3,
                seed: 42
            })
        );
        assert_eq!(
            ExplorerKind::parse("restart"),
            Some(ExplorerKind::Restart {
                restarts: DEFAULT_RESTARTS,
                kicks: DEFAULT_KICKS,
                seed: DEFAULT_RESTART_SEED
            })
        );
        assert_eq!(ExplorerKind::parse("pareto"), Some(ExplorerKind::Pareto));
        assert_eq!(ExplorerKind::parse("beam:x"), None);
        assert_eq!(ExplorerKind::parse("annealing"), None);
        assert_eq!(ExplorerKind::parse("greedy:1"), None);
    }

    #[test]
    fn explorer_kind_round_trips_through_the_codec() {
        for kind in ExplorerKind::all() {
            let decoded: ExplorerKind = decode_from_slice(&encode_to_vec(&kind)).unwrap();
            assert_eq!(decoded, kind);
        }
        let custom = ExplorerKind::Restart {
            restarts: 9,
            kicks: 4,
            seed: 0xDEAD_BEEF,
        };
        let decoded: ExplorerKind = decode_from_slice(&encode_to_vec(&custom)).unwrap();
        assert_eq!(decoded, custom);
    }

    #[test]
    fn explore_stats_accumulate_sums_and_maxes() {
        let mut a = ExploreStats {
            probes: 10,
            rank_probes: 100,
            commits: 3,
            reverts: 1,
            beam_width: 2,
            restarts: 1,
            pareto_kept: 4,
            pareto_dominated: 6,
        };
        let b = ExploreStats {
            probes: 5,
            rank_probes: 50,
            commits: 2,
            reverts: 2,
            beam_width: 4,
            restarts: 3,
            pareto_kept: 1,
            pareto_dominated: 2,
        };
        a.accumulate(b);
        assert_eq!(a.probes, 15);
        assert_eq!(a.rank_probes, 150);
        assert_eq!(a.commits, 5);
        assert_eq!(a.reverts, 3);
        assert_eq!(a.beam_width, 4, "beam width keeps the maximum realized");
        assert_eq!(a.restarts, 4);
        assert_eq!(a.pareto_kept, 5);
        assert_eq!(a.pareto_dominated, 8);
    }

    #[test]
    fn infeasible_top_candidate_falls_through_to_the_next_ranked_one() {
        // Regression for the pass-abort bug: the engine used to `break` the
        // whole sequence when the top-ranked candidate's full evaluation came
        // back infeasible, discarding feasible lower-ranked candidates.
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(8, 17)).unwrap();
        let evaluator = Evaluator::new(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(2.0).with_effort(1, 1),
        )
        .unwrap();
        let template = evaluator.initial_point().unwrap();
        let ranked = vec![(0usize, 3.0), (1, 2.0), (2, 1.0)];
        let mut probed = Vec::new();
        let result = first_feasible(&ranked, |index| -> Result<_, SynthesisError> {
            probed.push(index);
            // The best-gain candidate is infeasible under full evaluation.
            Ok((index != 0).then(|| template.clone()))
        })
        .unwrap();
        let (chosen, _) = result.expect("a lower-ranked feasible candidate is committed");
        assert_eq!(chosen, 1, "the next-ranked candidate is chosen");
        assert_eq!(probed, vec![0, 1], "ranking order is respected");
        // When every candidate is infeasible the step (not the whole pass
        // machinery) reports exhaustion.
        let none = first_feasible(&ranked, |_| -> Result<_, SynthesisError> { Ok(None) }).unwrap();
        assert!(none.is_none());
        // Errors propagate immediately.
        let err = first_feasible(
            &ranked,
            |_| -> Result<Option<DesignPoint>, SynthesisError> {
                Err(SynthesisError::InfeasibleLaxity { laxity: 0.0 })
            },
        );
        assert!(err.is_err());
    }
}
