//! Error type of the synthesis engine.

use std::error::Error;
use std::fmt;

use impact_rtl::RtlError;
use impact_sched::SchedError;

/// Errors reported by [`Impact::synthesize`](crate::Impact::synthesize).
#[derive(Clone, PartialEq, Debug)]
pub enum SynthesisError {
    /// The laxity factor is below 1.0, so even the fastest schedule cannot
    /// satisfy the ENC constraint.
    InfeasibleLaxity {
        /// The requested laxity factor.
        laxity: f64,
    },
    /// The initial fully-parallel architecture could not be scheduled.
    Scheduling(SchedError),
    /// An internal RT-level mutation failed (indicates a bug in move
    /// generation).
    Rtl(RtlError),
    /// Static invariant auditing found violations in a freshly produced
    /// artifact (only raised with the `verify` cargo feature and a
    /// [`VerifyLevel`](crate::VerifyLevel) above `Off`). Each string is one
    /// rendered violation.
    Verification(Vec<String>),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InfeasibleLaxity { laxity } => {
                write!(f, "laxity factor {laxity} is below 1.0 and cannot be met")
            }
            SynthesisError::Scheduling(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::Rtl(e) => write!(f, "RT-level transformation failed: {e}"),
            SynthesisError::Verification(violations) => {
                write!(
                    f,
                    "invariant audit found {} violation(s): {}",
                    violations.len(),
                    violations.join("; ")
                )
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Scheduling(e) => Some(e),
            SynthesisError::Rtl(e) => Some(e),
            SynthesisError::InfeasibleLaxity { .. } | SynthesisError::Verification(_) => None,
        }
    }
}

impl From<SchedError> for SynthesisError {
    fn from(e: SchedError) -> Self {
        SynthesisError::Scheduling(e)
    }
}

impl From<RtlError> for SynthesisError {
    fn from(e: RtlError) -> Self {
        SynthesisError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e = SynthesisError::InfeasibleLaxity { laxity: 0.5 };
        assert!(e.to_string().contains("0.5"));
        assert!(e.source().is_none());
        let e = SynthesisError::from(SchedError::IncompleteProblem {
            nodes: 3,
            provided: 1,
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn verification_message_lists_violations() {
        let e = SynthesisError::Verification(vec!["a".into(), "b".into()]);
        assert!(e.to_string().contains("2 violation(s)"));
        assert!(e.to_string().contains("a; b"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SynthesisError>();
    }
}
