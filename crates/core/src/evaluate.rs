//! Cost evaluation of RT-level designs: scheduling, power, area and supply
//! scaling against the laxity constraint.

use impact_behsim::ExecutionTrace;
use impact_cdfg::Cdfg;
use impact_modlib::{ModuleLibrary, VDD_REFERENCE};
use impact_power::{PowerBreakdown, PowerEstimator};
use impact_rtl::{MuxTree, RtlDesign};
use impact_sched::{ScheduleConfig, Scheduler, SchedulingProblem, SchedulingResult, WaveScheduler};
use impact_trace::RtTraces;

use crate::config::{OptimizationMode, SynthesisConfig};
use crate::error::SynthesisError;

/// A fully evaluated design: architecture, schedule, operating point and the
/// resulting cost metrics.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// The RT-level architecture.
    pub design: RtlDesign,
    /// Its schedule at the selected supply voltage.
    pub schedule: SchedulingResult,
    /// Selected supply voltage in volts.
    pub vdd: f64,
    /// Power at the selected supply voltage.
    pub power: PowerBreakdown,
    /// Power of the same design operated at the 5 V reference supply.
    pub power_at_reference: PowerBreakdown,
    /// Total area in equivalent gates.
    pub area: f64,
}

impl DesignPoint {
    /// Expected number of cycles of the design at its operating point.
    pub fn enc(&self) -> f64 {
        self.schedule.enc
    }

    /// The scalar the search minimizes under the given mode.
    pub fn cost(&self, mode: OptimizationMode) -> f64 {
        match mode {
            OptimizationMode::Power => self.power.total_mw(),
            OptimizationMode::Area => self.area,
        }
    }
}

/// Evaluator bound to one design (CDFG + behavioral trace + configuration).
///
/// It owns the ENC budget derived from the laxity factor: `enc_limit =
/// laxity × enc_min`, where `enc_min` is the ENC of the Wavesched schedule of
/// the fully-parallel architecture with the fastest modules at 5 V.
#[derive(Clone, Debug)]
pub struct Evaluator<'a> {
    cdfg: &'a Cdfg,
    trace: &'a ExecutionTrace,
    library: ModuleLibrary,
    config: SynthesisConfig,
    enc_min: f64,
    enc_limit: f64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator and computes the ENC budget.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InfeasibleLaxity`] for laxity below 1.0 and
    /// propagates scheduling failures on the initial architecture.
    pub fn new(
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
    ) -> Result<Self, SynthesisError> {
        if config.laxity < 1.0 {
            return Err(SynthesisError::InfeasibleLaxity {
                laxity: config.laxity,
            });
        }
        let library = ModuleLibrary::standard();
        let mut evaluator = Self {
            cdfg,
            trace,
            library,
            config,
            enc_min: 0.0,
            enc_limit: f64::INFINITY,
        };
        let initial = RtlDesign::initial_parallel(cdfg, &evaluator.library);
        let schedule = evaluator.schedule(&initial, VDD_REFERENCE)?;
        evaluator.enc_min = schedule.enc;
        evaluator.enc_limit = schedule.enc * evaluator.config.laxity;
        Ok(evaluator)
    }

    /// Minimum achievable ENC with the given library and clock.
    pub fn enc_min(&self) -> f64 {
        self.enc_min
    }

    /// The ENC budget (`laxity × enc_min`).
    pub fn enc_limit(&self) -> f64 {
        self.enc_limit
    }

    /// The module library used for evaluation.
    pub fn library(&self) -> &ModuleLibrary {
        &self.library
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Builds and evaluates the initial fully-parallel architecture.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures; the initial architecture is always
    /// feasible for laxity ≥ 1.
    pub fn initial_point(&self) -> Result<DesignPoint, SynthesisError> {
        let design = RtlDesign::initial_parallel(self.cdfg, &self.library);
        self.evaluate(&design)?
            .ok_or(SynthesisError::InfeasibleLaxity {
                laxity: self.config.laxity,
            })
    }

    /// Fully evaluates a design: checks feasibility at the reference supply,
    /// then (when enabled) scales the supply down as far as the ENC budget
    /// allows. Returns `None` when the design violates the ENC budget even at
    /// 5 V.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures (which indicate malformed inputs, not
    /// infeasibility).
    pub fn evaluate(&self, design: &RtlDesign) -> Result<Option<DesignPoint>, SynthesisError> {
        let reference = self.evaluate_at_vdd(design, VDD_REFERENCE)?;
        let Some(reference_point) = reference else {
            return Ok(None);
        };
        if !self.config.vdd_scaling {
            return Ok(Some(reference_point));
        }
        // Binary search for the lowest feasible supply on the discrete grid;
        // ENC grows monotonically as the supply (and hence speed) drops.
        let levels = self.library.vdd().levels().to_vec();
        let mut lo = 0usize;
        let mut hi = levels.len() - 1; // the reference level, known feasible
        let mut best = reference_point.clone();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.evaluate_at_vdd(design, levels[mid])? {
                Some(point) => {
                    best = point;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        // `best` holds the point for the lowest feasible level probed; make
        // sure it matches `levels[hi]` exactly (it might be a higher level if
        // the last probe was infeasible).
        if (best.vdd - levels[hi]).abs() > 1e-9 {
            if let Some(point) = self.evaluate_at_vdd(design, levels[hi])? {
                best = point;
            }
        }
        Ok(Some(best))
    }

    /// Evaluates a design at one fixed supply voltage (a single scheduling),
    /// returning `None` when it violates the ENC budget there.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn evaluate_at_vdd(
        &self,
        design: &RtlDesign,
        vdd: f64,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        let schedule = self.schedule(design, vdd)?;
        if schedule.enc > self.enc_limit + 1e-9 {
            return Ok(None);
        }
        let rt = RtTraces::new(self.cdfg, design, self.trace);
        let estimator = PowerEstimator::new(&self.library, self.config.power.clone().at_vdd(vdd));
        let power = estimator.estimate(self.cdfg, design, &rt, &schedule);
        let area = estimator.area(self.cdfg, design, &schedule);
        let power_at_reference = if (vdd - VDD_REFERENCE).abs() < 1e-9 {
            power
        } else {
            let ref_estimator = PowerEstimator::new(
                &self.library,
                self.config.power.clone().at_vdd(VDD_REFERENCE),
            );
            ref_estimator.estimate(self.cdfg, design, &rt, &schedule)
        };
        Ok(Some(DesignPoint {
            design: design.clone(),
            schedule,
            vdd,
            power,
            power_at_reference,
            area,
        }))
    }

    /// Schedules a design at the given supply voltage with the Wavesched
    /// scheduler, using effective per-node delays that include module delay,
    /// interconnect (mux-tree) delay and supply-dependent slowdown.
    fn schedule(&self, design: &RtlDesign, vdd: f64) -> Result<SchedulingResult, SynthesisError> {
        let factor = self.library.vdd().delay_factor(vdd);
        let node_delays = self.effective_node_delays(design, factor);
        let problem = SchedulingProblem {
            cdfg: self.cdfg,
            node_delays,
            node_fu: design.scheduler_binding(),
            profile: self.trace.profile().clone(),
            config: ScheduleConfig::wavesched().with_clock(self.config.clock_ns),
        };
        WaveScheduler::new()
            .schedule(&problem)
            .map_err(SynthesisError::from)
    }

    /// Effective delay of every node: module delay plus the mux stages its
    /// operands and result traverse, all scaled by the supply-dependent
    /// factor. Restructured trees use each operand's actual depth in the
    /// activity-probability-ordered tree, which is how restructuring can
    /// shorten the critical path of probable signals (the Figure 9/10
    /// example).
    pub fn effective_node_delays(&self, design: &RtlDesign, delay_factor: f64) -> Vec<f64> {
        let mut delays = design.node_module_delays(self.cdfg, &self.library);
        let mux_delay = self.library.mux2().delay_ns;
        let rt = RtTraces::new(self.cdfg, design, self.trace);
        for site in design.mux_sites(self.cdfg) {
            if site.fan_in() < 2 {
                continue;
            }
            let depth_of: Vec<usize> = if design.is_restructured(site.sink) {
                let tree = MuxTree::huffman(rt.mux_source_stats(&site));
                (0..site.sources.len())
                    .map(|i| tree.depth_of(i).unwrap_or(0))
                    .collect()
            } else {
                let tree = MuxTree::balanced(
                    site.sources
                        .iter()
                        .map(|_| impact_rtl::MuxSource::new("s", 0.0, 0.0))
                        .collect::<Vec<_>>(),
                );
                (0..site.sources.len())
                    .map(|i| tree.depth_of(i).unwrap_or(0))
                    .collect()
            };
            for (index, source) in site.sources.iter().enumerate() {
                let extra = depth_of[index] as f64 * mux_delay;
                for &op in &source.ops {
                    delays[op.index()] += extra;
                }
            }
        }
        for d in delays.iter_mut() {
            *d *= delay_factor;
        }
        delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_behsim::simulate;

    fn gcd_setup(laxity: f64) -> (Cdfg, ExecutionTrace, SynthesisConfig) {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let inputs = bench.input_sequences(16, 3);
        let trace = simulate(&cdfg, &inputs).unwrap();
        (cdfg, trace, SynthesisConfig::power_optimized(laxity))
    }

    #[test]
    fn enc_budget_scales_with_laxity() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        assert!(evaluator.enc_min() > 0.0);
        assert!((evaluator.enc_limit() - 2.0 * evaluator.enc_min()).abs() < 1e-9);
    }

    #[test]
    fn laxity_below_one_is_rejected() {
        let (cdfg, trace, _) = gcd_setup(2.0);
        let err = Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(0.8)).unwrap_err();
        assert!(matches!(err, SynthesisError::InfeasibleLaxity { .. }));
    }

    #[test]
    fn initial_point_is_feasible_and_at_reduced_vdd_when_laxity_allows() {
        let (cdfg, trace, config) = gcd_setup(2.5);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let point = evaluator.initial_point().unwrap();
        assert!(point.enc() <= evaluator.enc_limit() + 1e-9);
        assert!(
            point.vdd < VDD_REFERENCE,
            "slack should be converted into a lower supply"
        );
        assert!(point.power.total_mw() < point.power_at_reference.total_mw());
    }

    #[test]
    fn laxity_one_keeps_the_reference_supply() {
        let (cdfg, trace, _) = gcd_setup(2.0);
        let evaluator =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(1.0)).unwrap();
        let point = evaluator.initial_point().unwrap();
        // With no slack the supply can barely move; it must stay close to 5 V.
        assert!(
            point.vdd > 4.0,
            "vdd {} should stay near the reference",
            point.vdd
        );
    }

    #[test]
    fn infeasible_designs_evaluate_to_none() {
        let (cdfg, trace, config) = gcd_setup(1.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        // Make the design much slower than the fully parallel one: share both
        // subtractors and put ripple adders on them.
        let mut design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let ripple = evaluator.library().variant_by_name("ripple_adder").unwrap();
        design
            .substitute_module(evaluator.library(), adders[0], ripple)
            .unwrap();
        // At laxity 1.0 the budget equals the fastest schedule, so this must
        // either be infeasible or cost strictly more cycles at 5 V.
        match evaluator.evaluate(&design).unwrap() {
            None => {}
            Some(point) => assert!(point.enc() <= evaluator.enc_limit() + 1e-9),
        }
    }

    #[test]
    fn effective_delays_grow_when_the_supply_drops() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let at_5v = evaluator.effective_node_delays(&design, 1.0);
        let slow = evaluator.effective_node_delays(&design, 2.0);
        for (a, b) in at_5v.iter().zip(&slow) {
            assert!(b >= a);
        }
    }

    #[test]
    fn evaluate_at_reference_matches_reference_power() {
        let (cdfg, trace, config) = gcd_setup(1.5);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let point = evaluator
            .evaluate_at_vdd(&design, VDD_REFERENCE)
            .unwrap()
            .unwrap();
        assert!((point.power.total_mw() - point.power_at_reference.total_mw()).abs() < 1e-12);
        assert!(point.cost(OptimizationMode::Area) > 0.0);
        assert!(point.cost(OptimizationMode::Power) > 0.0);
    }
}
