//! Cost evaluation of RT-level designs: scheduling, power, area and supply
//! scaling against the laxity constraint.
//!
//! Evaluation is *incremental* by default: every [`Evaluator`] works against
//! an evaluation session whose cache memoizes trace statistics by structural
//! content, per-design contexts (base delays + power profile) by design
//! fingerprint, and full [`DesignPoint`]s by `(workload, fingerprint, vdd)`.
//! The Vdd binary search therefore schedules each `(design, level)` pair at
//! most once per session, and re-probes are hash lookups.
//!
//! Design points are laxity-*independent*: the cache stores the full
//! evaluation of every probed `(design, vdd)` pair and the evaluator applies
//! its own ENC budget at read time, so a [`SweepSession`] shared across runs
//! with different laxity factors (the Figure 13 sweep) reuses the points,
//! contexts and statistics of earlier runs. Only the outcome of the full
//! supply search is keyed by the ENC budget, because the selected supply
//! depends on it.
//!
//! With the cache disabled
//! ([`EngineConfig::sequential`](crate::EngineConfig::sequential)) the same
//! code path recomputes everything from scratch per call, which reproduces
//! the brute-force loop bit-identically — the cache only memoizes pure
//! functions.

use std::collections::HashSet;
use std::sync::Arc;

use impact_behsim::ExecutionTrace;
use impact_cdfg::{Cdfg, NodeId};
use impact_modlib::{ModuleLibrary, VDD_REFERENCE};
use impact_power::{PowerBreakdown, PowerEstimator, PowerProfile};
use impact_rtl::{
    DesignDelta, DesignFingerprint, FingerprintHasher, FuId, FunctionalUnit, MuxSite, MuxTree,
    RegId, Register, RtlDesign,
};
use impact_sched::{
    BlockSchedule, BlockSource, ScheduleConfig, ScheduleDeltaProblem, Scheduler, SchedulingProblem,
    SchedulingResult, WaveScheduler,
};
use impact_trace::RtTraces;

use crate::cache::{CacheBackend, CacheStats, DesignContext, MuxEntry};
use crate::config::{OptimizationMode, SynthesisConfig};
use crate::error::SynthesisError;
use crate::fingerprint::{
    BlockKey, ContextKey, FuStatsKey, MuxStatsKey, PointKey, RegStatsKey, ScaledKey, ScheduleKey,
    WorkloadId,
};
use crate::moves::Move;
use crate::session::SweepSession;

/// Feasibility tolerance on the ENC budget: a design whose ENC exceeds the
/// budget by at most this much still passes. One shared constant keeps the
/// cached read-time filter, the uncached computation-time check and the
/// engine's tests from disagreeing at the boundary.
pub(crate) const ENC_EPS: f64 = 1e-9;

/// Provenance of a candidate design inside move-aware evaluation: its parent
/// design, the parent's structural fingerprint and the move's change-set.
/// When delta patching is enabled this is what turns full rebuilds into
/// patches — the candidate's fingerprint is XOR-patched from the parent's and
/// its evaluation context is derived from the parent's context by cloning
/// only the touched entries.
struct MoveLineage<'a> {
    parent: &'a RtlDesign,
    parent_fingerprint: DesignFingerprint,
    delta: &'a DesignDelta,
}

/// A fully evaluated design: architecture, schedule, operating point and the
/// resulting cost metrics.
#[derive(Clone, PartialEq, Debug)]
pub struct DesignPoint {
    /// The RT-level architecture.
    pub design: RtlDesign,
    /// Its schedule at the selected supply voltage. Shared: memoized
    /// schedules are handed out by pointer, so cloning a point (or serving a
    /// schedule-memo hit) never deep-copies the STG.
    pub schedule: Arc<SchedulingResult>,
    /// Selected supply voltage in volts.
    pub vdd: f64,
    /// Power at the selected supply voltage.
    pub power: PowerBreakdown,
    /// Power of the same design operated at the 5 V reference supply.
    pub power_at_reference: PowerBreakdown,
    /// Total area in equivalent gates.
    pub area: f64,
}

impl DesignPoint {
    /// Expected number of cycles of the design at its operating point.
    pub fn enc(&self) -> f64 {
        self.schedule.enc
    }

    /// The scalar the search minimizes under the given mode.
    pub fn cost(&self, mode: OptimizationMode) -> f64 {
        match mode {
            OptimizationMode::Power => self.power.total_mw(),
            OptimizationMode::Area => self.area,
        }
    }
}

/// Version tag of [`DesignPoint`]'s snapshot wire layout.
const TAG_DESIGN_POINT: u8 = 0x42;

impl impact_codec::Encode for DesignPoint {
    fn encode(&self, w: &mut impact_codec::Encoder) {
        w.put_tag(TAG_DESIGN_POINT);
        self.design.encode(w);
        self.schedule.encode(w);
        w.put_f64(self.vdd);
        self.power.encode(w);
        self.power_at_reference.encode(w);
        w.put_f64(self.area);
    }
}

impl impact_codec::Decode for DesignPoint {
    fn decode(r: &mut impact_codec::Decoder<'_>) -> Result<Self, impact_codec::DecodeError> {
        r.expect_tag(TAG_DESIGN_POINT)?;
        Ok(Self {
            design: impact_codec::Decode::decode(r)?,
            schedule: impact_codec::Decode::decode(r)?,
            vdd: r.take_f64()?,
            power: impact_codec::Decode::decode(r)?,
            power_at_reference: impact_codec::Decode::decode(r)?,
            area: r.take_f64()?,
        })
    }
}

/// Evaluator bound to one design (CDFG + behavioral trace + configuration).
///
/// It owns the ENC budget derived from the laxity factor: `enc_limit =
/// laxity × enc_min`, where `enc_min` is the ENC of the Wavesched schedule of
/// the fully-parallel architecture with the fastest modules at 5 V.
#[derive(Clone, Debug)]
pub struct Evaluator<'a> {
    cdfg: &'a Cdfg,
    trace: &'a ExecutionTrace,
    library: ModuleLibrary,
    config: SynthesisConfig,
    enc_min: f64,
    enc_limit: f64,
    /// Evaluation session; `None` reproduces the brute-force loop. Clones of
    /// the evaluator (and every run handed the same external session) share
    /// one store.
    session: Option<SweepSession>,
    /// Content digest scoping this evaluator's cache keys within the session.
    workload: WorkloadId,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a private session (or none, when the engine
    /// configuration disables caching) and computes the ENC budget.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InfeasibleLaxity`] for laxity below 1.0 and
    /// propagates scheduling failures on the initial architecture.
    pub fn new(
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
    ) -> Result<Self, SynthesisError> {
        let session = config.engine.cache.then(SweepSession::new);
        Self::build(cdfg, trace, config, session)
    }

    /// Creates an evaluator sharing an external [`SweepSession`]: later runs
    /// over the same workload reuse the contexts, trace statistics and design
    /// points of earlier ones, including runs at *different* laxity factors.
    /// An external session implies caching regardless of
    /// [`EngineConfig::cache`](crate::EngineConfig).
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn with_session(
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
        session: &SweepSession,
    ) -> Result<Self, SynthesisError> {
        Self::build(cdfg, trace, config, Some(session.clone()))
    }

    fn build(
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
        session: Option<SweepSession>,
    ) -> Result<Self, SynthesisError> {
        if config.laxity < 1.0 {
            return Err(SynthesisError::InfeasibleLaxity {
                laxity: config.laxity,
            });
        }
        let library = ModuleLibrary::standard();
        let workload = if session.is_some() {
            workload_id(cdfg, trace, &config)
        } else {
            WorkloadId::default()
        };
        let mut evaluator = Self {
            cdfg,
            trace,
            library,
            config,
            enc_min: 0.0,
            enc_limit: f64::INFINITY,
            session,
            workload,
        };
        // With auditing enabled, the CDFG itself is checked once up front —
        // per-point audits then only re-verify the derived artifacts.
        #[cfg(feature = "verify")]
        if evaluator.config.engine.verify != crate::VerifyLevel::Off {
            let violations = impact_verify::verify_cdfg(cdfg);
            if !violations.is_empty() {
                return Err(SynthesisError::Verification(
                    violations.iter().map(ToString::to_string).collect(),
                ));
            }
        }
        let initial = RtlDesign::initial_parallel(cdfg, &evaluator.library);
        // With a session the minimum-ENC schedule goes through the cached
        // point path, so repeat runs of a sweep (and the subsequent
        // `initial_point` of this run) reuse it; without one, schedule
        // directly.
        evaluator.enc_min = if evaluator.session.is_some() {
            evaluator
                .raw_point_at(&initial, initial.fingerprint(), VDD_REFERENCE, None)?
                .enc()
        } else {
            evaluator.schedule(&initial, VDD_REFERENCE)?.enc
        };
        evaluator.enc_limit = evaluator.enc_min * evaluator.config.laxity;
        Ok(evaluator)
    }

    /// Minimum achievable ENC with the given library and clock.
    pub fn enc_min(&self) -> f64 {
        self.enc_min
    }

    /// The ENC budget (`laxity × enc_min`).
    pub fn enc_limit(&self) -> f64 {
        self.enc_limit
    }

    /// The module library used for evaluation.
    pub fn library(&self) -> &ModuleLibrary {
        &self.library
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The evaluation session, when caching is active.
    pub fn session(&self) -> Option<&SweepSession> {
        self.session.as_ref()
    }

    /// The workload digest scoping this evaluator's cache keys.
    pub fn workload(&self) -> WorkloadId {
        self.workload
    }

    /// The cache backend, when caching is active.
    fn backend(&self) -> Option<&Arc<dyn CacheBackend>> {
        self.session.as_ref().map(SweepSession::backend)
    }

    /// Builds and evaluates the initial fully-parallel architecture.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures; the initial architecture is always
    /// feasible for laxity ≥ 1.
    pub fn initial_point(&self) -> Result<DesignPoint, SynthesisError> {
        let design = RtlDesign::initial_parallel(self.cdfg, &self.library);
        self.evaluate(&design)?
            .ok_or(SynthesisError::InfeasibleLaxity {
                laxity: self.config.laxity,
            })
    }

    /// Snapshot of the evaluation-cache counters (cumulative over the whole
    /// session when an external session is shared across runs).
    pub fn cache_stats(&self) -> CacheStats {
        self.session
            .as_ref()
            .map(SweepSession::stats)
            .unwrap_or_default()
    }

    /// Fully evaluates a design: checks feasibility at the reference supply,
    /// then (when enabled) scales the supply down as far as the ENC budget
    /// allows. Returns `None` when the design violates the ENC budget even at
    /// 5 V.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures (which indicate malformed inputs, not
    /// infeasibility).
    pub fn evaluate(&self, design: &RtlDesign) -> Result<Option<DesignPoint>, SynthesisError> {
        Ok(self.evaluate_shared(design)?.map(|point| (*point).clone()))
    }

    /// [`Self::evaluate`] returning the cache's shared allocation, for
    /// callers that only inspect the point.
    pub(crate) fn evaluate_shared(
        &self,
        design: &RtlDesign,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        if let Some(backend) = self.backend() {
            let fingerprint = design.fingerprint();
            let key = ScaledKey::new(
                self.workload,
                fingerprint,
                self.enc_limit,
                self.config.vdd_scaling,
            );
            if let Some(cached) = backend.lookup_scaled(&key) {
                return Ok(cached);
            }
            let result = self.evaluate_scaled(design, Some(fingerprint), None)?;
            backend.store_scaled(key, result.clone());
            Ok(result)
        } else {
            self.evaluate_scaled(design, None, None)
        }
    }

    /// Applies `candidate` to a clone of `parent` and fully evaluates the
    /// result (supply search included). This is the move-aware entry point of
    /// delta evaluation: with
    /// [`delta_patching`](crate::EngineConfig::delta_patching) enabled the
    /// candidate's fingerprint is patched from the parent's and its
    /// evaluation context is derived from the parent's by cloning only the
    /// entries the move touched — bit-identical to the full rebuild.
    ///
    /// Returns `None` when the move is inapplicable to `parent` or the
    /// resulting design violates the ENC budget.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn evaluate_move(
        &self,
        parent: &RtlDesign,
        candidate: &Move,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        Ok(self
            .evaluate_move_shared(parent, None, candidate)?
            .map(|point| (*point).clone()))
    }

    /// [`Self::evaluate_move`] at one fixed supply voltage.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn evaluate_move_at_vdd(
        &self,
        parent: &RtlDesign,
        candidate: &Move,
        vdd: f64,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        Ok(self
            .evaluate_move_at_vdd_shared(parent, None, candidate, vdd)?
            .map(|point| (*point).clone()))
    }

    /// Move-aware full evaluation returning the cache's shared allocation.
    /// `parent_fingerprint` lets the engine hash the working design once per
    /// ranking stage instead of once per candidate; `None` computes it on
    /// demand.
    pub(crate) fn evaluate_move_shared(
        &self,
        parent: &RtlDesign,
        parent_fingerprint: Option<DesignFingerprint>,
        candidate: &Move,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        let mut mutated = parent.clone();
        let Ok(delta) = candidate.apply(self.cdfg, &self.library, &mut mutated) else {
            return Ok(None);
        };
        let Some(backend) = self.backend() else {
            return self.evaluate_scaled(&mutated, None, None);
        };
        let parent_fingerprint = parent_fingerprint.unwrap_or_else(|| parent.fingerprint());
        let lineage = MoveLineage {
            parent,
            parent_fingerprint,
            delta: &delta,
        };
        let fingerprint = self.candidate_fingerprint(&mutated, &lineage);
        let key = ScaledKey::new(
            self.workload,
            fingerprint,
            self.enc_limit,
            self.config.vdd_scaling,
        );
        if let Some(cached) = backend.lookup_scaled(&key) {
            return Ok(cached);
        }
        let result = self.evaluate_scaled(&mutated, Some(fingerprint), Some(&lineage))?;
        backend.store_scaled(key, result.clone());
        Ok(result)
    }

    /// Move-aware single-level evaluation returning the cache's shared
    /// allocation (the ranking stage's fast path).
    pub(crate) fn evaluate_move_at_vdd_shared(
        &self,
        parent: &RtlDesign,
        parent_fingerprint: Option<DesignFingerprint>,
        candidate: &Move,
        vdd: f64,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        let mut mutated = parent.clone();
        let Ok(delta) = candidate.apply(self.cdfg, &self.library, &mut mutated) else {
            return Ok(None);
        };
        if self.session.is_none() {
            let context = self.build_context(&mutated);
            return Ok(self
                .evaluate_with_context(&context, &mutated, vdd)?
                .map(Arc::new));
        }
        let parent_fingerprint = parent_fingerprint.unwrap_or_else(|| parent.fingerprint());
        let lineage = MoveLineage {
            parent,
            parent_fingerprint,
            delta: &delta,
        };
        let fingerprint = self.candidate_fingerprint(&mutated, &lineage);
        self.point_at(&mutated, fingerprint, vdd, Some(&lineage))
    }

    /// The candidate's structural fingerprint: patched from the parent's
    /// digest when delta patching is on, recomputed from the whole design
    /// otherwise (the oracle path).
    fn candidate_fingerprint(
        &self,
        candidate: &RtlDesign,
        lineage: &MoveLineage<'_>,
    ) -> DesignFingerprint {
        if self.config.engine.delta_patching {
            let patched = RtlDesign::fingerprint_update(lineage.parent_fingerprint, lineage.delta);
            debug_assert_eq!(
                patched,
                candidate.fingerprint(),
                "patched fingerprints must match full recomputation"
            );
            patched
        } else {
            candidate.fingerprint()
        }
    }

    /// The supply search. The design's fingerprint is computed once by the
    /// caller and threaded through every probe (`None` when the cache is
    /// off), as is the candidate's move lineage (`None` outside move-aware
    /// evaluation or with delta patching disabled).
    fn evaluate_scaled(
        &self,
        design: &RtlDesign,
        fingerprint: Option<DesignFingerprint>,
        lineage: Option<&MoveLineage<'_>>,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        let probe = |vdd: f64| -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
            match fingerprint {
                Some(fingerprint) => self.point_at(design, fingerprint, vdd, lineage),
                None => {
                    let context = self.build_context(design);
                    Ok(self
                        .evaluate_with_context(&context, design, vdd)?
                        .map(Arc::new))
                }
            }
        };
        let Some(reference_point) = probe(VDD_REFERENCE)? else {
            return Ok(None);
        };
        if !self.config.vdd_scaling {
            return Ok(Some(reference_point));
        }
        let levels = self.library.vdd().levels().to_vec();
        lowest_feasible_point(&levels, reference_point, probe).map(Some)
    }

    /// Evaluates a design at one fixed supply voltage (a single scheduling),
    /// returning `None` when it violates the ENC budget there.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn evaluate_at_vdd(
        &self,
        design: &RtlDesign,
        vdd: f64,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        Ok(self
            .evaluate_at_vdd_shared(design, vdd)?
            .map(|point| (*point).clone()))
    }

    /// [`Self::evaluate_at_vdd`] returning the cache's shared allocation, for
    /// callers (like the ranking stage) that only read the point.
    pub(crate) fn evaluate_at_vdd_shared(
        &self,
        design: &RtlDesign,
        vdd: f64,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        if self.session.is_some() {
            self.point_at(design, design.fingerprint(), vdd, None)
        } else {
            let context = self.build_context(design);
            Ok(self
                .evaluate_with_context(&context, design, vdd)?
                .map(Arc::new))
        }
    }

    /// Cache-enabled single-level evaluation with a precomputed fingerprint:
    /// the memoized point (laxity-independent) passed through this
    /// evaluator's ENC-budget filter.
    fn point_at(
        &self,
        design: &RtlDesign,
        fingerprint: DesignFingerprint,
        vdd: f64,
        lineage: Option<&MoveLineage<'_>>,
    ) -> Result<Option<Arc<DesignPoint>>, SynthesisError> {
        let point = self.raw_point_at(design, fingerprint, vdd, lineage)?;
        Ok(self.within_budget(point))
    }

    /// Fetches (or computes and memoizes) the full evaluation of a design at
    /// one supply level, *without* applying the ENC budget — this is what
    /// makes the entry reusable by runs at other laxity factors.
    fn raw_point_at(
        &self,
        design: &RtlDesign,
        fingerprint: DesignFingerprint,
        vdd: f64,
        lineage: Option<&MoveLineage<'_>>,
    ) -> Result<Arc<DesignPoint>, SynthesisError> {
        let backend = self
            .backend()
            .expect("raw_point_at is only reachable with a session");
        let key = PointKey::new(self.workload, fingerprint, vdd);
        if let Some(cached) = backend.lookup_point(&key) {
            return Ok(cached);
        }
        let context = self.context_for(design, fingerprint, lineage);
        let schedule = self.schedule_with_context(&context, vdd, lineage)?;
        // The full point (power at both supplies, area, design clone) is
        // built even when this evaluator's budget will reject it: a budget
        // check here would make the entry depend on the laxity factor and
        // kill cross-laxity sharing. The extra arithmetic is small next to
        // the scheduling pass above, and a run at a looser budget gets the
        // finished point for free.
        let point = Arc::new(self.point_from_schedule(&context, design, vdd, schedule));
        #[cfg(feature = "verify")]
        self.audit_point(&context, design, Some(fingerprint), &point)?;
        backend.store_point(key, point.clone());
        Ok(point)
    }

    /// Static invariant audit of a freshly produced design point (the
    /// `verify` cargo feature; see [`VerifyLevel`](crate::VerifyLevel)).
    /// `fingerprint` is the possibly XOR-patched digest the point is keyed
    /// by, when one exists — auditing it catches a patch that diverged from
    /// a recompute.
    #[cfg(feature = "verify")]
    fn audit_point(
        &self,
        context: &DesignContext,
        design: &RtlDesign,
        fingerprint: Option<DesignFingerprint>,
        point: &DesignPoint,
    ) -> Result<(), SynthesisError> {
        if self.config.engine.verify == crate::VerifyLevel::Off {
            return Ok(());
        }
        let mut violations = impact_verify::verify_design(self.cdfg, design);
        if let Some(expected) = fingerprint {
            violations.extend(impact_verify::verify_fingerprint(design, expected));
        }
        violations.extend(impact_verify::verify_mux_sites(
            self.cdfg,
            design,
            &context.sites,
        ));
        let factor = self.library.vdd().delay_factor(point.vdd);
        let problem = self.problem_for(context, factor);
        violations.extend(impact_verify::verify_schedule(
            &problem,
            &point.schedule,
            None,
        ));
        if violations.is_empty() {
            Ok(())
        } else {
            Err(SynthesisError::Verification(
                violations.iter().map(ToString::to_string).collect(),
            ))
        }
    }

    /// Whole-session cache-coherence audit (the `verify` cargo feature; run
    /// by the engine at [`VerifyLevel::Full`](crate::VerifyLevel)).
    #[cfg(feature = "verify")]
    pub(crate) fn audit_session(&self) -> Result<(), SynthesisError> {
        let Some(session) = &self.session else {
            return Ok(());
        };
        let violations = crate::verify::audit_session(session);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(SynthesisError::Verification(
                violations.iter().map(ToString::to_string).collect(),
            ))
        }
    }

    /// Full static audit of a finished synthesis outcome, as data: CDFG
    /// well-formedness, design legality, fingerprint recompute, mux-site
    /// consistency, and the final schedule against the scheduling problem
    /// rebuilt at the selected supply — including the ENC budget the run was
    /// constrained to. Pure: returns the findings instead of failing, so
    /// drivers (the `impact-verify` binary, the true-negative tests) can
    /// report them. Runs regardless of [`VerifyLevel`](crate::VerifyLevel).
    #[cfg(feature = "verify")]
    pub fn audit_outcome(
        &self,
        outcome: &crate::SynthesisOutcome,
    ) -> Vec<impact_verify::Violation> {
        let design = &outcome.design;
        let mut violations = impact_verify::verify_cdfg(self.cdfg);
        violations.extend(impact_verify::verify_design(self.cdfg, design));
        violations.extend(impact_verify::verify_fingerprint(
            design,
            design.fingerprint(),
        ));
        let context = self.context_for(design, design.fingerprint(), None);
        violations.extend(impact_verify::verify_mux_sites(
            self.cdfg,
            design,
            &context.sites,
        ));
        let factor = self.library.vdd().delay_factor(outcome.report.vdd);
        let problem = self.problem_for(&context, factor);
        violations.extend(impact_verify::verify_schedule(
            &problem,
            &outcome.schedule,
            Some(outcome.report.enc_limit),
        ));
        violations
    }

    /// Full static audit of one evaluated design point, as data: design
    /// legality, fingerprint recompute, mux-site consistency, and the
    /// point's schedule against the scheduling problem rebuilt at the
    /// point's supply — including this evaluator's ENC budget. The
    /// Pareto-front gates of `search_bench` run every reported front member
    /// through this. Pure and independent of
    /// [`VerifyLevel`](crate::VerifyLevel), like [`Self::audit_outcome`].
    #[cfg(feature = "verify")]
    pub fn audit_design_point(&self, point: &DesignPoint) -> Vec<impact_verify::Violation> {
        let design = &point.design;
        let mut violations = impact_verify::verify_design(self.cdfg, design);
        violations.extend(impact_verify::verify_fingerprint(
            design,
            design.fingerprint(),
        ));
        let context = self.context_for(design, design.fingerprint(), None);
        violations.extend(impact_verify::verify_mux_sites(
            self.cdfg,
            design,
            &context.sites,
        ));
        let factor = self.library.vdd().delay_factor(point.vdd);
        let problem = self.problem_for(&context, factor);
        violations.extend(impact_verify::verify_schedule(
            &problem,
            &point.schedule,
            Some(self.enc_limit),
        ));
        violations
    }

    /// This evaluator's ENC-budget filter: the read-time counterpart of the
    /// feasibility check the uncached path applies at computation time.
    fn within_budget(&self, point: Arc<DesignPoint>) -> Option<Arc<DesignPoint>> {
        if point.enc() > self.enc_limit + ENC_EPS {
            None
        } else {
            Some(point)
        }
    }

    /// The per-level evaluation of the uncached path: schedule from the
    /// context's base delays, check the ENC budget, then derive power and
    /// area from the context's supply-independent profile (pure arithmetic
    /// per level).
    fn evaluate_with_context(
        &self,
        context: &DesignContext,
        design: &RtlDesign,
        vdd: f64,
    ) -> Result<Option<DesignPoint>, SynthesisError> {
        let schedule = self.schedule_with_context(context, vdd, None)?;
        if schedule.enc > self.enc_limit + ENC_EPS {
            return Ok(None);
        }
        let point = self.point_from_schedule(context, design, vdd, schedule);
        #[cfg(feature = "verify")]
        self.audit_point(context, design, None, &point)?;
        Ok(Some(point))
    }

    /// Derives the full design point from a schedule: power at the probed and
    /// the reference supply plus area, all from the context's
    /// supply-independent profile.
    fn point_from_schedule(
        &self,
        context: &DesignContext,
        design: &RtlDesign,
        vdd: f64,
        schedule: Arc<SchedulingResult>,
    ) -> DesignPoint {
        let estimator = PowerEstimator::new(&self.library, self.config.power.clone().at_vdd(vdd));
        let power = estimator.estimate_profiled(&context.profile, &schedule);
        let area = estimator.area_profiled(&context.profile, &schedule);
        let power_at_reference = if (vdd - VDD_REFERENCE).abs() < 1e-9 {
            power
        } else {
            let ref_estimator = PowerEstimator::new(
                &self.library,
                self.config.power.clone().at_vdd(VDD_REFERENCE),
            );
            ref_estimator.estimate_profiled(&context.profile, &schedule)
        };
        DesignPoint {
            design: design.clone(),
            schedule,
            vdd,
            power,
            power_at_reference,
            area,
        }
    }

    /// Fetches (or builds and memoizes) the reusable evaluation context of a
    /// design. With a lineage and delta patching enabled, a cache miss is
    /// served by patching the parent's context instead of rebuilding.
    fn context_for(
        &self,
        design: &RtlDesign,
        fingerprint: DesignFingerprint,
        lineage: Option<&MoveLineage<'_>>,
    ) -> Arc<DesignContext> {
        let Some(backend) = self.backend() else {
            return Arc::new(self.build_context(design));
        };
        let key = ContextKey::new(self.workload, fingerprint);
        if let Some(context) = backend.lookup_context(&key) {
            return context;
        }
        let context = match lineage.filter(|_| self.config.engine.delta_patching) {
            Some(lineage) => {
                let parent = self.context_for(lineage.parent, lineage.parent_fingerprint, None);
                Arc::new(self.patch_context(&parent, lineage.parent, design, lineage.delta))
            }
            None => Arc::new(self.build_context(design)),
        };
        backend.store_context(key, context.clone());
        context
    }

    /// Per-unit trace statistics (memoized by content when a session is
    /// active): mean input activity and activations per pass.
    fn fu_stat_values(
        &self,
        rt: &RtTraces<'_>,
        design: &RtlDesign,
        fu: FuId,
        unit: &FunctionalUnit,
    ) -> (f64, f64) {
        let stats = match self.backend() {
            Some(backend) => {
                let key = FuStatsKey::of(self.workload, design, fu, unit.width);
                match backend.lookup_fu(&key) {
                    Some(stats) => stats,
                    None => {
                        let stats = rt.fu_stats(fu);
                        backend.store_fu(key, stats);
                        stats
                    }
                }
            }
            None => rt.fu_stats(fu),
        };
        (stats.input_activity, stats.activations_per_pass)
    }

    /// Per-register trace statistics (memoized by content when a session is
    /// active): mean per-write activity and writes per pass.
    fn reg_stat_values(&self, rt: &RtTraces<'_>, reg: RegId, register: &Register) -> (f64, f64) {
        let stats = match self.backend() {
            Some(backend) => {
                let key = RegStatsKey::of(self.workload, &register.variables, register.width);
                match backend.lookup_reg(&key) {
                    Some(stats) => stats,
                    None => {
                        let stats = rt.register_stats(reg);
                        backend.store_reg(key, stats);
                        stats
                    }
                }
            }
            None => rt.register_stats(reg),
        };
        (stats.activity, stats.writes_per_pass)
    }

    /// The design's mux sites with fan-in ≥ 2 in enumeration order — the
    /// only sites that contribute delays, power or area.
    fn candidate_sites(&self, design: &RtlDesign) -> Vec<MuxSite> {
        design
            .mux_sites(self.cdfg)
            .into_iter()
            .filter(|site| site.fan_in() >= 2)
            .collect()
    }

    /// Depth of every source in a site's tree under the given construction.
    /// Restructured trees use the memoized activity statistics; balanced
    /// trees depend only on the fan-in, so no trace statistics are needed.
    fn site_depths(
        &self,
        rt: &RtTraces<'_>,
        design: &RtlDesign,
        site: &MuxSite,
        restructured: bool,
    ) -> Vec<usize> {
        if restructured {
            self.mux_entry(rt, design, site, true).depths
        } else {
            let tree = MuxTree::balanced(
                site.sources
                    .iter()
                    .map(|_| impact_rtl::MuxSource::new("s", 0.0, 0.0))
                    .collect::<Vec<_>>(),
            );
            (0..site.sources.len())
                .map(|i| tree.depth_of(i).unwrap_or(0))
                .collect()
        }
    }

    /// Effective per-node delays at delay factor 1.0 from the context
    /// skeleton: module delays plus the mux stages each operand traverses,
    /// added in site-enumeration order.
    fn delays_from_sites(
        &self,
        design: &RtlDesign,
        sites: &[MuxSite],
        depths: &[Vec<usize>],
    ) -> Vec<f64> {
        let mut delays = design.node_module_delays(self.cdfg, &self.library);
        let mux_delay = self.library.mux2().delay_ns;
        for (site, depth_of) in sites.iter().zip(depths) {
            for (index, source) in site.sources.iter().enumerate() {
                let extra = depth_of[index] as f64 * mux_delay;
                for &op in &source.ops {
                    delays[op.index()] += extra;
                }
            }
        }
        delays
    }

    /// Builds the evaluation context from scratch: enumerates the design's
    /// mux sites once and derives base delays, the scheduler binding, the
    /// supply-independent power profile and the patchable skeleton (resource
    /// ids, sites, tree depths) from that single enumeration. With a
    /// session, trace statistics are memoized by content, so contexts of
    /// sibling candidate designs share almost all of the underlying trace
    /// traversals; without one no keys are even constructed — the
    /// brute-force baseline pays no cache overhead.
    fn build_context(&self, design: &RtlDesign) -> DesignContext {
        let rt = RtTraces::new(self.cdfg, design, self.trace);
        let sites = self.candidate_sites(design);
        let site_restructured: Vec<bool> = sites
            .iter()
            .map(|site| design.is_restructured(site.sink))
            .collect();
        let site_depths: Vec<Vec<usize>> = sites
            .iter()
            .zip(&site_restructured)
            .map(|(site, &restructured)| self.site_depths(&rt, design, site, restructured))
            .collect();
        let base_delays = self.delays_from_sites(design, &sites, &site_depths);
        let profile = PowerProfile::assemble_with_sites(
            &self.library,
            design,
            &sites,
            |fu, unit| self.fu_stat_values(&rt, design, fu, unit),
            |reg, register| self.reg_stat_values(&rt, reg, register),
            |site, restructured| {
                let entry = self.mux_entry(&rt, design, site, restructured);
                (entry.tree_activity, entry.selections_per_pass)
            },
        );
        DesignContext {
            base_delays,
            binding: design.scheduler_binding(),
            profile,
            fu_ids: design.functional_units().map(|(id, _)| id).collect(),
            reg_ids: design.registers().map(|(id, _)| id).collect(),
            sites,
            site_restructured,
            site_depths,
            site_index: std::sync::OnceLock::new(),
        }
    }

    /// Derives a candidate's evaluation context from its parent's by cloning
    /// only the entries the move touched. Bit-identical to
    /// [`Self::build_context`] on the candidate: untouched entries are pure
    /// values copied verbatim, touched entries are recomputed through the
    /// exact same code paths (and the same memoized statistics) the full
    /// rebuild uses, and per-node delay sums are replayed in the same
    /// site-enumeration order.
    fn patch_context(
        &self,
        parent: &DesignContext,
        parent_design: &RtlDesign,
        design: &RtlDesign,
        delta: &DesignDelta,
    ) -> DesignContext {
        let rt = RtTraces::new(self.cdfg, design, self.trace);

        // Units whose evaluation-relevant content changed: touched slots
        // (module, width, removal, creation) plus any unit that gained or
        // lost operations — a rebinding changes the unit's merged trace even
        // when its slot content is untouched (a split's source unit).
        // Registers always appear as touched slots, because a register's
        // slot content includes its variable list.
        let mut touched_fus: HashSet<FuId> = delta.touched_fus().collect();
        for &(_, before, after) in &delta.op_bindings {
            touched_fus.extend(before);
            touched_fus.extend(after);
        }
        let touched_regs: HashSet<RegId> = delta.touched_registers().collect();

        // Candidate skeleton and the site-level diff: a candidate site
        // reuses a parent site's depths/profile entry iff the parent had a
        // site at the same sink with identical sources, width and tree
        // construction, *and* none of its sources reads a touched resource —
        // a source's signal key survives a move (it carries ids), but the
        // statistics behind it follow the resource's content (a merged
        // register switches differently even though its id is unchanged).
        let sites = self.candidate_sites(design);
        let site_restructured: Vec<bool> = sites
            .iter()
            .map(|site| design.is_restructured(site.sink))
            .collect();
        let parent_site_index = parent.site_index();
        let sources_untouched = |site: &MuxSite| {
            site.sources.iter().all(|source| match source.key {
                impact_rtl::SignalKey::Register(reg) => !touched_regs.contains(&reg),
                impact_rtl::SignalKey::FuOutput(fu) => !touched_fus.contains(&fu),
                impact_rtl::SignalKey::Constant(_) => true,
            })
        };
        let reused_parent_site: Vec<Option<usize>> = sites
            .iter()
            .zip(&site_restructured)
            .map(|(site, &restructured)| {
                parent_site_index.get(&site.sink).copied().filter(|&pi| {
                    parent.sites[pi] == *site
                        && parent.site_restructured[pi] == restructured
                        && sources_untouched(site)
                })
            })
            .collect();
        let site_depths: Vec<Vec<usize>> = sites
            .iter()
            .zip(&site_restructured)
            .zip(&reused_parent_site)
            .map(|((site, &restructured), reused)| match reused {
                Some(pi) => parent.site_depths[*pi].clone(),
                None => self.site_depths(&rt, design, site, restructured),
            })
            .collect();

        // Nodes whose base delay may differ from the parent's: nodes whose
        // binding changed, nodes on a touched unit (module or width change),
        // and nodes routed through any site that changed on either side.
        let mut touched_node = vec![false; self.cdfg.node_count()];
        for &(node, _, _) in &delta.op_bindings {
            touched_node[node.index()] = true;
        }
        for &fu in &touched_fus {
            for op in parent_design.ops_on(fu) {
                touched_node[op.index()] = true;
            }
            for op in design.ops_on(fu) {
                touched_node[op.index()] = true;
            }
        }
        let reused_sites: HashSet<usize> = reused_parent_site.iter().flatten().copied().collect();
        for (pi, site) in parent.sites.iter().enumerate() {
            if !reused_sites.contains(&pi) {
                for source in &site.sources {
                    for &op in &source.ops {
                        touched_node[op.index()] = true;
                    }
                }
            }
        }
        for (site, reused) in sites.iter().zip(&reused_parent_site) {
            if reused.is_none() {
                for source in &site.sources {
                    for &op in &source.ops {
                        touched_node[op.index()] = true;
                    }
                }
            }
        }

        // Base delays: untouched nodes keep the parent's value; touched
        // nodes are recomputed from scratch in fresh-build order (module
        // delay, then site extras in enumeration order).
        let mut base_delays = parent.base_delays.clone();
        let mux_delay = self.library.mux2().delay_ns;
        for (index, touched) in touched_node.iter().enumerate() {
            if *touched {
                base_delays[index] =
                    design.node_module_delay(self.cdfg, &self.library, NodeId::new(index));
            }
        }
        for (site, depth_of) in sites.iter().zip(&site_depths) {
            for (index, source) in site.sources.iter().enumerate() {
                let extra = depth_of[index] as f64 * mux_delay;
                for &op in &source.ops {
                    if touched_node[op.index()] {
                        base_delays[op.index()] += extra;
                    }
                }
            }
        }

        // Scheduler binding: patched entry-wise from the delta.
        let mut binding = parent.binding.clone();
        for &(node, _, after) in &delta.op_bindings {
            binding[node.index()] = after.map(FuId::index);
        }

        // Power profile: the assembly skeleton comes from the candidate, but
        // the statistics closures serve untouched resources from the
        // parent's entries (stored activities are already floored, and the
        // floor is idempotent) and recompute touched ones through the
        // memoized statistics.
        // `assemble_with_sites` visits `sites` in order, one mux-stats call
        // per site (every candidate site has fan-in >= 2), so the site's
        // position is a running counter — no per-patch index map.
        let next_site = std::cell::Cell::new(0usize);
        let profile = PowerProfile::assemble_with_sites(
            &self.library,
            design,
            &sites,
            |fu, unit| match parent.fu_ids.binary_search(&fu) {
                Ok(pos) if !touched_fus.contains(&fu) => {
                    let entry = &parent.profile.fus[pos];
                    (entry.activity, entry.activations_per_pass)
                }
                _ => self.fu_stat_values(&rt, design, fu, unit),
            },
            |reg, register| match parent.reg_ids.binary_search(&reg) {
                Ok(pos) if !touched_regs.contains(&reg) => {
                    let entry = &parent.profile.regs[pos];
                    (entry.activity, entry.writes_per_pass)
                }
                _ => self.reg_stat_values(&rt, reg, register),
            },
            |site, restructured| {
                let index = next_site.get();
                next_site.set(index + 1);
                debug_assert_eq!(sites[index].sink, site.sink, "sites visited in order");
                match reused_parent_site[index] {
                    Some(pi) => {
                        let entry = &parent.profile.muxes[pi];
                        (entry.tree_activity, entry.selections_per_pass)
                    }
                    None => {
                        let entry = self.mux_entry(&rt, design, site, restructured);
                        (entry.tree_activity, entry.selections_per_pass)
                    }
                }
            },
        );
        DesignContext {
            base_delays,
            binding,
            profile,
            fu_ids: design.functional_units().map(|(id, _)| id).collect(),
            reg_ids: design.registers().map(|(id, _)| id).collect(),
            sites,
            site_restructured,
            site_depths,
            site_index: std::sync::OnceLock::new(),
        }
    }

    /// Memoized statistics of one mux site (tree activity, source depths,
    /// selection rate) for the given tree construction.
    fn mux_entry(
        &self,
        rt: &RtTraces<'_>,
        design: &RtlDesign,
        site: &MuxSite,
        restructured: bool,
    ) -> MuxEntry {
        let Some(backend) = self.backend() else {
            return compute_mux_entry(rt, site, restructured);
        };
        let key = MuxStatsKey::of(self.workload, design, site, restructured);
        if let Some(entry) = backend.lookup_mux(&key) {
            return entry;
        }
        let entry = compute_mux_entry(rt, site, restructured);
        backend.store_mux(key, entry.clone());
        entry
    }

    /// The scheduling problem of a context at one supply level: base delays
    /// scaled by the supply-dependent factor, the context's binding and the
    /// run's Wavesched configuration.
    fn problem_for(&self, context: &DesignContext, factor: f64) -> SchedulingProblem<'a> {
        SchedulingProblem {
            cdfg: self.cdfg,
            node_delays: context.base_delays.iter().map(|d| d * factor).collect(),
            node_fu: context.binding.clone(),
            profile: self.trace.profile(),
            config: ScheduleConfig::wavesched().with_clock(self.config.clock_ns),
        }
    }

    /// Schedules from a prebuilt context: base delays are scaled by the
    /// supply-dependent factor, so no trace or mux analysis happens per
    /// level. With schedule memoization enabled, the result is shared
    /// through the session by a `(delays, binding, clock)` digest, so two
    /// designs differing only in power-irrelevant ways (and any number of
    /// laxity factors) schedule once.
    ///
    /// On a memo miss with schedule repair enabled, the schedule is composed
    /// from the session's per-block layer — and when `lineage` (the move's
    /// parentage) is given and the parent's schedule at this level is
    /// cached, untouched blocks are spliced from it directly
    /// ([`impact_sched::repair_with_source`]), so only the blocks the move
    /// perturbed are list-scheduled. The parent's context is fetched only on
    /// that miss path (a cache hit — it was built when the parent was
    /// evaluated), never on a memo hit. Every path is bit-identical to the
    /// full reschedule
    /// ([`EngineConfig::full_reschedule`](crate::EngineConfig) keeps that
    /// oracle selectable).
    fn schedule_with_context(
        &self,
        context: &DesignContext,
        vdd: f64,
        lineage: Option<&MoveLineage<'_>>,
    ) -> Result<Arc<SchedulingResult>, SynthesisError> {
        let factor = self.library.vdd().delay_factor(vdd);
        let engine = &self.config.engine;
        let Some(backend) = self.backend() else {
            let problem = self.problem_for(context, factor);
            return WaveScheduler::new()
                .schedule(&problem)
                .map(Arc::new)
                .map_err(SynthesisError::from);
        };
        // The memo key is digested straight from the context (streamed), so
        // a hit never materializes the scheduling problem's vectors.
        let memo_key = engine.schedule_memo.then(|| {
            let config = ScheduleConfig::wavesched().with_clock(self.config.clock_ns);
            ScheduleKey::new(
                self.workload,
                impact_sched::problem_digest(
                    &config,
                    context.base_delays.iter().map(|d| d * factor),
                    context.binding.iter().copied(),
                ),
            )
        });
        if let Some(key) = &memo_key {
            if let Some(cached) = backend.lookup_schedule(key) {
                return Ok(cached);
            }
        }
        let problem = self.problem_for(context, factor);
        let result = if engine.schedule_repair {
            let mut blocks = SessionBlocks {
                backend: &**backend,
                workload: self.workload,
            };
            let repaired = lineage.and_then(|lineage| {
                // The parent's schedule key and the touched-node set come
                // straight from the cached context — the parent problem is
                // never materialized. `problem_digest` over the scaled
                // delays matches `SchedulingProblem::digest` bit for bit,
                // and the configs are equal by construction.
                let parent_context =
                    self.context_for(lineage.parent, lineage.parent_fingerprint, None);
                let parent_key = ScheduleKey::new(
                    self.workload,
                    impact_sched::problem_digest(
                        &problem.config,
                        parent_context.base_delays.iter().map(|d| d * factor),
                        parent_context.binding.iter().copied(),
                    ),
                );
                let parent_schedule = backend.lookup_schedule(&parent_key)?;
                let touched = (0..problem.node_delays.len())
                    .map(|i| {
                        parent_context
                            .base_delays
                            .get(i)
                            .map(|d| (d * factor).to_bits())
                            != Some(problem.node_delays[i].to_bits())
                            || parent_context.binding.get(i).copied() != Some(problem.node_fu[i])
                    })
                    .collect();
                let delta = ScheduleDeltaProblem {
                    problem: &problem,
                    touched,
                };
                Some(impact_sched::repair_with_source(
                    &parent_schedule,
                    &delta,
                    &mut blocks,
                ))
            });
            match repaired {
                Some(result) => result.map_err(SynthesisError::from)?,
                None => {
                    impact_sched::compose(&problem, &mut blocks).map_err(SynthesisError::from)?
                }
            }
        } else {
            WaveScheduler::new()
                .schedule(&problem)
                .map_err(SynthesisError::from)?
        };
        let result = Arc::new(result);
        if let Some(key) = memo_key {
            backend.store_schedule(key, result.clone());
        }
        Ok(result)
    }

    /// Schedules a design at the given supply voltage with the Wavesched
    /// scheduler, using effective per-node delays that include module delay,
    /// interconnect (mux-tree) delay and supply-dependent slowdown. Builds
    /// only what scheduling needs (no power profile).
    fn schedule(&self, design: &RtlDesign, vdd: f64) -> Result<SchedulingResult, SynthesisError> {
        let rt = RtTraces::new(self.cdfg, design, self.trace);
        let factor = self.library.vdd().delay_factor(vdd);
        let node_delays = self
            .base_delays(design, &rt)
            .into_iter()
            .map(|d| d * factor)
            .collect();
        let problem = SchedulingProblem {
            cdfg: self.cdfg,
            node_delays,
            node_fu: design.scheduler_binding(),
            profile: self.trace.profile(),
            config: ScheduleConfig::wavesched().with_clock(self.config.clock_ns),
        };
        WaveScheduler::new()
            .schedule(&problem)
            .map_err(SynthesisError::from)
    }

    /// Effective per-node delays at delay factor 1.0: module delay plus the
    /// mux stages each operand traverses. Restructured trees use each
    /// operand's actual depth in the activity-probability-ordered tree, which
    /// is how restructuring can shorten the critical path of probable signals
    /// (the Figure 9/10 example); balanced trees depend only on the fan-in,
    /// so their depths need no trace statistics.
    fn base_delays(&self, design: &RtlDesign, rt: &RtTraces<'_>) -> Vec<f64> {
        let sites = self.candidate_sites(design);
        let depths: Vec<Vec<usize>> = sites
            .iter()
            .map(|site| self.site_depths(rt, design, site, design.is_restructured(site.sink)))
            .collect();
        self.delays_from_sites(design, &sites, &depths)
    }

    /// Effective delay of every node at the given supply-dependent factor.
    pub fn effective_node_delays(&self, design: &RtlDesign, delay_factor: f64) -> Vec<f64> {
        let rt = RtTraces::new(self.cdfg, design, self.trace);
        let mut delays = self.base_delays(design, &rt);
        for d in delays.iter_mut() {
            *d *= delay_factor;
        }
        delays
    }
}

/// [`BlockSource`] over the session's shared block-schedule layer: blocks
/// are fetched (or list-scheduled and stored) by `(workload, block digest)`,
/// so repaired and fully composed schedules share per-block entries across
/// designs, supply levels and sweep runs.
struct SessionBlocks<'b> {
    backend: &'b dyn CacheBackend,
    workload: WorkloadId,
}

impl BlockSource for SessionBlocks<'_> {
    fn block(
        &mut self,
        problem: &SchedulingProblem<'_>,
        _index: usize,
        nodes: &[NodeId],
    ) -> Result<(u128, Arc<BlockSchedule>), impact_sched::SchedError> {
        let digest = impact_sched::block_digest(problem, nodes);
        let key = BlockKey::new(self.workload, digest);
        if let Some(block) = self.backend.lookup_block(&key) {
            return Ok((digest, block));
        }
        let block = Arc::new(impact_sched::schedule_block(problem, nodes)?);
        self.backend.store_block(key, block.clone());
        Ok((digest, block))
    }
}

/// Content digest of the evaluation workload: the trace (which embeds the
/// CDFG's dynamic behavior) plus the technology parameters shared by every
/// design evaluated under it. The laxity factor, optimization mode and
/// search-effort knobs are deliberately excluded — they steer the *search*,
/// not the value of any cached entry — which is what lets one session serve a
/// whole multi-laxity, multi-mode sweep.
fn workload_id(cdfg: &Cdfg, trace: &ExecutionTrace, config: &SynthesisConfig) -> WorkloadId {
    let mut hasher = FingerprintHasher::new();
    hasher.write_tag(0x5E);
    hasher.write_u128(impact_trace::workload_digest(cdfg, trace));
    hasher.write_f64(config.clock_ns);
    config.power.fingerprint_into(&mut hasher);
    WorkloadId(hasher.finish().as_u128())
}

/// Statistics of one mux site: the tree's switching activity, every source's
/// depth in the tree, and the selection rate.
fn compute_mux_entry(rt: &RtTraces<'_>, site: &MuxSite, restructured: bool) -> MuxEntry {
    let sources = rt.mux_source_stats(site);
    let tree = if restructured {
        MuxTree::huffman(sources)
    } else {
        MuxTree::balanced(sources)
    };
    MuxEntry {
        tree_activity: tree.switching_activity(),
        depths: (0..site.sources.len())
            .map(|i| tree.depth_of(i).unwrap_or(0))
            .collect(),
        selections_per_pass: rt.mux_selections_per_pass(site),
    }
}

/// Binary search for the lowest feasible supply on the discrete grid,
/// tracking the lowest feasible *probed* level explicitly. ENC grows
/// monotonically as the supply (and hence speed) drops, so the search
/// converges on the lowest feasible level; the explicit tracking guarantees
/// the returned point is exactly the best feasible probe even if a probe
/// behaves non-monotonically, instead of silently returning a stale
/// higher-Vdd point.
///
/// `reference` is the known-feasible point at the reference supply and stands
/// in for the top grid level (on the standard grid they coincide).
pub(crate) fn lowest_feasible_point<E>(
    levels: &[f64],
    reference: Arc<DesignPoint>,
    mut probe: impl FnMut(f64) -> Result<Option<Arc<DesignPoint>>, E>,
) -> Result<Arc<DesignPoint>, E> {
    let mut lowest: (usize, Arc<DesignPoint>) = (levels.len() - 1, reference);
    let (mut lo, mut hi) = (0usize, levels.len() - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match probe(levels[mid])? {
            Some(point) => {
                hi = mid;
                if mid < lowest.0 {
                    lowest = (mid, point);
                }
            }
            None => lo = mid + 1,
        }
    }
    // The top grid level was never probed directly (the reference point
    // stands in for it). If the search ended there and the reference supply
    // is not itself the top grid level, probe it once; when that probe is
    // infeasible the known-feasible reference point is kept — never a stale
    // mid-search point.
    if lowest.0 == levels.len() - 1 && (lowest.1.vdd - levels[lowest.0]).abs() > 1e-9 {
        if let Some(point) = probe(levels[lowest.0])? {
            lowest.1 = point;
        }
    }
    Ok(lowest.1)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;

    fn gcd_setup(laxity: f64) -> (Cdfg, ExecutionTrace, SynthesisConfig) {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let inputs = bench.input_sequences(16, 3);
        let trace = simulate(&cdfg, &inputs).unwrap();
        (cdfg, trace, SynthesisConfig::power_optimized(laxity))
    }

    #[test]
    fn enc_budget_scales_with_laxity() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        assert!(evaluator.enc_min() > 0.0);
        assert!((evaluator.enc_limit() - 2.0 * evaluator.enc_min()).abs() < 1e-9);
    }

    #[test]
    fn laxity_below_one_is_rejected() {
        let (cdfg, trace, _) = gcd_setup(2.0);
        let err = Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(0.8)).unwrap_err();
        assert!(matches!(err, SynthesisError::InfeasibleLaxity { .. }));
    }

    #[test]
    fn initial_point_is_feasible_and_at_reduced_vdd_when_laxity_allows() {
        let (cdfg, trace, config) = gcd_setup(2.5);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let point = evaluator.initial_point().unwrap();
        assert!(point.enc() <= evaluator.enc_limit() + ENC_EPS);
        assert!(
            point.vdd < VDD_REFERENCE,
            "slack should be converted into a lower supply"
        );
        assert!(point.power.total_mw() < point.power_at_reference.total_mw());
    }

    #[test]
    fn laxity_one_keeps_the_reference_supply() {
        let (cdfg, trace, _) = gcd_setup(2.0);
        let evaluator =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(1.0)).unwrap();
        let point = evaluator.initial_point().unwrap();
        // With no slack the supply can barely move; it must stay close to 5 V.
        assert!(
            point.vdd > 4.0,
            "vdd {} should stay near the reference",
            point.vdd
        );
    }

    #[test]
    fn infeasible_designs_evaluate_to_none() {
        let (cdfg, trace, config) = gcd_setup(1.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        // Make the design much slower than the fully parallel one: share both
        // subtractors and put ripple adders on them.
        let mut design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let ripple = evaluator.library().variant_by_name("ripple_adder").unwrap();
        design
            .substitute_module(evaluator.library(), adders[0], ripple)
            .unwrap();
        // At laxity 1.0 the budget equals the fastest schedule, so this must
        // either be infeasible or cost strictly more cycles at 5 V.
        match evaluator.evaluate(&design).unwrap() {
            None => {}
            Some(point) => assert!(point.enc() <= evaluator.enc_limit() + ENC_EPS),
        }
    }

    #[test]
    fn effective_delays_grow_when_the_supply_drops() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let at_5v = evaluator.effective_node_delays(&design, 1.0);
        let slow = evaluator.effective_node_delays(&design, 2.0);
        for (a, b) in at_5v.iter().zip(&slow) {
            assert!(b >= a);
        }
    }

    /// A template point with its supply stamped, for driving the search core
    /// with synthetic feasibility patterns.
    fn stamped(template: &DesignPoint, vdd: f64) -> Arc<DesignPoint> {
        let mut point = template.clone();
        point.vdd = vdd;
        Arc::new(point)
    }

    #[test]
    fn vdd_search_returns_exactly_the_lowest_feasible_probed_level() {
        // Regression for the Vdd-search bug: the search must return the
        // design point of the lowest feasible grid level it probed — never a
        // stale higher-Vdd point left over from an earlier probe.
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let template = evaluator.initial_point().unwrap();
        let levels = [1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];

        // Monotone feasibility with threshold at index 3.
        let mut probes = Vec::new();
        let reference = stamped(&template, 5.0);
        let result = lowest_feasible_point(&levels, reference, |vdd| {
            probes.push(vdd);
            Ok::<_, SynthesisError>((vdd >= 3.0 - 1e-9).then(|| stamped(&template, vdd)))
        })
        .unwrap();
        assert_eq!(result.vdd, 3.0, "lowest feasible grid level is returned");
        assert!(probes.contains(&3.0), "the returned level was probed");

        // Adversarial non-monotone feasibility: whatever the probe pattern
        // does, the returned point is the lowest feasible level that was
        // probed, with its vdd exactly on the grid.
        for feasible_mask in 0u32..128 {
            let mut feasible_probes = Vec::new();
            let result = lowest_feasible_point(&levels, stamped(&template, 5.0), |vdd| {
                let index = levels.iter().position(|&l| l == vdd).unwrap();
                let ok = feasible_mask & (1 << index) != 0 || index == levels.len() - 1;
                if ok {
                    feasible_probes.push(index);
                }
                Ok::<_, SynthesisError>(ok.then(|| stamped(&template, vdd)))
            })
            .unwrap();
            let lowest_probed = feasible_probes.iter().copied().min();
            match lowest_probed {
                Some(lowest) => assert_eq!(
                    result.vdd, levels[lowest],
                    "mask {feasible_mask:#b}: stale point returned"
                ),
                None => assert_eq!(result.vdd, 5.0, "reference point is the fallback"),
            }
        }
    }

    #[test]
    fn vdd_search_probes_the_top_grid_level_when_the_reference_is_off_grid() {
        // On a custom grid whose top level sits below the reference supply,
        // an all-infeasible search must still probe the top level once and
        // keep the known-feasible reference point if that probe fails.
        let (cdfg, trace, config) = gcd_setup(2.0);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let template = evaluator.initial_point().unwrap();
        let levels = [2.0, 3.0, 4.0];
        // Top level feasible: the search must end on it, not on the 5 V
        // reference stand-in.
        let result = lowest_feasible_point(&levels, stamped(&template, 5.0), |vdd| {
            Ok::<_, SynthesisError>((vdd >= 4.0 - 1e-9).then(|| stamped(&template, vdd)))
        })
        .unwrap();
        assert_eq!(result.vdd, 4.0);
        // Nothing feasible on the grid: the reference point survives instead
        // of a stale mid-search point.
        let result = lowest_feasible_point(&levels, stamped(&template, 5.0), |_| {
            Ok::<_, SynthesisError>(None)
        })
        .unwrap();
        assert_eq!(result.vdd, 5.0);
    }

    #[test]
    fn evaluate_matches_a_linear_scan_of_the_grid() {
        // The binary search must agree with the exhaustive reference
        // implementation: scan the grid bottom-up and take the first feasible
        // level.
        let (cdfg, trace, config) = gcd_setup(1.8);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let mut design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let searched = evaluator.evaluate(&design).unwrap().unwrap();
        let levels = evaluator.library().vdd().levels().to_vec();
        let scanned = levels
            .iter()
            .find_map(|&level| evaluator.evaluate_at_vdd(&design, level).unwrap())
            .expect("the design is feasible at the reference supply");
        assert_eq!(searched, scanned);
    }

    #[test]
    fn cached_and_uncached_evaluation_are_bit_identical() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let cached = Evaluator::new(&cdfg, &trace, config.clone()).unwrap();
        let uncached = Evaluator::new(
            &cdfg,
            &trace,
            config.with_engine(crate::EngineConfig::sequential()),
        )
        .unwrap();
        let mut design = RtlDesign::initial_parallel(&cdfg, cached.library());
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        for site in design.mux_sites(&cdfg) {
            design.set_restructured(site.sink, true);
        }
        for vdd in [5.0, 3.3, 2.1] {
            let warm = cached.evaluate_at_vdd(&design, vdd).unwrap();
            let replay = cached.evaluate_at_vdd(&design, vdd).unwrap();
            let cold = uncached.evaluate_at_vdd(&design, vdd).unwrap();
            assert_eq!(warm, replay, "cache replay must be exact");
            assert_eq!(warm, cold, "cache on/off must be bit-identical");
        }
        assert_eq!(
            cached.evaluate(&design).unwrap(),
            uncached.evaluate(&design).unwrap()
        );
        assert!(cached.cache_stats().hits > 0);
        assert_eq!(
            uncached.cache_stats().hits + uncached.cache_stats().misses,
            0
        );
    }

    #[test]
    fn evaluate_at_reference_matches_reference_power() {
        let (cdfg, trace, config) = gcd_setup(1.5);
        let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
        let design = RtlDesign::initial_parallel(&cdfg, evaluator.library());
        let point = evaluator
            .evaluate_at_vdd(&design, VDD_REFERENCE)
            .unwrap()
            .unwrap();
        assert!((point.power.total_mw() - point.power_at_reference.total_mw()).abs() < 1e-12);
        assert!(point.cost(OptimizationMode::Area) > 0.0);
        assert!(point.cost(OptimizationMode::Power) > 0.0);
    }

    #[test]
    fn a_shared_session_reuses_points_across_laxity_factors() {
        // The laxity-independent point map must serve evaluators with
        // different ENC budgets, each applying its own budget at read time.
        let (cdfg, trace, _) = gcd_setup(2.0);
        let session = SweepSession::new();
        let relaxed = Evaluator::with_session(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(2.5),
            &session,
        )
        .unwrap();
        let mut design = RtlDesign::initial_parallel(&cdfg, relaxed.library());
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let relaxed_point = relaxed.evaluate_at_vdd(&design, VDD_REFERENCE).unwrap();
        assert!(relaxed_point.is_some(), "feasible under a loose budget");

        let misses_after_relaxed = session.stats().misses;
        let tight = Evaluator::with_session(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(1.0),
            &session,
        )
        .unwrap();
        let tight_point = tight.evaluate_at_vdd(&design, VDD_REFERENCE).unwrap();
        // The shared design misses nothing new at the reference level …
        assert_eq!(
            session.stats().misses,
            misses_after_relaxed,
            "the tight-budget evaluator must hit the relaxed run's entries"
        );
        // … and cold evaluation agrees with whatever the filter decided.
        let cold = Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(1.0)).unwrap();
        assert_eq!(
            tight_point,
            cold.evaluate_at_vdd(&design, VDD_REFERENCE).unwrap()
        );

        // Full evaluations (supply search) also agree per laxity.
        let cold_relaxed =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(2.5)).unwrap();
        assert_eq!(
            relaxed.evaluate(&design).unwrap(),
            cold_relaxed.evaluate(&design).unwrap()
        );
        assert_eq!(tight.evaluate(&design).unwrap(), {
            let cold_tight =
                Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(1.0)).unwrap();
            cold_tight.evaluate(&design).unwrap()
        });
    }

    #[test]
    fn workloads_do_not_collide_across_traces_or_clocks() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let bench = impact_benchmarks::gcd();
        let other_trace = simulate(&cdfg, &bench.input_sequences(16, 4)).unwrap();
        let session = SweepSession::new();
        let a = Evaluator::with_session(&cdfg, &trace, config.clone(), &session).unwrap();
        let b = Evaluator::with_session(&cdfg, &other_trace, config.clone(), &session).unwrap();
        let c = Evaluator::with_session(&cdfg, &trace, config.clone().with_clock(25.0), &session)
            .unwrap();
        assert_ne!(
            a.workload(),
            b.workload(),
            "different inputs, different keys"
        );
        assert_ne!(
            a.workload(),
            c.workload(),
            "different clock, different keys"
        );
        // Same workload, same keys: a sibling evaluator over the same inputs.
        let d = Evaluator::with_session(&cdfg, &trace, config, &session).unwrap();
        assert_eq!(a.workload(), d.workload());
    }

    #[test]
    fn merged_shard_sessions_answer_like_a_shared_one() {
        let (cdfg, trace, config) = gcd_setup(2.0);
        let shard_a = SweepSession::new();
        let shard_b = SweepSession::new();
        let eval_a = Evaluator::with_session(&cdfg, &trace, config.clone(), &shard_a).unwrap();
        let eval_b = Evaluator::with_session(&cdfg, &trace, config.clone(), &shard_b).unwrap();
        let design_a = RtlDesign::initial_parallel(&cdfg, eval_a.library());
        let mut design_b = design_a.clone();
        let adders = design_b.units_of_class(impact_cdfg::OpClass::AddSub);
        design_b.share_fus(adders[0], adders[1]).unwrap();
        let point_a = eval_a.evaluate(&design_a).unwrap();
        let point_b = eval_b.evaluate(&design_b).unwrap();

        let merged = SweepSession::new();
        merged.merge_from(&shard_a);
        merged.merge_from(&shard_b);
        let eval_m = Evaluator::with_session(&cdfg, &trace, config, &merged).unwrap();
        let hits_before = merged.stats().hits;
        assert_eq!(eval_m.evaluate(&design_a).unwrap(), point_a);
        assert_eq!(eval_m.evaluate(&design_b).unwrap(), point_b);
        assert!(
            merged.stats().hits > hits_before,
            "merged entries must serve lookups"
        );
    }
}
