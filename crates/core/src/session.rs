//! Sweep sessions: one cache shared across many synthesis runs.
//!
//! The paper's signature experiment (Figure 13) runs the same benchmark at
//! 11 laxity points, yet almost everything evaluation computes — trace
//! statistics, per-design contexts, design points on the supply grid — is
//! laxity-independent. A [`SweepSession`] hoists the evaluation cache out of
//! the per-run [`Evaluator`](crate::Evaluator) so those values survive across
//! runs: hand one session to every run of a sweep (or to every job of a batch
//! driver) and only the first run pays the cold cost.
//!
//! Sessions are `Arc`-shared handles: cloning a session clones the handle,
//! not the store, so scoped worker threads can synthesize concurrently
//! against one cache. Independently populated sessions (e.g. shards of a
//! distributed candidate search) combine with [`SweepSession::merge_from`],
//! which is deterministic because every cache entry is a pure function of its
//! key.
//!
//! ```
//! use impact_core::{Impact, SweepSession, SynthesisConfig};
//!
//! let bench = impact_benchmarks::gcd();
//! let cdfg = bench.compile()?;
//! let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(12, 7))?;
//! let session = SweepSession::new();
//! let mut last_power = f64::INFINITY;
//! for laxity in [1.0, 2.0, 3.0] {
//!     let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
//!     let outcome = Impact::new(config).synthesize_with_session(&cdfg, &trace, &session)?;
//!     assert!(outcome.report.power_mw <= last_power + 1e-9);
//!     last_power = outcome.report.power_mw;
//! }
//! assert!(session.stats().hits > 0, "later runs reuse the earlier runs' work");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::path::Path;
use std::sync::Arc;

use crate::cache::{AbsorbStats, CacheBackend, CacheStats, InMemoryCache};
use crate::snapshot::{self, SnapshotError, SnapshotRejection, SnapshotScope};

/// A shared, mergeable evaluation-cache handle spanning synthesis runs.
///
/// Every run handed the same session (via
/// [`Impact::synthesize_with_session`](crate::Impact::synthesize_with_session)
/// or [`Evaluator::with_session`](crate::Evaluator::with_session)) reads and
/// writes one store. Results are bit-identical to independent cold runs:
/// cache keys embed the workload (CDFG, trace, technology) and the entries
/// are pure functions of their keys, so sharing changes wall-clock, never
/// outcomes.
#[derive(Clone, Debug)]
pub struct SweepSession {
    backend: Arc<dyn CacheBackend>,
}

impl SweepSession {
    /// Creates a session over a fresh in-process store.
    pub fn new() -> Self {
        Self::with_backend(Arc::new(InMemoryCache::new()))
    }

    /// Creates a session over a caller-provided backend (e.g. a custom store
    /// wrapping [`InMemoryCache`]).
    pub fn with_backend(backend: Arc<dyn CacheBackend>) -> Self {
        Self { backend }
    }

    /// The shared storage backend.
    pub fn backend(&self) -> &Arc<dyn CacheBackend> {
        &self.backend
    }

    /// Snapshot of the session's cache counters (cumulative over every run
    /// that used the session).
    pub fn stats(&self) -> CacheStats {
        self.backend.stats()
    }

    /// Merges every entry of `other` into this session and returns the merge
    /// counters (new entries absorbed vs duplicate-skipped). Deterministic:
    /// cache entries are pure functions of their keys, so overlapping keys
    /// carry interchangeable values and merge order cannot influence later
    /// lookups. `other` keeps its entries; traffic counters are not
    /// transferred.
    pub fn merge_from(&self, other: &SweepSession) -> AbsorbStats {
        self.backend.absorb(other.backend.export())
    }

    /// Serializes the session's entries into snapshot bytes (deterministic:
    /// equal contents produce identical bytes).
    pub fn save_snapshot(&self) -> Vec<u8> {
        self.backend.save_snapshot()
    }

    /// Verifies snapshot bytes under `scope` and merges the entries into the
    /// session (through the same deterministic `absorb` path shard merges
    /// use). Returns the merge counters.
    ///
    /// # Errors
    ///
    /// Returns the rejection class for stale, truncated or corrupt bytes; the
    /// session is left unchanged — a rejected load degrades to a cold start.
    pub fn load_snapshot(
        &self,
        bytes: &[u8],
        scope: SnapshotScope,
    ) -> Result<AbsorbStats, SnapshotRejection> {
        self.backend.load_snapshot(bytes, scope)
    }

    /// Writes the session's entries to a snapshot file, atomically (the bytes
    /// land in a temporary sibling renamed over the target).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        snapshot::write_snapshot_bytes(path.as_ref(), &self.save_snapshot())
    }

    /// Loads a snapshot file into the session. Returns the merge counters.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] for filesystem problems (including a missing
    /// file) and [`SnapshotError::Rejected`] for verification failures.
    pub fn load_from_file(
        &self,
        path: impl AsRef<Path>,
        scope: SnapshotScope,
    ) -> Result<AbsorbStats, SnapshotError> {
        let bytes = std::fs::read(path.as_ref())?;
        Ok(self.load_snapshot(&bytes, scope)?)
    }
}

impl Default for SweepSession {
    fn default() -> Self {
        Self::new()
    }
}
