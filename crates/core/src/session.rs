//! Sweep sessions: one cache shared across many synthesis runs.
//!
//! The paper's signature experiment (Figure 13) runs the same benchmark at
//! 11 laxity points, yet almost everything evaluation computes — trace
//! statistics, per-design contexts, design points on the supply grid — is
//! laxity-independent. A [`SweepSession`] hoists the evaluation cache out of
//! the per-run [`Evaluator`](crate::Evaluator) so those values survive across
//! runs: hand one session to every run of a sweep (or to every job of a batch
//! driver) and only the first run pays the cold cost.
//!
//! Sessions are `Arc`-shared handles: cloning a session clones the handle,
//! not the store, so scoped worker threads can synthesize concurrently
//! against one cache. Independently populated sessions (e.g. shards of a
//! distributed candidate search) combine with [`SweepSession::merge_from`],
//! which is deterministic because every cache entry is a pure function of its
//! key.
//!
//! ```
//! use impact_core::{Impact, SweepSession, SynthesisConfig};
//!
//! let bench = impact_benchmarks::gcd();
//! let cdfg = bench.compile()?;
//! let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(12, 7))?;
//! let session = SweepSession::new();
//! let mut last_power = f64::INFINITY;
//! for laxity in [1.0, 2.0, 3.0] {
//!     let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
//!     let outcome = Impact::new(config).synthesize_with_session(&cdfg, &trace, &session)?;
//!     assert!(outcome.report.power_mw <= last_power + 1e-9);
//!     last_power = outcome.report.power_mw;
//! }
//! assert!(session.stats().hits > 0, "later runs reuse the earlier runs' work");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;

use crate::cache::{CacheBackend, CacheStats, InMemoryCache};

/// A shared, mergeable evaluation-cache handle spanning synthesis runs.
///
/// Every run handed the same session (via
/// [`Impact::synthesize_with_session`](crate::Impact::synthesize_with_session)
/// or [`Evaluator::with_session`](crate::Evaluator::with_session)) reads and
/// writes one store. Results are bit-identical to independent cold runs:
/// cache keys embed the workload (CDFG, trace, technology) and the entries
/// are pure functions of their keys, so sharing changes wall-clock, never
/// outcomes.
#[derive(Clone, Debug)]
pub struct SweepSession {
    backend: Arc<dyn CacheBackend>,
}

impl SweepSession {
    /// Creates a session over a fresh in-process store.
    pub fn new() -> Self {
        Self::with_backend(Arc::new(InMemoryCache::new()))
    }

    /// Creates a session over a caller-provided backend (e.g. a custom store
    /// wrapping [`InMemoryCache`]).
    pub fn with_backend(backend: Arc<dyn CacheBackend>) -> Self {
        Self { backend }
    }

    /// The shared storage backend.
    pub fn backend(&self) -> &Arc<dyn CacheBackend> {
        &self.backend
    }

    /// Snapshot of the session's cache counters (cumulative over every run
    /// that used the session).
    pub fn stats(&self) -> CacheStats {
        self.backend.stats()
    }

    /// Merges every entry of `other` into this session. Deterministic: cache
    /// entries are pure functions of their keys, so overlapping keys carry
    /// interchangeable values and merge order cannot influence later lookups.
    /// `other` keeps its entries; traffic counters are not transferred.
    pub fn merge_from(&self, other: &SweepSession) {
        self.backend.absorb(other.backend.export());
    }
}

impl Default for SweepSession {
    fn default() -> Self {
        Self::new()
    }
}
