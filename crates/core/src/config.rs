//! Synthesis configuration.

use impact_modlib::DEFAULT_CLOCK_NS;
use impact_power::PowerConfig;

use crate::explore::ExplorerKind;

/// What the iterative improvement minimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptimizationMode {
    /// Minimize estimated average power (the IMPACT objective).
    Power,
    /// Minimize area (the baseline the paper's `A-Power` designs come from).
    Area,
}

/// How much static invariant auditing the engine performs while it runs.
///
/// Auditing is implemented by the `impact_verify` checker and only compiled
/// in when the `verify` cargo feature is enabled; without the feature every
/// level behaves like [`VerifyLevel::Off`]. Intended for debug and CI
/// builds — the checks re-verify artifacts the evaluator just produced, so
/// they cost real time on top of every cache miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VerifyLevel {
    /// No auditing (the release default).
    #[default]
    Off,
    /// Audit every freshly computed design point: design legality,
    /// fingerprint recompute and schedule legality against its problem.
    Points,
    /// [`VerifyLevel::Points`] plus a whole-session cache-coherence audit
    /// when a synthesis run finishes.
    Full,
}

/// Tuning of the incremental evaluation engine: memoization and parallel
/// candidate ranking. The default is the fully incremental engine; the
/// sequential configuration reproduces the brute-force evaluation loop
/// (every candidate rescheduled and re-profiled from scratch) and exists for
/// benchmarking and differential testing — both configurations produce
/// bit-identical synthesis results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EngineConfig {
    /// Memoize evaluated design points, per-design contexts and trace
    /// statistics by structural fingerprint.
    pub cache: bool,
    /// Rank candidate moves on scoped worker threads.
    pub parallel_ranking: bool,
    /// Worker threads used for ranking; `0` means one per available CPU.
    pub ranking_threads: usize,
    /// Cost candidates through their move's [`DesignDelta`]: the candidate's
    /// fingerprint is patched from the parent's and its evaluation context is
    /// derived from the parent's by cloning only the touched entries, instead
    /// of re-hashing and rebuilding from scratch. Requires `cache`; results
    /// are bit-identical to the full rebuild (the oracle path, kept behind
    /// this flag for differential testing).
    ///
    /// [`DesignDelta`]: impact_rtl::DesignDelta
    pub delta_patching: bool,
    /// Memoize hierarchical schedules by a `(delays, binding, clock)` digest,
    /// so two designs differing only in power-irrelevant ways (module
    /// capacitance, register grouping, probability reordering that keeps the
    /// mux depths) share one schedule across the session. Requires `cache`.
    pub schedule_memo: bool,
    /// Repair schedules block by block instead of rescheduling the whole
    /// CDFG: on a schedule-memo miss whose parent schedule is in the cache,
    /// only the blocks the move touched are list-scheduled and the rest are
    /// spliced from the parent; every block scheduled this way also flows
    /// through a shared per-block cache layer keyed by
    /// [`block_digest`](impact_sched::block_digest). Requires `cache`;
    /// results are bit-identical to a full reschedule (the oracle path, kept
    /// behind [`EngineConfig::full_reschedule`] for differential testing).
    pub schedule_repair: bool,
    /// Static invariant auditing of evaluator outputs (requires the
    /// `verify` cargo feature to have any effect).
    pub verify: VerifyLevel,
    /// Search strategy run over the probe/commit kernel (see
    /// [`ExplorerKind`]). The default, [`ExplorerKind::Greedy`], is the
    /// paper's variable-depth descent and the oracle every other strategy
    /// is pinned against.
    pub explorer: ExplorerKind,
}

impl EngineConfig {
    /// The incremental engine: caching, delta patching, schedule memoization
    /// and delta-aware schedule repair on, ranking parallelized over the
    /// available CPUs.
    pub fn incremental() -> Self {
        Self {
            cache: true,
            parallel_ranking: true,
            ranking_threads: 0,
            delta_patching: true,
            schedule_memo: true,
            schedule_repair: true,
            verify: VerifyLevel::Off,
            explorer: ExplorerKind::Greedy,
        }
    }

    /// The caching engine *without* move-delta shortcuts: every candidate's
    /// fingerprint and context are rebuilt from the whole design (the oracle
    /// path the delta engine is differentially tested against, and the
    /// behavior of the engine before delta evaluation existed).
    pub fn full_rebuild() -> Self {
        Self {
            delta_patching: false,
            schedule_memo: false,
            schedule_repair: false,
            ..Self::incremental()
        }
    }

    /// The incremental engine with schedule *repair* disabled: every
    /// schedule-memo miss pays a full hierarchical reschedule, exactly the
    /// PR 4 delta evaluator. This is the oracle the repaired path is
    /// differentially tested (and benchmarked) against.
    pub fn full_reschedule() -> Self {
        Self {
            schedule_repair: false,
            ..Self::incremental()
        }
    }

    /// The brute-force reference engine: no memoization, single-threaded
    /// ranking.
    pub fn sequential() -> Self {
        Self {
            cache: false,
            parallel_ranking: false,
            ranking_threads: 0,
            delta_patching: false,
            schedule_memo: false,
            schedule_repair: false,
            verify: VerifyLevel::Off,
            explorer: ExplorerKind::Greedy,
        }
    }

    /// Returns a copy with a different auditing level (see [`VerifyLevel`];
    /// requires the `verify` cargo feature to have any effect).
    pub fn with_verify(mut self, verify: VerifyLevel) -> Self {
        self.verify = verify;
        self
    }

    /// Returns a copy running a different search strategy (see
    /// [`ExplorerKind`]). Every strategy descends through the same
    /// probe/commit kernel, so the greedy-no-worse invariant holds under any
    /// choice.
    pub fn with_explorer(mut self, explorer: ExplorerKind) -> Self {
        self.explorer = explorer;
        self
    }

    /// Returns a copy pinned to `threads` ranking workers (`0` = one per
    /// available CPU). Shard workers use this to divide the machine between
    /// processes — N shards each ranking on every CPU would oversubscribe
    /// the cores. Ranking is deterministic under any thread count, so the
    /// pin changes wall-clock, never results.
    pub fn with_ranking_threads(mut self, threads: usize) -> Self {
        self.ranking_threads = threads;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::incremental()
    }
}

/// Knobs of one synthesis run.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthesisConfig {
    /// Optimization objective.
    pub mode: OptimizationMode,
    /// Allowed ENC as a multiple of the minimum achievable ENC (the paper's
    /// laxity factor, swept from 1.0 to 3.0 in Figure 13).
    pub laxity: f64,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Maximum number of improvement passes.
    pub max_passes: usize,
    /// Maximum number of moves per variable-depth sequence.
    pub max_sequence_length: usize,
    /// Enable the multiplexer-tree restructuring move.
    pub mux_restructuring: bool,
    /// Enable module selection/substitution moves.
    pub module_selection: bool,
    /// Enable functional-unit sharing/splitting moves.
    pub resource_sharing: bool,
    /// Enable register sharing/splitting moves.
    pub register_sharing: bool,
    /// Scale the supply voltage down into the slack left by the laxity
    /// constraint.
    pub vdd_scaling: bool,
    /// Power-estimator technology parameters.
    pub power: PowerConfig,
    /// Evaluation-engine tuning (caching, parallel ranking).
    pub engine: EngineConfig,
}

impl SynthesisConfig {
    /// Power-optimization mode with every move enabled (the `I-Power` /
    /// `I-Area` designs of the paper).
    pub fn power_optimized(laxity: f64) -> Self {
        Self {
            mode: OptimizationMode::Power,
            laxity,
            clock_ns: DEFAULT_CLOCK_NS,
            max_passes: 4,
            max_sequence_length: 6,
            mux_restructuring: true,
            module_selection: true,
            resource_sharing: true,
            register_sharing: true,
            vdd_scaling: true,
            power: PowerConfig::default(),
            engine: EngineConfig::default(),
        }
    }

    /// Area-optimization mode (the base / `A-Power` designs of the paper).
    /// Supply scaling is still applied when reporting power, but the search
    /// itself minimizes area.
    pub fn area_optimized(laxity: f64) -> Self {
        Self {
            mode: OptimizationMode::Area,
            ..Self::power_optimized(laxity)
        }
    }

    /// Disables the multiplexer-restructuring move (ablation).
    pub fn without_mux_restructuring(mut self) -> Self {
        self.mux_restructuring = false;
        self
    }

    /// Disables module selection (ablation).
    pub fn without_module_selection(mut self) -> Self {
        self.module_selection = false;
        self
    }

    /// Disables functional-unit sharing and splitting (ablation).
    pub fn without_resource_sharing(mut self) -> Self {
        self.resource_sharing = false;
        self
    }

    /// Disables register sharing and splitting (ablation).
    pub fn without_register_sharing(mut self) -> Self {
        self.register_sharing = false;
        self
    }

    /// Disables supply-voltage scaling (ablation).
    pub fn without_vdd_scaling(mut self) -> Self {
        self.vdd_scaling = false;
        self
    }

    /// Returns a copy with a different clock period.
    pub fn with_clock(mut self, clock_ns: f64) -> Self {
        self.clock_ns = clock_ns;
        self
    }

    /// Returns a copy with different search effort limits.
    pub fn with_effort(mut self, max_passes: usize, max_sequence_length: usize) -> Self {
        self.max_passes = max_passes;
        self.max_sequence_length = max_sequence_length;
        self
    }

    /// Returns a copy with a different evaluation-engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self::power_optimized(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_set_the_expected_mode() {
        assert_eq!(
            SynthesisConfig::power_optimized(2.0).mode,
            OptimizationMode::Power
        );
        assert_eq!(
            SynthesisConfig::area_optimized(2.0).mode,
            OptimizationMode::Area
        );
        assert_eq!(SynthesisConfig::default().mode, OptimizationMode::Power);
    }

    #[test]
    fn ablation_builders_toggle_single_features() {
        let c = SynthesisConfig::power_optimized(1.5)
            .without_mux_restructuring()
            .without_module_selection()
            .without_resource_sharing()
            .without_register_sharing()
            .without_vdd_scaling();
        assert!(!c.mux_restructuring);
        assert!(!c.module_selection);
        assert!(!c.resource_sharing);
        assert!(!c.register_sharing);
        assert!(!c.vdd_scaling);
        assert!(SynthesisConfig::power_optimized(1.5).mux_restructuring);
    }

    #[test]
    fn engine_presets_and_builder() {
        assert!(EngineConfig::default().cache);
        assert!(EngineConfig::default().parallel_ranking);
        assert!(EngineConfig::default().delta_patching);
        assert!(EngineConfig::default().schedule_memo);
        assert!(EngineConfig::default().schedule_repair);
        let rebuild = EngineConfig::full_rebuild();
        assert!(rebuild.cache && !rebuild.delta_patching && !rebuild.schedule_memo);
        assert!(!rebuild.schedule_repair);
        let resched = EngineConfig::full_reschedule();
        assert!(resched.cache && resched.delta_patching && resched.schedule_memo);
        assert!(!resched.schedule_repair);
        let seq = EngineConfig::sequential();
        assert!(!seq.cache && !seq.parallel_ranking);
        assert!(!seq.delta_patching && !seq.schedule_memo && !seq.schedule_repair);
        assert_eq!(seq.explorer, ExplorerKind::Greedy);
        let beam = EngineConfig::incremental().with_explorer(ExplorerKind::Beam { width: 3 });
        assert_eq!(beam.explorer, ExplorerKind::Beam { width: 3 });
        let c = SynthesisConfig::power_optimized(2.0).with_engine(seq);
        assert_eq!(c.engine, seq);
        assert_eq!(
            SynthesisConfig::power_optimized(2.0).engine,
            EngineConfig::incremental()
        );
    }

    #[test]
    fn effort_and_clock_builders() {
        let c = SynthesisConfig::power_optimized(1.0)
            .with_clock(20.0)
            .with_effort(2, 3);
        assert_eq!(c.clock_ns, 20.0);
        assert_eq!(c.max_passes, 2);
        assert_eq!(c.max_sequence_length, 3);
    }
}
