//! Cache-coherence auditing of sweep sessions and snapshots (the `verify`
//! cargo feature).
//!
//! The artifact-level rules live in [`impact_verify`]; this module adds the
//! rules that need the engine's crate-private cache keys: every
//! [`DesignPoint`](crate::DesignPoint), evaluation context and block
//! schedule in a session must be stored under a key that re-verifies
//! against its contents, and the layers must agree with each other where
//! they overlap (a context and a point of the same fingerprint describe
//! the same design; a hierarchical schedule and the block layer agree on
//! every shared digest).
//!
//! Everything here is read-only: audits take a [`CacheSnapshot`] (or a
//! [`SweepSession`], which is exported to one) and return
//! [`Violation`]s, never mutating the session.

use std::collections::HashMap;

use impact_modlib::VDD_REFERENCE;
pub use impact_verify::{
    has_errors, rules, verify_block_schedule, verify_cdfg, verify_design, verify_fingerprint,
    verify_mux_sites, verify_schedule, verify_schedule_artifact, Severity, Violation,
};

use crate::cache::{CacheSnapshot, DesignContext};
use crate::evaluate::ENC_EPS;
use crate::fingerprint::{BlockKey, WorkloadId};
use crate::session::SweepSession;
use crate::snapshot::{decode_snapshot, SnapshotScope};
use impact_rtl::DesignFingerprint;

/// Audits every cache layer of a live session. Equivalent to
/// [`audit_snapshot`] over the session's exported contents.
pub fn audit_session(session: &SweepSession) -> Vec<Violation> {
    audit_snapshot(&session.backend().export())
}

/// Decodes and audits serialized snapshot bytes. A rejected decode (bad
/// magic, version, digest or truncation) is reported as a single
/// [`rules::CACHE_SNAPSHOT`] violation.
pub fn audit_snapshot_bytes(bytes: &[u8]) -> Vec<Violation> {
    match decode_snapshot(bytes, SnapshotScope::Any) {
        Ok(snapshot) => audit_snapshot(&snapshot),
        Err(rejection) => vec![Violation::error(
            rules::CACHE_SNAPSHOT,
            "snapshot",
            format!("snapshot rejected: {rejection}"),
        )],
    }
}

/// Audits the exported contents of a cache: key ↔ content coherence for
/// design points, supply-search outcomes, contexts and block schedules,
/// plus artifact-level legality of every stored schedule.
pub fn audit_snapshot(snapshot: &CacheSnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Points of a given (workload, fingerprint), for cross-layer checks.
    let mut by_design: HashMap<(WorkloadId, DesignFingerprint), &crate::DesignPoint> =
        HashMap::new();
    for (key, point) in &snapshot.points {
        by_design.insert((key.workload, key.design), point);
    }

    for (key, point) in &snapshot.points {
        let location = format!("points[{:032x}@{}]", key.design.as_u128(), point.vdd);
        let fingerprint = point.design.fingerprint();
        if fingerprint != key.design {
            violations.push(Violation::error(
                rules::CACHE_POINT_KEY,
                location.clone(),
                format!(
                    "key fingerprint does not re-verify: design hashes to {:032x}",
                    fingerprint.as_u128()
                ),
            ));
        }
        if point.vdd.to_bits() != key.vdd_bits {
            violations.push(Violation::error(
                rules::CACHE_POINT_KEY,
                location.clone(),
                format!(
                    "stored at supply {} V but keyed by {} V",
                    point.vdd,
                    f64::from_bits(key.vdd_bits)
                ),
            ));
        }
        violations.extend(
            verify_schedule_artifact(&point.schedule)
                .into_iter()
                .map(|v| v.at(&location)),
        );
    }

    for (key, entry) in &snapshot.scaled {
        let Some(point) = entry else {
            continue;
        };
        let location = format!("scaled[{:032x}]", key.design.as_u128());
        if point.design.fingerprint() != key.design {
            violations.push(Violation::error(
                rules::CACHE_SCALED_KEY,
                location.clone(),
                "supply-search outcome belongs to a different design than its key",
            ));
        }
        let budget = f64::from_bits(key.enc_limit_bits);
        if point.enc() > budget + ENC_EPS {
            violations.push(Violation::error(
                rules::CACHE_SCALED_KEY,
                location.clone(),
                format!(
                    "stored outcome has ENC {} above the key's budget {budget}",
                    point.enc()
                ),
            ));
        }
        if !key.vdd_scaling && point.vdd != VDD_REFERENCE {
            violations.push(Violation::error(
                rules::CACHE_SCALED_KEY,
                location,
                format!(
                    "scaling-disabled outcome stored at {} V instead of the reference supply",
                    point.vdd
                ),
            ));
        }
    }

    for (key, context) in &snapshot.contexts {
        let location = format!("contexts[{:032x}]", key.design.as_u128());
        violations.extend(
            context_internal_violations(context)
                .into_iter()
                .map(|v| v.at(&location)),
        );
        if let Some(point) = by_design.get(&(key.workload, key.design)) {
            violations.extend(
                context_point_violations(context, &point.design)
                    .into_iter()
                    .map(|v| v.at(&location)),
            );
        }
    }

    for (key, result) in &snapshot.schedules {
        let location = format!("schedules[{:032x}]", key.problem);
        violations.extend(
            verify_schedule_artifact(result)
                .into_iter()
                .map(|v| v.at(&location)),
        );
        // Where the hierarchical layer and the block layer claim the same
        // digest, the stored block schedules must be identical.
        for (index, outcome) in result.blocks.iter().enumerate() {
            let block_key = BlockKey::new(key.workload, outcome.digest);
            if let Some(stored) = snapshot.block_schedules.get(&block_key) {
                if **stored != *outcome.schedule {
                    violations.push(Violation::error(
                        rules::CACHE_SCHEDULE,
                        format!("{location} · block {index}"),
                        "block layer stores a different schedule under this block's digest",
                    ));
                }
            }
        }
    }

    for (key, block) in &snapshot.block_schedules {
        let location = format!("blocks[{:032x}]", key.digest);
        violations.extend(
            verify_block_schedule(block, None)
                .into_iter()
                .map(|v| v.at(&location)),
        );
        let expected = block
            .ops
            .iter()
            .map(|op| op.finish_state + 1)
            .max()
            .unwrap_or(0);
        if block.state_count != expected {
            violations.push(Violation::error(
                rules::CACHE_BLOCK,
                location,
                format!(
                    "state count {} disagrees with the {} states its operations span",
                    block.state_count, expected
                ),
            ));
        }
    }

    violations
}

/// Internal shape invariants of one evaluation context: parallel vectors
/// agree in length, resource id lists are strictly increasing (binary
/// search relies on it), the binding points into the active units, and
/// every stored site is an actual multi-source site.
fn context_internal_violations(context: &DesignContext) -> Vec<Violation> {
    let mut violations = Vec::new();
    if context.base_delays.len() != context.binding.len() {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            format!(
                "{} base delays but {} binding entries",
                context.base_delays.len(),
                context.binding.len()
            ),
        ));
    }
    let sites = context.sites.len();
    if context.site_restructured.len() != sites
        || context.site_depths.len() != sites
        || context.profile.muxes.len() != sites
    {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            format!(
                "site vectors disagree: {sites} sites, {} flags, {} depth lists, {} profiles",
                context.site_restructured.len(),
                context.site_depths.len(),
                context.profile.muxes.len()
            ),
        ));
    } else {
        for (index, (site, depths)) in context.sites.iter().zip(&context.site_depths).enumerate() {
            if site.fan_in() < 2 {
                violations.push(Violation::error(
                    rules::CACHE_CONTEXT,
                    format!("site {index}"),
                    "stored mux site has fewer than two sources",
                ));
            }
            if depths.len() != site.sources.len() {
                violations.push(Violation::error(
                    rules::CACHE_CONTEXT,
                    format!("site {index}"),
                    format!(
                        "{} tree depths recorded for {} sources",
                        depths.len(),
                        site.sources.len()
                    ),
                ));
            }
        }
    }
    if context.profile.fus.len() != context.fu_ids.len() {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            format!(
                "{} unit ids but {} unit power profiles",
                context.fu_ids.len(),
                context.profile.fus.len()
            ),
        ));
    }
    if context.profile.regs.len() != context.reg_ids.len() {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            format!(
                "{} register ids but {} register power profiles",
                context.reg_ids.len(),
                context.profile.regs.len()
            ),
        ));
    }
    if context.fu_ids.windows(2).any(|w| w[0] >= w[1]) {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            "unit id list is not strictly increasing",
        ));
    }
    if context.reg_ids.windows(2).any(|w| w[0] >= w[1]) {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            "register id list is not strictly increasing",
        ));
    }
    for (node, binding) in context.binding.iter().enumerate() {
        if let Some(fu) = *binding {
            if !context.fu_ids.iter().any(|id| id.index() == fu) {
                violations.push(Violation::error(
                    rules::CACHE_CONTEXT,
                    format!("node {node}"),
                    format!("bound to unit index {fu} which is not in the context's unit list"),
                ));
            }
        }
    }
    violations
}

/// Cross-layer coherence between a context and a cached point of the same
/// fingerprint: the context must describe exactly that design.
fn context_point_violations(
    context: &DesignContext,
    design: &impact_rtl::RtlDesign,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if context.binding != design.scheduler_binding() {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            "binding disagrees with the cached design point of the same fingerprint",
        ));
    }
    let fu_ids: Vec<_> = design.functional_units().map(|(id, _)| id).collect();
    if context.fu_ids != fu_ids {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            "active unit list disagrees with the cached design point of the same fingerprint",
        ));
    }
    let reg_ids: Vec<_> = design.registers().map(|(id, _)| id).collect();
    if context.reg_ids != reg_ids {
        violations.push(Violation::error(
            rules::CACHE_CONTEXT,
            "context",
            "active register list disagrees with the cached design point of the same fingerprint",
        ));
    }
    for (index, (site, &restructured)) in context
        .sites
        .iter()
        .zip(&context.site_restructured)
        .enumerate()
    {
        if design.is_restructured(site.sink) != restructured {
            violations.push(Violation::error(
                rules::CACHE_CONTEXT,
                format!("site {index}"),
                "restructuring flag disagrees with the cached design point of the same fingerprint",
            ));
        }
    }
    violations
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::fingerprint::PointKey;
    use crate::{EngineConfig, Impact, SynthesisConfig, VerifyLevel};

    /// A session populated by two real gcd runs; every corruption test
    /// starts from its (clean) exported snapshot.
    fn populated_session() -> SweepSession {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(6, 11)).unwrap();
        let session = SweepSession::new();
        for laxity in [1.0, 2.0] {
            Impact::new(SynthesisConfig::power_optimized(laxity).with_effort(2, 3))
                .synthesize_with_session(&cdfg, &trace, &session)
                .unwrap();
        }
        session
    }

    fn fired(violations: &[Violation], rule: &str) -> bool {
        violations.iter().any(|v| v.rule == rule)
    }

    #[test]
    fn clean_sessions_audit_silently() {
        let session = populated_session();
        assert_eq!(audit_session(&session), vec![]);
        assert_eq!(audit_snapshot_bytes(&session.save_snapshot()), vec![]);
    }

    #[test]
    fn engine_audits_accept_clean_runs_at_every_level() {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(6, 11)).unwrap();
        for level in [VerifyLevel::Points, VerifyLevel::Full] {
            let config = SynthesisConfig::power_optimized(2.0)
                .with_effort(2, 3)
                .with_engine(EngineConfig::incremental().with_verify(level));
            Impact::new(config)
                .synthesize(&cdfg, &trace)
                .expect("a clean run passes the inline audit");
        }
    }

    #[test]
    fn rekeyed_points_trip_the_point_key_rule() {
        let mut snapshot = populated_session().backend().export();
        let key = *snapshot.points.keys().next().unwrap();
        let point = snapshot.points.remove(&key).unwrap();
        let forged = PointKey {
            vdd_bits: (point.vdd + 0.5).to_bits(),
            ..key
        };
        snapshot.points.insert(forged, point.clone());
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_POINT_KEY));

        let forged = PointKey {
            design: DesignFingerprint::from_u128(key.design.as_u128() ^ 1),
            ..key
        };
        snapshot.points.insert(forged, point);
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_POINT_KEY));
    }

    #[test]
    fn budget_violations_trip_the_scaled_key_rule() {
        let mut snapshot = populated_session().backend().export();
        let (key, point) = snapshot
            .scaled
            .iter()
            .find_map(|(k, v)| v.as_ref().map(|p| (*k, p.clone())))
            .expect("the session cached a feasible supply-search outcome");
        snapshot.scaled.remove(&key);
        let forged = crate::fingerprint::ScaledKey {
            enc_limit_bits: (point.enc() / 2.0).to_bits(),
            ..key
        };
        snapshot.scaled.insert(forged, Some(point));
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_SCALED_KEY));
    }

    #[test]
    fn truncated_contexts_trip_the_context_rule() {
        let mut snapshot = populated_session().backend().export();
        let key = *snapshot.contexts.keys().next().unwrap();
        let context = snapshot.contexts.get_mut(&key).unwrap();
        Arc::make_mut(context).base_delays.pop();
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_CONTEXT));
    }

    #[test]
    fn context_point_disagreement_trips_the_context_rule() {
        let mut snapshot = populated_session().backend().export();
        // A context whose design also sits in the point layer (same
        // workload and fingerprint), so the cross-layer check engages.
        let key = *snapshot
            .contexts
            .keys()
            .find(|k| {
                snapshot
                    .points
                    .keys()
                    .any(|p| p.workload == k.workload && p.design == k.design)
            })
            .unwrap();
        let context = snapshot.contexts.get_mut(&key).unwrap();
        let patched = Arc::make_mut(context);
        let node = patched
            .binding
            .iter()
            .position(Option::is_some)
            .expect("the context binds at least one operation");
        patched.binding[node] = None;
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_CONTEXT));
    }

    #[test]
    fn block_layer_disagreement_trips_the_schedule_rule() {
        let mut snapshot = populated_session().backend().export();
        // A block digest claimed by both a hierarchical schedule and the
        // block layer; nudging the stored block makes them disagree without
        // breaking the block's own internal invariants.
        let block_key = snapshot
            .schedules
            .iter()
            .find_map(|(key, result)| {
                result.blocks.iter().find_map(|outcome| {
                    let candidate = BlockKey::new(key.workload, outcome.digest);
                    snapshot
                        .block_schedules
                        .contains_key(&candidate)
                        .then_some(candidate)
                })
            })
            .expect("the schedule and block layers share a digest");
        let block = snapshot.block_schedules.get_mut(&block_key).unwrap();
        Arc::make_mut(block).ops[0].start_ns += 0.25;
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_SCHEDULE));
    }

    #[test]
    fn state_count_drift_trips_the_block_rule() {
        let mut snapshot = populated_session().backend().export();
        let key = *snapshot.block_schedules.keys().next().unwrap();
        let block = snapshot.block_schedules.get_mut(&key).unwrap();
        Arc::make_mut(block).state_count += 1;
        assert!(fired(&audit_snapshot(&snapshot), rules::CACHE_BLOCK));
    }

    #[test]
    fn undecodable_bytes_trip_the_snapshot_rule() {
        let violations = audit_snapshot_bytes(b"not a snapshot");
        assert!(fired(&violations, rules::CACHE_SNAPSHOT));
        let mut bytes = populated_session().save_snapshot();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(fired(&audit_snapshot_bytes(&bytes), rules::CACHE_SNAPSHOT));
    }
}
