//! The iterative-improvement moves and their generation.

use std::fmt;

use impact_cdfg::analysis::ExclusionInfo;
use impact_cdfg::{Cdfg, NodeId, VarId};
use impact_modlib::{ModuleId, ModuleLibrary};
use impact_rtl::{DesignDelta, FuId, MuxSink, RegId, RtlDesign, RtlError};

use crate::config::SynthesisConfig;

/// One RT-level transformation considered by the search (Section 3.2).
#[derive(Clone, PartialEq, Debug)]
pub enum Move {
    /// Restructure the multiplexer tree at `sink` by activity-probability
    /// ordering (Section 3.2.1).
    RestructureMux {
        /// The mux site to restructure.
        sink: MuxSink,
    },
    /// Replace the module variant of a functional unit (Section 3.2.2).
    SubstituteModule {
        /// The unit whose implementation changes.
        fu: FuId,
        /// The new library variant.
        module: ModuleId,
    },
    /// Share two functional units of the same class (Section 3.2.3).
    ShareFus {
        /// The unit kept.
        keep: FuId,
        /// The unit removed; its operations move to `keep`.
        remove: FuId,
    },
    /// Split one operation off a shared functional unit (Section 3.2.3).
    SplitFu {
        /// The unit to split.
        fu: FuId,
        /// The operation moved onto a fresh unit.
        op: NodeId,
    },
    /// Merge two registers.
    ShareRegisters {
        /// The register kept.
        keep: RegId,
        /// The register removed; its variables move to `keep`.
        remove: RegId,
    },
    /// Split one variable off a shared register.
    SplitRegister {
        /// The register to split.
        reg: RegId,
        /// The variable moved to a fresh register.
        var: VarId,
    },
}

impl Move {
    /// Applies the move to a design, returning the transactional
    /// [`DesignDelta`] — the exact change-set the move made. The delta is
    /// what makes the move the unit of incrementality downstream: the
    /// evaluator patches the parent's fingerprint and evaluation context
    /// from it instead of rebuilding either, and [`RtlDesign::revert_delta`]
    /// undoes the move exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s (e.g. sharing incompatible units); the engine
    /// simply skips such candidates. A failed move leaves the design
    /// untouched.
    pub fn apply(
        &self,
        cdfg: &Cdfg,
        library: &ModuleLibrary,
        design: &mut RtlDesign,
    ) -> Result<DesignDelta, RtlError> {
        let mut delta = match self {
            Move::RestructureMux { sink } => design.set_restructured_delta(*sink, true),
            Move::SubstituteModule { fu, module } => {
                design.substitute_module(library, *fu, *module)?
            }
            Move::ShareFus { keep, remove } => design.share_fus(*keep, *remove)?,
            Move::SplitFu { fu, op } => design.split_fu(cdfg, *fu, &[*op])?,
            Move::ShareRegisters { keep, remove } => design.share_registers(*keep, *remove)?,
            Move::SplitRegister { reg, var } => design.split_register(cdfg, *reg, &[*var])?,
        };
        // Rebinding operations or variables can collapse a multi-source mux
        // site into a single-source one (e.g. sharing the two units that fed
        // a register input), stranding a restructuring annotation on a sink
        // that no longer is a mux site. Sweep those into the delta so the
        // invariant `annotated => multi-source` holds after *any* move
        // composition, not just the sequences the greedy search happens to
        // pick — and so a revert restores them exactly.
        if matches!(
            self,
            Move::ShareFus { .. }
                | Move::SplitFu { .. }
                | Move::ShareRegisters { .. }
                | Move::SplitRegister { .. }
        ) {
            clear_stale_annotations(cdfg, design, &mut delta);
        }
        Ok(delta)
    }

    /// Short human-readable description for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Move::RestructureMux { .. } => "restructure-mux",
            Move::SubstituteModule { .. } => "substitute-module",
            Move::ShareFus { .. } => "share-fus",
            Move::SplitFu { .. } => "split-fu",
            Move::ShareRegisters { .. } => "share-registers",
            Move::SplitRegister { .. } => "split-register",
        }
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::RestructureMux { sink } => write!(f, "restructure mux at {sink}"),
            Move::SubstituteModule { fu, module } => write!(f, "substitute {module} on {fu}"),
            Move::ShareFus { keep, remove } => write!(f, "share {remove} into {keep}"),
            Move::SplitFu { fu, op } => write!(f, "split {op} off {fu}"),
            Move::ShareRegisters { keep, remove } => write!(f, "share {remove} into {keep}"),
            Move::SplitRegister { reg, var } => write!(f, "split {var} off {reg}"),
        }
    }
}

/// Clears restructuring annotations stranded on sinks that stopped being
/// multi-source mux sites, folding the clears into `delta` so reverting it
/// restores them. Cheap when the design carries no annotations (the common
/// case while probing): the site enumeration only runs when one exists.
fn clear_stale_annotations(cdfg: &Cdfg, design: &mut RtlDesign, delta: &mut DesignDelta) {
    if design.restructured_sites().next().is_none() {
        return;
    }
    let real: std::collections::HashSet<MuxSink> = design
        .mux_sites(cdfg)
        .into_iter()
        .filter(|site| site.fan_in() >= 2)
        .map(|site| site.sink)
        .collect();
    let stale: Vec<MuxSink> = design
        .restructured_sites()
        .filter(|sink| !real.contains(sink))
        .collect();
    for sink in stale {
        let cleared = design.set_restructured_delta(sink, false);
        delta.restructured.extend(cleared.restructured);
    }
}

/// Upper bound on the number of sharing candidates generated per move family
/// and step, to keep each variable-depth step affordable.
const MAX_PAIR_CANDIDATES: usize = 24;

/// Generates the candidate moves applicable to `design`.
///
/// Sharing candidates are ordered so that pairs whose operations are mutually
/// exclusive (opposite branch sides) come first — sharing those reduces the
/// number of states and usually area and power, as the paper notes.
pub fn generate(
    cdfg: &Cdfg,
    library: &ModuleLibrary,
    design: &RtlDesign,
    config: &SynthesisConfig,
    exclusion: &ExclusionInfo,
) -> Vec<Move> {
    let mut moves = Vec::new();

    if config.mux_restructuring {
        for site in design.mux_sites(cdfg) {
            if site.fan_in() >= 2 && !design.is_restructured(site.sink) {
                moves.push(Move::RestructureMux { sink: site.sink });
            }
        }
    }

    if config.module_selection {
        for (fu, unit) in design.functional_units() {
            for variant in library.variants_for(unit.class) {
                if variant != unit.module {
                    moves.push(Move::SubstituteModule {
                        fu,
                        module: variant,
                    });
                }
            }
        }
    }

    if config.resource_sharing {
        let mut pairs: Vec<(FuId, FuId, bool)> = Vec::new();
        let units: Vec<(FuId, impact_cdfg::OpClass)> = design
            .functional_units()
            .map(|(id, u)| (id, u.class))
            .collect();
        for (i, &(a, class_a)) in units.iter().enumerate() {
            for &(b, class_b) in units.iter().skip(i + 1) {
                if class_a != class_b {
                    continue;
                }
                let exclusive = design.ops_on(a).iter().all(|&oa| {
                    design
                        .ops_on(b)
                        .iter()
                        .all(|&ob| exclusion.mutually_exclusive(oa, ob))
                });
                pairs.push((a, b, exclusive));
            }
        }
        // Mutually exclusive pairs first.
        pairs.sort_by_key(|&(_, _, exclusive)| !exclusive);
        for (a, b, _) in pairs.into_iter().take(MAX_PAIR_CANDIDATES) {
            moves.push(Move::ShareFus { keep: a, remove: b });
        }
        for (fu, _) in design.functional_units() {
            let ops = design.ops_on(fu);
            if ops.len() >= 2 {
                moves.push(Move::SplitFu {
                    fu,
                    op: ops[ops.len() - 1],
                });
            }
        }
    }

    if config.register_sharing {
        let regs: Vec<(RegId, u8)> = design.registers().map(|(id, r)| (id, r.width)).collect();
        let mut pairs: Vec<(RegId, RegId, u8)> = Vec::new();
        for (i, &(a, wa)) in regs.iter().enumerate() {
            for &(b, wb) in regs.iter().skip(i + 1) {
                pairs.push((a, b, wa.abs_diff(wb)));
            }
        }
        // Prefer width-compatible registers.
        pairs.sort_by_key(|&(_, _, diff)| diff);
        for (a, b, _) in pairs.into_iter().take(MAX_PAIR_CANDIDATES) {
            moves.push(Move::ShareRegisters { keep: a, remove: b });
        }
        for (reg, r) in design.registers() {
            if r.variables.len() >= 2 {
                moves.push(Move::SplitRegister {
                    reg,
                    var: r.variables[r.variables.len() - 1],
                });
            }
        }
    }

    moves
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use impact_modlib::ModuleLibrary;

    fn setup() -> (Cdfg, ModuleLibrary, RtlDesign, ExclusionInfo) {
        let cdfg = impact_benchmarks::gcd().compile().unwrap();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let excl = ExclusionInfo::compute(&cdfg);
        (cdfg, lib, design, excl)
    }

    #[test]
    fn every_move_family_is_generated_for_the_initial_design() {
        let (cdfg, lib, design, excl) = setup();
        let config = SynthesisConfig::power_optimized(2.0);
        let moves = generate(&cdfg, &lib, &design, &config, &excl);
        assert!(moves.iter().any(|m| matches!(m, Move::ShareFus { .. })));
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::SubstituteModule { .. })));
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::ShareRegisters { .. })));
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::RestructureMux { .. })));
        // No shared unit or register exists yet, so no splits.
        assert!(!moves.iter().any(|m| matches!(m, Move::SplitFu { .. })));
    }

    #[test]
    fn ablation_flags_suppress_their_move_families() {
        let (cdfg, lib, design, excl) = setup();
        let config = SynthesisConfig::power_optimized(2.0)
            .without_mux_restructuring()
            .without_module_selection()
            .without_resource_sharing()
            .without_register_sharing();
        assert!(generate(&cdfg, &lib, &design, &config, &excl).is_empty());
    }

    #[test]
    fn mutually_exclusive_sharing_candidates_come_first() {
        let (cdfg, lib, design, excl) = setup();
        let config = SynthesisConfig::power_optimized(2.0).without_register_sharing();
        let moves = generate(&cdfg, &lib, &design, &config, &excl);
        let first_share = moves.iter().find_map(|m| match m {
            Move::ShareFus { keep, remove } => Some((*keep, *remove)),
            _ => None,
        });
        // The two subtractions of GCD live on opposite branch sides, so the
        // first sharing candidate should pair mutually exclusive operations.
        let (keep, remove) = first_share.expect("sharing candidates exist");
        let oa = design.ops_on(keep)[0];
        let ob = design.ops_on(remove)[0];
        assert!(excl.mutually_exclusive(oa, ob));
    }

    #[test]
    fn applying_moves_mutates_the_design() {
        let (cdfg, lib, mut design, _excl) = setup();
        let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
        let mv = Move::ShareFus {
            keep: adders[0],
            remove: adders[1],
        };
        assert_eq!(mv.kind(), "share-fus");
        mv.apply(&cdfg, &lib, &mut design).unwrap();
        assert_eq!(design.ops_on(adders[0]).len(), 2);
        // Splitting it back is now a valid move.
        let split = Move::SplitFu {
            fu: adders[0],
            op: design.ops_on(adders[0])[1],
        };
        split.apply(&cdfg, &lib, &mut design).unwrap();
        assert_eq!(design.ops_on(adders[0]).len(), 1);
    }

    #[test]
    fn move_display_is_informative() {
        let (_, _, design, _) = setup();
        let fu = design.functional_units().next().unwrap().0;
        let mv = Move::SplitFu {
            fu,
            op: NodeId::new(3),
        };
        assert!(mv.to_string().contains("n3"));
    }
}
