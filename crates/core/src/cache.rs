//! The evaluation cache of the incremental engine.
//!
//! One [`EvalCache`] lives inside each [`Evaluator`](crate::Evaluator) and
//! memoizes, from cheapest to most expensive to recompute:
//!
//! * trace statistics (per-unit, per-register and per-mux-site activity),
//!   keyed by structural *content* so candidate designs share them,
//! * per-design evaluation contexts (base delays, binding and power profile),
//! * fully evaluated [`DesignPoint`]s per `(design, vdd)` pair, and the
//!   Vdd-scaled result of the full supply search per design.
//!
//! All maps sit behind one mutex; computations never run under the lock, so
//! parallel ranking threads can race to fill the same entry — both sides
//! compute identical values, and the last store wins. Design points are
//! stored behind `Arc`, so the per-level entries of the Vdd search and the
//! fully-scaled entry share allocations and a hit clones a pointer, not the
//! design. When a map outgrows its capacity bound it is cleared wholesale;
//! the evictions are counted and the simple policy keeps hit paths
//! branch-light.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use impact_power::PowerProfile;
use impact_rtl::DesignFingerprint;
use impact_trace::{FuStats, RegStats};

use crate::evaluate::DesignPoint;
use crate::fingerprint::{FuStatsKey, MuxStatsKey, PointKey, RegStatsKey};

/// Everything about one design that the Vdd search reuses across supply
/// levels: effective node delays at the reference supply, the scheduler
/// binding and the supply-independent power profile.
#[derive(Clone, Debug)]
pub(crate) struct DesignContext {
    /// Effective per-node delays at delay factor 1.0 (module + interconnect).
    pub base_delays: Vec<f64>,
    /// Per-node functional-unit binding in scheduler form.
    pub binding: Vec<Option<usize>>,
    /// Supply-independent power/area coefficients.
    pub profile: PowerProfile,
}

/// Memoized statistics of one mux site: the tree's switching activity, the
/// depth of every source in the tree, and the selection rate.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct MuxEntry {
    pub tree_activity: f64,
    pub depths: Vec<usize>,
    pub selections_per_pass: f64,
}

/// Snapshot of the cache's effectiveness counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Times a full map was dropped because it outgrew its capacity bound.
    pub evictions: u64,
    /// Memoized design points currently held.
    pub points: usize,
    /// Memoized per-design contexts currently held.
    pub contexts: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    points: HashMap<PointKey, Option<Arc<DesignPoint>>>,
    scaled: HashMap<DesignFingerprint, Option<Arc<DesignPoint>>>,
    contexts: HashMap<DesignFingerprint, Arc<DesignContext>>,
    fu_stats: HashMap<FuStatsKey, FuStats>,
    reg_stats: HashMap<RegStatsKey, RegStats>,
    mux_stats: HashMap<MuxStatsKey, MuxEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Capacity bounds; a map exceeding its bound on insert is cleared.
const MAX_POINTS: usize = 16_384;
const MAX_CONTEXTS: usize = 4_096;
const MAX_STATS: usize = 65_536;

/// The memoization store of one [`Evaluator`](crate::Evaluator).
#[derive(Debug)]
pub(crate) struct EvalCache {
    enabled: bool,
    inner: Mutex<CacheInner>,
}

macro_rules! cached_lookup {
    ($name:ident, $store:ident, $field:ident, $key:ty, $value:ty, $cap:expr) => {
        pub(crate) fn $name(&self, key: &$key) -> Option<$value> {
            if !self.enabled {
                return None;
            }
            let mut inner = self.inner.lock().expect("evaluation cache poisoned");
            let found = inner.$field.get(key).cloned();
            if found.is_some() {
                inner.hits += 1;
            } else {
                inner.misses += 1;
            }
            found
        }

        pub(crate) fn $store(&self, key: $key, value: $value) {
            if !self.enabled {
                return;
            }
            let mut inner = self.inner.lock().expect("evaluation cache poisoned");
            if inner.$field.len() >= $cap {
                inner.$field.clear();
                inner.evictions += 1;
            }
            inner.$field.insert(key, value);
        }
    };
}

impl EvalCache {
    pub(crate) fn new(enabled: bool) -> Self {
        Self {
            enabled,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Whether memoization is active (`false` reproduces the brute-force
    /// evaluation loop).
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    cached_lookup!(
        lookup_point,
        store_point,
        points,
        PointKey,
        Option<Arc<DesignPoint>>,
        MAX_POINTS
    );
    cached_lookup!(
        lookup_scaled,
        store_scaled,
        scaled,
        DesignFingerprint,
        Option<Arc<DesignPoint>>,
        MAX_POINTS
    );
    cached_lookup!(
        lookup_context,
        store_context,
        contexts,
        DesignFingerprint,
        Arc<DesignContext>,
        MAX_CONTEXTS
    );
    cached_lookup!(lookup_fu, store_fu, fu_stats, FuStatsKey, FuStats, MAX_STATS);
    cached_lookup!(
        lookup_reg,
        store_reg,
        reg_stats,
        RegStatsKey,
        RegStats,
        MAX_STATS
    );
    cached_lookup!(
        lookup_mux,
        store_mux,
        mux_stats,
        MuxStatsKey,
        MuxEntry,
        MAX_STATS
    );

    /// Snapshot of the effectiveness counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("evaluation cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            points: inner.points.len(),
            contexts: inner.contexts.len(),
        }
    }
}
