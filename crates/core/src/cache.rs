//! The shared cache layer of the incremental engine.
//!
//! Memoized values come in three tiers, from cheapest to most expensive to
//! recompute:
//!
//! * trace statistics (per-unit, per-register and per-mux-site activity),
//!   keyed by structural *content* so candidate designs share them,
//! * basic-block schedules keyed by
//!   [`block_digest`](impact_sched::block_digest), shared by hierarchical
//!   schedules that differ only in blocks a change touched (delta-aware
//!   schedule repair),
//! * per-design evaluation contexts (base delays, binding and power profile)
//!   and whole hierarchical schedules per problem digest,
//! * fully evaluated [`DesignPoint`]s per `(workload, design, vdd)` and the
//!   outcome of the full supply search per `(workload, design, enc budget)`.
//!
//! Storage lives behind the [`CacheBackend`] trait so sessions can swap the
//! store: the in-process implementation is [`InMemoryCache`], an `Arc`-shared
//! mutex-protected map set. Two backends populated independently (e.g. by
//! sharded candidate searches) combine deterministically via
//! [`CacheBackend::export`] / [`CacheBackend::absorb`]: every entry is a pure
//! function of its key, so when both sides hold the same key the values are
//! identical and merge order cannot influence later lookups.
//!
//! Computations never run under the lock, so parallel ranking threads can
//! race to fill the same entry — both sides compute identical values, and the
//! last store wins. Design points are stored behind `Arc`, so the per-level
//! entries of the Vdd search and the fully-scaled entry share allocations and
//! a hit clones a pointer, not the design. When a new entry would overflow a
//! map's capacity bound the map is cleared and the triggering entry inserted
//! into the fresh map (a store is always visible to the next lookup); the
//! evictions are counted and the simple policy keeps hit paths branch-light.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use impact_power::PowerProfile;
use impact_rtl::MuxSite;
use impact_sched::{BlockSchedule, SchedulingResult};
use impact_trace::{FuStats, RegStats};

use crate::evaluate::DesignPoint;
use crate::explore::ExploreStats;
use crate::fingerprint::{
    BlockKey, ContextKey, FuStatsKey, MuxStatsKey, PointKey, RegStatsKey, ScaledKey, ScheduleKey,
};
use crate::snapshot::{self, SnapshotRejection, SnapshotScope, SnapshotStats};

/// Everything about one design that the Vdd search reuses across supply
/// levels: effective node delays at the reference supply, the scheduler
/// binding and the supply-independent power profile. Laxity-independent, so
/// sweep sessions reuse contexts across `enc_limit` values.
///
/// The context also records the *skeleton* it was assembled from — the
/// active resource ids behind each profile position and every mux site with
/// its tree depths — which is what lets
/// [`patch_context`](crate::Evaluator) derive a candidate's context from its
/// parent's by cloning only the entries the move touched.
#[derive(Clone, Debug)]
pub struct DesignContext {
    /// Effective per-node delays at delay factor 1.0 (module + interconnect).
    pub(crate) base_delays: Vec<f64>,
    /// Per-node functional-unit binding in scheduler form.
    pub(crate) binding: Vec<Option<usize>>,
    /// Supply-independent power/area coefficients.
    pub(crate) profile: PowerProfile,
    /// Functional-unit ids in allocation order (one per `profile.fus` entry).
    pub(crate) fu_ids: Vec<impact_rtl::FuId>,
    /// Register ids in allocation order (one per `profile.regs` entry).
    pub(crate) reg_ids: Vec<impact_rtl::RegId>,
    /// Every mux site with fan-in ≥ 2, in enumeration order (one per
    /// `profile.muxes` entry).
    pub(crate) sites: Vec<MuxSite>,
    /// Whether each site's tree was restructured, parallel to `sites`.
    pub(crate) site_restructured: Vec<bool>,
    /// Depth of every source in each site's tree, parallel to `sites`.
    pub(crate) site_depths: Vec<Vec<usize>>,
    /// Lazily built index of `sites` by sink. One parent context serves a
    /// whole ranking stage of candidate patches; building the map per patch
    /// was a measurable share of context derivation.
    pub(crate) site_index: std::sync::OnceLock<HashMap<impact_rtl::MuxSink, usize>>,
}

impl DesignContext {
    /// The memoized sink → site-position index of this context's sites.
    pub(crate) fn site_index(&self) -> &HashMap<impact_rtl::MuxSink, usize> {
        self.site_index.get_or_init(|| {
            self.sites
                .iter()
                .enumerate()
                .map(|(index, site)| (site.sink, index))
                .collect()
        })
    }
}

/// Memoized statistics of one mux site: the tree's switching activity, the
/// depth of every source in the tree, and the selection rate.
#[derive(Clone, PartialEq, Debug)]
pub struct MuxEntry {
    pub(crate) tree_activity: f64,
    pub(crate) depths: Vec<usize>,
    pub(crate) selections_per_pass: f64,
}

/// Hit/miss counters of one cache layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LayerStats {
    /// Lookups answered from the layer.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl LayerStats {
    /// Fraction of lookups answered from the layer.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }

    fn plus(self, other: LayerStats) -> LayerStats {
        LayerStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Outcome counters of one [`CacheBackend::absorb`] merge (and, cumulatively,
/// of every merge a backend ever performed — see [`CacheStats::merge`]).
///
/// Because every cache entry is a pure function of its key, an incoming entry
/// under a key the backend already holds carries an interchangeable value;
/// the merge *skips* it (keeping the resident allocation) and counts it as a
/// duplicate. These counters are what shard-exchange efficiency is reasoned
/// about with: a healthy exchange absorbs mostly-new entries, while a high
/// duplicate share means peers are re-sending work the receiver already has.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AbsorbStats {
    /// Entries newly inserted by the merge.
    pub absorbed: u64,
    /// Entries skipped because the key was already present (interchangeable
    /// values — the resident entry wins).
    pub duplicates: u64,
    /// Entries dropped because a map was at its capacity bound.
    pub dropped: u64,
}

impl AbsorbStats {
    /// Entries the merge was offered (absorbed + duplicates + dropped).
    pub fn offered(&self) -> u64 {
        self.absorbed + self.duplicates + self.dropped
    }

    /// Fraction of offered entries that were new to the receiver.
    pub fn fresh_rate(&self) -> f64 {
        let offered = self.offered();
        if offered > 0 {
            self.absorbed as f64 / offered as f64
        } else {
            0.0
        }
    }

    /// Accumulates another merge's counters (for cumulative reporting).
    pub fn accumulate(&mut self, other: AbsorbStats) {
        self.absorbed += other.absorbed;
        self.duplicates += other.duplicates;
        self.dropped += other.dropped;
    }
}

/// Snapshot of a backend's effectiveness counters: the totals plus one
/// [`LayerStats`] per memoization layer, from cheapest to most expensive to
/// recompute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (sum over every layer).
    pub hits: u64,
    /// Lookups that had to compute (sum over every layer).
    pub misses: u64,
    /// Times a full map was dropped because it outgrew its capacity bound.
    pub evictions: u64,
    /// Memoized design points currently held.
    pub points: usize,
    /// Memoized per-design contexts currently held.
    pub contexts: usize,
    /// Memoized hierarchical schedules currently held.
    pub schedules: usize,
    /// Memoized basic-block schedules currently held.
    pub block_schedules: usize,
    /// Traffic on the raw trace-statistics maps (per-unit, per-register and
    /// per-mux-site activity combined).
    pub trace_stats: LayerStats,
    /// Traffic on the per-design context map.
    pub context: LayerStats,
    /// Traffic on the per-block schedule map (delta-aware repair and block
    /// memoization).
    pub block: LayerStats,
    /// Traffic on the memoized-schedule map.
    pub schedule: LayerStats,
    /// Traffic on the per-`(design, vdd)` point map.
    pub point: LayerStats,
    /// Traffic on the supply-search outcome map.
    pub scaled: LayerStats,
    /// Snapshot save/load counters, including per-reason load rejections.
    pub snapshot: SnapshotStats,
    /// Cumulative merge counters over every `absorb` the backend performed
    /// (shard merges, snapshot loads, session `merge_from`).
    pub merge: AbsorbStats,
    /// Cumulative search-effort counters over every synthesis run recorded
    /// against the backend (probes, commits, reverts and the
    /// strategy-specific work — see [`ExploreStats`]).
    pub explore: ExploreStats,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Storage interface of an evaluation session.
///
/// Implementations must be safe to share across the scoped worker threads of
/// the ranking stage and of batch drivers (`Send + Sync`); every entry is a
/// pure function of its key, so backends may drop entries at any time
/// (capacity eviction) and may resolve concurrent stores of the same key in
/// either order without affecting synthesis results.
pub trait CacheBackend: Send + Sync + fmt::Debug {
    /// Fetches a memoized design point.
    fn lookup_point(&self, key: &PointKey) -> Option<Arc<DesignPoint>>;
    /// Stores a design point.
    fn store_point(&self, key: PointKey, value: Arc<DesignPoint>);
    /// Fetches the memoized outcome of a full supply search (`Some(None)`
    /// records "infeasible under this ENC budget").
    fn lookup_scaled(&self, key: &ScaledKey) -> Option<Option<Arc<DesignPoint>>>;
    /// Stores a supply-search outcome.
    fn store_scaled(&self, key: ScaledKey, value: Option<Arc<DesignPoint>>);
    /// Fetches a memoized per-design context.
    fn lookup_context(&self, key: &ContextKey) -> Option<Arc<DesignContext>>;
    /// Stores a per-design context.
    fn store_context(&self, key: ContextKey, value: Arc<DesignContext>);
    /// Fetches a memoized hierarchical schedule.
    fn lookup_schedule(&self, key: &ScheduleKey) -> Option<Arc<SchedulingResult>>;
    /// Stores a hierarchical schedule.
    fn store_schedule(&self, key: ScheduleKey, value: Arc<SchedulingResult>);
    /// Fetches a memoized basic-block schedule.
    fn lookup_block(&self, key: &BlockKey) -> Option<Arc<BlockSchedule>>;
    /// Stores a basic-block schedule.
    fn store_block(&self, key: BlockKey, value: Arc<BlockSchedule>);
    /// Fetches memoized per-unit trace statistics.
    fn lookup_fu(&self, key: &FuStatsKey) -> Option<FuStats>;
    /// Stores per-unit trace statistics.
    fn store_fu(&self, key: FuStatsKey, value: FuStats);
    /// Fetches memoized per-register trace statistics.
    fn lookup_reg(&self, key: &RegStatsKey) -> Option<RegStats>;
    /// Stores per-register trace statistics.
    fn store_reg(&self, key: RegStatsKey, value: RegStats);
    /// Fetches memoized per-mux-site statistics.
    fn lookup_mux(&self, key: &MuxStatsKey) -> Option<MuxEntry>;
    /// Stores per-mux-site statistics.
    fn store_mux(&self, key: MuxStatsKey, value: MuxEntry);
    /// Snapshot of the effectiveness counters.
    fn stats(&self) -> CacheStats;
    /// Accumulates one synthesis run's search-effort counters, so sessions
    /// report explore work alongside the cache layers. Backends that don't
    /// track them may keep the default no-op.
    fn record_explore(&self, stats: ExploreStats) {
        let _ = stats;
    }
    /// Copies every entry out (counters are not part of the snapshot).
    fn export(&self) -> CacheSnapshot;
    /// Merges a snapshot into this backend and reports what happened to the
    /// offered entries. Entries under keys this backend already holds are
    /// interchangeable with the incoming ones (same pure function, same key),
    /// so the resident entry is kept and the incoming one counted as a
    /// duplicate — the merge is deterministic regardless of arrival order;
    /// traffic counters are unaffected.
    fn absorb(&self, snapshot: CacheSnapshot) -> AbsorbStats;
    /// Serializes every entry into the versioned snapshot wire format
    /// (deterministic: equal contents produce identical bytes).
    fn save_snapshot(&self) -> Vec<u8> {
        snapshot::encode_snapshot(&self.export())
    }
    /// Decodes snapshot bytes, verifies them under `scope`, and merges the
    /// entries through [`Self::absorb`]. Returns the merge counters.
    ///
    /// # Errors
    ///
    /// Returns the rejection class for stale, truncated or corrupt bytes; the
    /// backend is left unchanged — a rejected load is a cache miss, never a
    /// wrong hit.
    fn load_snapshot(
        &self,
        bytes: &[u8],
        scope: SnapshotScope,
    ) -> Result<AbsorbStats, SnapshotRejection> {
        let decoded = snapshot::decode_snapshot(bytes, scope)?;
        Ok(self.absorb(decoded))
    }
}

/// Portable copy of a backend's entries, produced by
/// [`CacheBackend::export`] and consumed by [`CacheBackend::absorb`]. Fields
/// are public so external [`CacheBackend`] implementations (disk stores,
/// remote shards) can build and consume snapshots; treat the values as
/// opaque — they are pure functions of their keys. Cloning is cheap: the
/// values are `Arc`-shared, so a clone copies pointers, not payloads.
#[derive(Clone, Debug, Default)]
pub struct CacheSnapshot {
    /// Fully evaluated design points.
    pub points: HashMap<PointKey, Arc<DesignPoint>>,
    /// Supply-search outcomes (`None` = infeasible under the key's budget).
    pub scaled: HashMap<ScaledKey, Option<Arc<DesignPoint>>>,
    /// Per-design evaluation contexts.
    pub contexts: HashMap<ContextKey, Arc<DesignContext>>,
    /// Memoized hierarchical schedules.
    pub schedules: HashMap<ScheduleKey, Arc<SchedulingResult>>,
    /// Memoized basic-block schedules.
    pub block_schedules: HashMap<BlockKey, Arc<BlockSchedule>>,
    /// Per-unit trace statistics.
    pub fu_stats: HashMap<FuStatsKey, FuStats>,
    /// Per-register trace statistics.
    pub reg_stats: HashMap<RegStatsKey, RegStats>,
    /// Per-mux-site trace statistics.
    pub mux_stats: HashMap<MuxStatsKey, MuxEntry>,
}

impl CacheSnapshot {
    /// Total number of entries across every map.
    pub fn len(&self) -> usize {
        self.points.len()
            + self.scaled.len()
            + self.contexts.len()
            + self.schedules.len()
            + self.block_schedules.len()
            + self.fu_stats.len()
            + self.reg_stats.len()
            + self.mux_stats.len()
    }

    /// Whether the snapshot holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    points: HashMap<PointKey, Arc<DesignPoint>>,
    scaled: HashMap<ScaledKey, Option<Arc<DesignPoint>>>,
    contexts: HashMap<ContextKey, Arc<DesignContext>>,
    schedules: HashMap<ScheduleKey, Arc<SchedulingResult>>,
    block_schedules: HashMap<BlockKey, Arc<BlockSchedule>>,
    fu_stats: HashMap<FuStatsKey, FuStats>,
    reg_stats: HashMap<RegStatsKey, RegStats>,
    mux_stats: HashMap<MuxStatsKey, MuxEntry>,
    points_traffic: LayerStats,
    scaled_traffic: LayerStats,
    contexts_traffic: LayerStats,
    schedules_traffic: LayerStats,
    blocks_traffic: LayerStats,
    fu_traffic: LayerStats,
    reg_traffic: LayerStats,
    mux_traffic: LayerStats,
    evictions: u64,
    snapshot: SnapshotStats,
    merge: AbsorbStats,
    explore: ExploreStats,
}

/// Capacity bounds; a map whose bound a new entry would overflow is cleared
/// and the triggering entry is inserted into the fresh map.
const MAX_POINTS: usize = 16_384;
const MAX_CONTEXTS: usize = 4_096;
const MAX_SCHEDULES: usize = 16_384;
const MAX_BLOCKS: usize = 65_536;
const MAX_STATS: usize = 65_536;

/// The in-process [`CacheBackend`]: one mutex-protected map set, shared by
/// `Arc` between every evaluator (and every worker thread) of a session.
#[derive(Debug, Default)]
pub struct InMemoryCache {
    inner: Mutex<CacheInner>,
}

impl InMemoryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the store, recovering from poison: a panicking evaluation
    /// worker can only abandon the mutex *between* map operations (no user
    /// code ever runs under the lock), so the maps are always structurally
    /// consistent and unrelated evaluations keep the cache instead of
    /// cascading the panic.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

macro_rules! backend_map {
    ($lookup:ident, $store:ident, $field:ident, $traffic:ident, $key:ty, $value:ty, $cap:expr) => {
        fn $lookup(&self, key: &$key) -> Option<$value> {
            let mut inner = self.lock();
            let found = inner.$field.get(key).cloned();
            if found.is_some() {
                inner.$traffic.hits += 1;
            } else {
                inner.$traffic.misses += 1;
            }
            found
        }

        fn $store(&self, key: $key, value: $value) {
            let mut inner = self.lock();
            // Only a *new* key can overflow the bound: overwriting an entry
            // already present (e.g. the racing-store case) must never wipe
            // the map. After a clear the triggering entry is inserted into
            // the fresh map, so a store followed by a lookup always hits.
            if inner.$field.len() >= $cap && !inner.$field.contains_key(&key) {
                inner.$field.clear();
                inner.evictions += 1;
            }
            inner.$field.insert(key, value);
        }
    };
}

impl CacheBackend for InMemoryCache {
    backend_map!(
        lookup_point,
        store_point,
        points,
        points_traffic,
        PointKey,
        Arc<DesignPoint>,
        MAX_POINTS
    );
    backend_map!(
        lookup_scaled,
        store_scaled,
        scaled,
        scaled_traffic,
        ScaledKey,
        Option<Arc<DesignPoint>>,
        MAX_POINTS
    );
    backend_map!(
        lookup_context,
        store_context,
        contexts,
        contexts_traffic,
        ContextKey,
        Arc<DesignContext>,
        MAX_CONTEXTS
    );
    backend_map!(
        lookup_schedule,
        store_schedule,
        schedules,
        schedules_traffic,
        ScheduleKey,
        Arc<SchedulingResult>,
        MAX_SCHEDULES
    );
    backend_map!(
        lookup_block,
        store_block,
        block_schedules,
        blocks_traffic,
        BlockKey,
        Arc<BlockSchedule>,
        MAX_BLOCKS
    );
    backend_map!(lookup_fu, store_fu, fu_stats, fu_traffic, FuStatsKey, FuStats, MAX_STATS);
    backend_map!(
        lookup_reg,
        store_reg,
        reg_stats,
        reg_traffic,
        RegStatsKey,
        RegStats,
        MAX_STATS
    );
    backend_map!(
        lookup_mux,
        store_mux,
        mux_stats,
        mux_traffic,
        MuxStatsKey,
        MuxEntry,
        MAX_STATS
    );

    fn stats(&self) -> CacheStats {
        let inner = self.lock();
        let trace_stats = inner
            .fu_traffic
            .plus(inner.reg_traffic)
            .plus(inner.mux_traffic);
        let total = trace_stats
            .plus(inner.contexts_traffic)
            .plus(inner.blocks_traffic)
            .plus(inner.schedules_traffic)
            .plus(inner.points_traffic)
            .plus(inner.scaled_traffic);
        CacheStats {
            hits: total.hits,
            misses: total.misses,
            evictions: inner.evictions,
            points: inner.points.len(),
            contexts: inner.contexts.len(),
            schedules: inner.schedules.len(),
            block_schedules: inner.block_schedules.len(),
            trace_stats,
            context: inner.contexts_traffic,
            block: inner.blocks_traffic,
            schedule: inner.schedules_traffic,
            point: inner.points_traffic,
            scaled: inner.scaled_traffic,
            snapshot: inner.snapshot,
            merge: inner.merge,
            explore: inner.explore,
        }
    }

    fn record_explore(&self, stats: ExploreStats) {
        self.lock().explore.accumulate(stats);
    }

    fn export(&self) -> CacheSnapshot {
        let inner = self.lock();
        CacheSnapshot {
            points: inner.points.clone(),
            scaled: inner.scaled.clone(),
            contexts: inner.contexts.clone(),
            schedules: inner.schedules.clone(),
            block_schedules: inner.block_schedules.clone(),
            fu_stats: inner.fu_stats.clone(),
            reg_stats: inner.reg_stats.clone(),
            mux_stats: inner.mux_stats.clone(),
        }
    }

    fn absorb(&self, snapshot: CacheSnapshot) -> AbsorbStats {
        let mut inner = self.lock();
        let mut stats = AbsorbStats::default();
        // Unlike a store, a merge never clears: incoming entries are added
        // until the capacity bound, and only the overflow is dropped (counted
        // as one eviction per map) — two full shards must not annihilate each
        // other. Which overflow entries are kept is not specified; entries
        // are pure, so lookups stay correct either way. A key the backend
        // already holds keeps its resident entry (interchangeable values) and
        // counts as a duplicate — the signal shard-exchange efficiency is
        // judged by.
        macro_rules! merge_map {
            ($field:ident, $cap:expr) => {{
                let mut dropped = false;
                for (key, value) in snapshot.$field {
                    if inner.$field.contains_key(&key) {
                        stats.duplicates += 1;
                        continue;
                    }
                    if inner.$field.len() >= $cap {
                        dropped = true;
                        stats.dropped += 1;
                        continue;
                    }
                    inner.$field.insert(key, value);
                    stats.absorbed += 1;
                }
                if dropped {
                    inner.evictions += 1;
                }
            }};
        }
        merge_map!(points, MAX_POINTS);
        merge_map!(scaled, MAX_POINTS);
        merge_map!(contexts, MAX_CONTEXTS);
        merge_map!(schedules, MAX_SCHEDULES);
        merge_map!(block_schedules, MAX_BLOCKS);
        merge_map!(fu_stats, MAX_STATS);
        merge_map!(reg_stats, MAX_STATS);
        merge_map!(mux_stats, MAX_STATS);
        inner.merge.accumulate(stats);
        stats
    }

    fn save_snapshot(&self) -> Vec<u8> {
        let bytes = snapshot::encode_snapshot(&self.export());
        self.lock().snapshot.saves += 1;
        bytes
    }

    fn load_snapshot(
        &self,
        bytes: &[u8],
        scope: SnapshotScope,
    ) -> Result<AbsorbStats, SnapshotRejection> {
        match snapshot::decode_snapshot(bytes, scope) {
            Ok(decoded) => {
                let stats = self.absorb(decoded);
                self.lock().snapshot.loads += 1;
                Ok(stats)
            }
            Err(rejection) => {
                self.lock().snapshot.record_rejection(rejection);
                Err(rejection)
            }
        }
    }
}

// ---------------------------------------------------------------- snapshot codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`MuxEntry`]'s wire layout.
const TAG_MUX_ENTRY: u8 = 0x40;
/// Version tag of [`DesignContext`]'s wire layout.
const TAG_DESIGN_CONTEXT: u8 = 0x41;

impl Encode for MuxEntry {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_MUX_ENTRY);
        w.put_f64(self.tree_activity);
        self.depths.encode(w);
        w.put_f64(self.selections_per_pass);
    }
}

impl Decode for MuxEntry {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_MUX_ENTRY)?;
        Ok(Self {
            tree_activity: r.take_f64()?,
            depths: Decode::decode(r)?,
            selections_per_pass: r.take_f64()?,
        })
    }
}

impl Encode for DesignContext {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_DESIGN_CONTEXT);
        self.base_delays.encode(w);
        self.binding.encode(w);
        self.profile.encode(w);
        self.fu_ids.encode(w);
        self.reg_ids.encode(w);
        self.sites.encode(w);
        self.site_restructured.encode(w);
        self.site_depths.encode(w);
        // The sink → position index is a lazily built derivation of `sites`;
        // a decoded context rebuilds it on first use.
    }
}

impl Decode for DesignContext {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_DESIGN_CONTEXT)?;
        Ok(Self {
            base_delays: Decode::decode(r)?,
            binding: Decode::decode(r)?,
            profile: Decode::decode(r)?,
            fu_ids: Decode::decode(r)?,
            reg_ids: Decode::decode(r)?,
            sites: Decode::decode(r)?,
            site_restructured: Decode::decode(r)?,
            site_depths: Decode::decode(r)?,
            site_index: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::fingerprint::WorkloadId;
    use impact_rtl::FingerprintHasher;

    fn context_key(tag: u64) -> ContextKey {
        let mut hasher = FingerprintHasher::new();
        hasher.write_u64(tag);
        ContextKey::new(WorkloadId(u128::from(tag)), hasher.finish())
    }

    fn sample_context() -> Arc<DesignContext> {
        Arc::new(DesignContext {
            base_delays: vec![1.0, 2.0],
            binding: vec![None, Some(0)],
            profile: PowerProfile {
                fus: Vec::new(),
                regs: Vec::new(),
                register_bits: 0.0,
                muxes: Vec::new(),
                datapath_area: 0.0,
            },
            fu_ids: Vec::new(),
            reg_ids: Vec::new(),
            sites: Vec::new(),
            site_restructured: Vec::new(),
            site_depths: Vec::new(),
            site_index: std::sync::OnceLock::new(),
        })
    }

    #[test]
    fn lookups_count_hits_and_misses() {
        let cache = InMemoryCache::new();
        let key = context_key(1);
        assert!(cache.lookup_context(&key).is_none());
        cache.store_context(key, sample_context());
        assert!(cache.lookup_context(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.contexts, 1);
        assert!(stats.hit_rate() > 0.4 && stats.hit_rate() < 0.6);
        // The traffic landed on the context layer and nowhere else.
        assert_eq!(stats.context, LayerStats { hits: 1, misses: 1 });
        assert!((stats.context.hit_rate() - 0.5).abs() < 1e-12);
        for idle in [
            stats.point,
            stats.scaled,
            stats.schedule,
            stats.block,
            stats.trace_stats,
        ] {
            assert_eq!(idle, LayerStats::default());
        }
    }

    #[test]
    fn block_layer_counts_its_own_traffic() {
        let cache = InMemoryCache::new();
        let key = BlockKey::new(WorkloadId(1), 42);
        assert!(cache.lookup_block(&key).is_none());
        cache.store_block(key, Arc::new(BlockSchedule::default()));
        assert!(cache.lookup_block(&key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.block, LayerStats { hits: 1, misses: 1 });
        assert_eq!(stats.block_schedules, 1);
    }

    #[test]
    fn a_store_followed_by_a_lookup_always_hits_at_capacity() {
        // Regression for capacity eviction: the entry whose insertion
        // triggers the overflow must land in the freshly cleared map — a
        // wholesale clear that discarded it would make the store invisible
        // to the very next lookup.
        let cache = InMemoryCache::new();
        for tag in 0..=(MAX_CONTEXTS as u64) {
            cache.store_context(context_key(tag), sample_context());
            assert!(
                cache.lookup_context(&context_key(tag)).is_some(),
                "entry {tag} must be readable immediately after its store"
            );
        }
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwriting_an_existing_key_at_capacity_does_not_evict() {
        let cache = InMemoryCache::new();
        for tag in 0..(MAX_CONTEXTS as u64) {
            cache.store_context(context_key(tag), sample_context());
        }
        // A racing re-store of a held key must not clear a full map.
        cache.store_context(context_key(0), sample_context());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "overwrites never clear the map");
        assert_eq!(stats.contexts, MAX_CONTEXTS);
    }

    #[test]
    fn absorb_merges_entries_without_touching_counters() {
        let a = InMemoryCache::new();
        let b = InMemoryCache::new();
        a.store_context(context_key(1), sample_context());
        b.store_context(context_key(2), sample_context());
        // One overlapping key: pure-function entries, the resident one wins.
        b.store_context(context_key(1), sample_context());
        let merged = a.absorb(b.export());
        assert_eq!(
            merged,
            AbsorbStats {
                absorbed: 1,
                duplicates: 1,
                dropped: 0
            }
        );
        assert_eq!(merged.offered(), 2);
        assert!((merged.fresh_rate() - 0.5).abs() < 1e-12);
        assert_eq!(a.stats().contexts, 2);
        assert_eq!(a.stats().hits, 0, "merging is not traffic");
        assert_eq!(a.stats().merge, merged, "cumulative counters match");
        assert!(a.lookup_context(&context_key(1)).is_some());
        assert!(a.lookup_context(&context_key(2)).is_some());
        // The donor keeps its entries.
        assert_eq!(b.stats().contexts, 2);
    }

    #[test]
    fn merge_is_order_independent_for_identical_pure_entries() {
        let shard_a = InMemoryCache::new();
        let shard_b = InMemoryCache::new();
        for tag in 0..8u64 {
            shard_a.store_context(context_key(tag), sample_context());
        }
        for tag in 4..12u64 {
            shard_b.store_context(context_key(tag), sample_context());
        }
        let ab = InMemoryCache::new();
        ab.absorb(shard_a.export());
        ab.absorb(shard_b.export());
        let ba = InMemoryCache::new();
        ba.absorb(shard_b.export());
        ba.absorb(shard_a.export());
        assert_eq!(ab.stats().contexts, 12);
        assert_eq!(ba.stats().contexts, 12);
        for tag in 0..12u64 {
            assert!(ab.lookup_context(&context_key(tag)).is_some());
            assert!(ba.lookup_context(&context_key(tag)).is_some());
        }
    }

    #[test]
    fn a_poisoned_mutex_is_recovered_instead_of_cascading() {
        let cache = Arc::new(InMemoryCache::new());
        cache.store_context(context_key(7), sample_context());
        // Poison the lock: a worker panics while holding it. Store/lookup
        // never run user code under the lock, so the maps stay consistent.
        let poisoner = Arc::clone(&cache);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("ranking worker dies while holding the cache lock");
        })
        .join();
        assert!(result.is_err(), "the worker must have panicked");
        assert!(cache.inner.is_poisoned());
        // Every operation keeps working on the recovered store.
        assert!(cache.lookup_context(&context_key(7)).is_some());
        cache.store_context(context_key(8), sample_context());
        assert_eq!(cache.stats().contexts, 2);
        let exported = cache.export();
        assert_eq!(exported.len(), 2);
        assert!(!exported.is_empty());
        cache.absorb(exported);
        assert_eq!(cache.stats().contexts, 2);
    }

    #[test]
    fn an_overflowing_merge_keeps_the_map_full_instead_of_clearing_it() {
        // Two shards that together exceed the capacity bound: the merge must
        // retain a full map (existing entries plus incoming ones up to the
        // cap), never wipe the combined work.
        let target = InMemoryCache::new();
        for tag in 0..(MAX_CONTEXTS as u64 - 8) {
            target.store_context(context_key(tag), sample_context());
        }
        let donor = InMemoryCache::new();
        for tag in 0..64u64 {
            donor.store_context(context_key(1_000_000 + tag), sample_context());
        }
        let merged = target.absorb(donor.export());
        assert_eq!(merged.absorbed, 8, "only the free capacity is filled");
        assert_eq!(merged.dropped, 56, "the overflow is counted, not inserted");
        assert_eq!(merged.duplicates, 0);
        let stats = target.stats();
        assert_eq!(stats.contexts, MAX_CONTEXTS, "map fills up to the bound");
        assert_eq!(stats.evictions, 1, "the dropped overflow counts once");
        // Every pre-merge entry survived.
        for tag in 0..(MAX_CONTEXTS as u64 - 8) {
            assert!(target.lookup_context(&context_key(tag)).is_some());
        }
    }

    #[test]
    fn capacity_overflow_clears_the_map_and_counts_an_eviction() {
        let cache = InMemoryCache::new();
        for tag in 0..(MAX_CONTEXTS as u64 + 1) {
            cache.store_context(context_key(tag), sample_context());
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.contexts <= MAX_CONTEXTS);
    }
}
