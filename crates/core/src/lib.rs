//! IMPACT: Iterative iMprovement, Power optimizing Algorithm for Control-flow
//! inTensive designs.
//!
//! This crate is the paper's primary contribution: an iterative-improvement
//! high-level synthesis engine that searches the RT-level design space by
//! applying *moves* — multiplexer-tree restructuring, module
//! selection/substitution, resource sharing/splitting for functional units
//! and registers — to an initial fully-parallel architecture, re-scheduling
//! when a move requires it, and steering with an RT-level power (or area)
//! estimate derived from one behavioral simulation via trace manipulation.
//!
//! The search is the SCALP-style variable-depth strategy the paper
//! generalizes: each pass builds a sequence of locally best moves (individual
//! moves may have negative gain, which lets the algorithm escape local
//! minima), and commits the prefix of the sequence with the best cumulative
//! gain. The algorithm exits when a whole pass yields no improvement.
//!
//! Two optimization modes mirror the paper's experiments: `Power` (the IMPACT
//! objective, with supply-voltage scaling against the laxity constraint) and
//! `Area` (the baseline the paper's `A-Power` curves are derived from).
//!
//! # Example
//!
//! ```
//! use impact_core::{Impact, SynthesisConfig};
//!
//! let bench = impact_benchmarks::gcd();
//! let cdfg = bench.compile()?;
//! let inputs = bench.input_sequences(24, 1);
//! let trace = impact_behsim::simulate(&cdfg, &inputs)?;
//! let outcome = Impact::new(SynthesisConfig::power_optimized(2.0)).synthesize(&cdfg, &trace)?;
//! assert!(outcome.report.power_mw > 0.0);
//! assert!(outcome.report.enc <= outcome.report.enc_limit + 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod config;
mod engine;
mod error;
mod evaluate;
mod explore;
mod fingerprint;
mod moves;
mod session;
mod snapshot;
#[cfg(feature = "verify")]
pub mod verify;

pub use cache::{
    AbsorbStats, CacheBackend, CacheSnapshot, CacheStats, DesignContext, InMemoryCache, LayerStats,
    MuxEntry,
};
pub use config::{EngineConfig, OptimizationMode, SynthesisConfig, VerifyLevel};
pub use engine::{Impact, MoveRecord, SynthesisOutcome, SynthesisReport};
pub use error::SynthesisError;
pub use evaluate::{DesignPoint, Evaluator};
pub use explore::{
    pareto_front, BeamExplorer, Exploration, ExploreStats, Explorer, ExplorerKind, GreedyExplorer,
    ParetoSweep, RankedCandidate, RestartExplorer, SearchKernel, DEFAULT_BEAM_WIDTH, DEFAULT_KICKS,
    DEFAULT_RESTARTS, DEFAULT_RESTART_SEED,
};
pub use fingerprint::{
    BlockKey, ContextKey, FuStatsKey, MuxStatsKey, PointKey, RegStatsKey, ScaledKey, ScheduleKey,
    WorkloadId,
};
pub use moves::Move;
pub use session::SweepSession;
pub use snapshot::{
    decode_snapshot, encode_snapshot, write_snapshot_bytes, DiskCache, SnapshotError,
    SnapshotRejection, SnapshotScope, SnapshotStats, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
// The shared digest primitives live in `impact_cdfg::fingerprint`; re-export
// them so engine users need only this crate.
pub use impact_rtl::{DesignDelta, DesignFingerprint, FingerprintHasher};
