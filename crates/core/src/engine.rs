//! The IMPACT iterative-improvement engine (Figure 7 of the paper).
//!
//! The engine prepares the evaluator and the probe/commit
//! [`SearchKernel`](crate::SearchKernel), dispatches to the configured
//! [`Explorer`](crate::Explorer) strategy (see
//! [`ExplorerKind`](crate::ExplorerKind) on [`EngineConfig`](crate::EngineConfig)),
//! and assembles the report — the search policy itself lives in the
//! `explore` module.

use impact_behsim::ExecutionTrace;
use impact_cdfg::Cdfg;
use impact_power::PowerBreakdown;
use impact_rtl::RtlDesign;
use impact_sched::SchedulingResult;

use crate::cache::CacheStats;
use crate::config::SynthesisConfig;
use crate::error::SynthesisError;
use crate::evaluate::{DesignPoint, Evaluator};
use crate::explore::SearchKernel;
use crate::moves::Move;
use crate::session::SweepSession;

/// One committed move together with its (possibly negative) gain.
#[derive(Clone, Debug)]
pub struct MoveRecord {
    /// The move applied.
    pub applied: Move,
    /// Cost reduction it produced (in the units of the optimization mode).
    pub gain: f64,
    /// Improvement pass during which it was committed.
    pub pass: usize,
    /// Name of the explorer strategy that committed it (e.g. `"greedy"`,
    /// `"beam"`, `"restart-kick"`), so mixed-strategy runs and audits can
    /// attribute history entries.
    pub strategy: &'static str,
}

/// Summary metrics of a finished synthesis run.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthesisReport {
    /// Estimated average power at the selected supply, in milliwatts.
    pub power_mw: f64,
    /// Power of the final design at the 5 V reference supply, in milliwatts.
    pub power_at_reference_mw: f64,
    /// Power breakdown at the selected supply.
    pub breakdown: PowerBreakdown,
    /// Total area in equivalent gates.
    pub area: f64,
    /// Selected supply voltage in volts.
    pub vdd: f64,
    /// Expected number of cycles of the final schedule.
    pub enc: f64,
    /// Minimum achievable ENC for this design and library.
    pub enc_min: f64,
    /// The ENC budget (`laxity × enc_min`).
    pub enc_limit: f64,
    /// The laxity factor the run was constrained to.
    pub laxity: f64,
    /// Power of the initial fully-parallel architecture at 5 V (the paper's
    /// normalization base before area optimization).
    pub initial_power_mw: f64,
    /// Area of the initial fully-parallel architecture.
    pub initial_area: f64,
    /// Number of committed moves.
    pub moves_applied: usize,
    /// Number of improvement passes executed.
    pub passes: usize,
}

/// Result of [`Impact::synthesize`]: the final architecture, its schedule and
/// the report plus the move history.
#[derive(Clone, Debug)]
pub struct SynthesisOutcome {
    /// Final RT-level architecture.
    pub design: RtlDesign,
    /// Final schedule.
    pub schedule: SchedulingResult,
    /// Headline metrics.
    pub report: SynthesisReport,
    /// Committed moves in application order.
    pub history: Vec<MoveRecord>,
    /// Non-dominated power/area/latency front of the probed design space.
    /// Empty for single-point strategies; filled by
    /// [`ParetoSweep`](crate::ParetoSweep).
    pub front: Vec<DesignPoint>,
    /// Evaluation-cache counters of the session the run used (all zero for
    /// the sequential engine configuration; cumulative over every run of the
    /// session when synthesized with a shared [`SweepSession`]).
    pub cache_stats: CacheStats,
}

/// The IMPACT synthesis engine.
#[derive(Clone, Debug)]
pub struct Impact {
    config: SynthesisConfig,
}

impl Impact {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the full synthesis flow of Figure 7: start from the fully
    /// parallel architecture, iteratively apply variable-depth sequences of
    /// moves, and stop when a whole pass brings no improvement.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InfeasibleLaxity`] for laxity below 1.0 and
    /// propagates scheduler failures.
    pub fn synthesize(
        &self,
        cdfg: &Cdfg,
        trace: &ExecutionTrace,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let evaluator = Evaluator::new(cdfg, trace, self.config.clone())?;
        self.run_with(cdfg, evaluator)
    }

    /// [`Self::synthesize`] against a shared [`SweepSession`]: the run reads
    /// and populates the session's cache instead of a private one, so a sweep
    /// of runs (different laxity factors, different optimization modes, even
    /// different benchmarks) shares contexts, trace statistics and design
    /// points. Results are bit-identical to [`Self::synthesize`] — the cache
    /// only memoizes pure functions — but a warm session skips most of the
    /// cold cost.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`].
    pub fn synthesize_with_session(
        &self,
        cdfg: &Cdfg,
        trace: &ExecutionTrace,
        session: &SweepSession,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let evaluator = Evaluator::with_session(cdfg, trace, self.config.clone(), session)?;
        self.run_with(cdfg, evaluator)
    }

    /// Runs the configured explorer over a prepared evaluator: build the
    /// probe/commit kernel, hand it (and the evaluated initial architecture)
    /// to the strategy selected by `engine.explorer`, and assemble the
    /// report from what the strategy returns.
    fn run_with(
        &self,
        cdfg: &Cdfg,
        evaluator: Evaluator<'_>,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let mut kernel = SearchKernel::new(cdfg, &evaluator);

        let initial = kernel.initial_point()?;
        let initial_power_mw = initial.power_at_reference.total_mw();
        let initial_area = initial.area;

        let explorer = self.config.engine.explorer.build();
        let exploration = explorer.explore(&mut kernel, initial)?;

        // At the full auditing level the whole session is checked for cache
        // coherence before the outcome is handed out.
        #[cfg(feature = "verify")]
        if self.config.engine.verify == crate::VerifyLevel::Full {
            evaluator.audit_session()?;
        }

        // Explore counters ride the session backend like the cache layers,
        // so sweep and shard drivers report cumulative numbers; sessionless
        // runs carry their own counters directly.
        let explore_stats = kernel.stats();
        if let Some(session) = evaluator.session() {
            session.backend().record_explore(explore_stats);
        }

        let current = exploration.best;
        let report = SynthesisReport {
            power_mw: current.power.total_mw(),
            power_at_reference_mw: current.power_at_reference.total_mw(),
            breakdown: current.power,
            area: current.area,
            vdd: current.vdd,
            enc: current.enc(),
            enc_min: evaluator.enc_min(),
            enc_limit: evaluator.enc_limit(),
            laxity: self.config.laxity,
            initial_power_mw,
            initial_area,
            moves_applied: exploration.history.len(),
            passes: exploration.passes,
        };
        let mut cache_stats = evaluator.cache_stats();
        if evaluator.session().is_none() {
            cache_stats.explore = explore_stats;
        }
        Ok(SynthesisOutcome {
            design: current.design,
            schedule: (*current.schedule).clone(),
            report,
            history: exploration.history,
            front: exploration.front,
            cache_stats,
        })
    }
}

// ------------------------------------------------------------- report codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`SynthesisReport`]'s wire layout. The report travels
/// between shard worker processes and their coordinator, so the layout is
/// versioned like every cached type.
const TAG_SYNTHESIS_REPORT: u8 = 0x50;

impl Encode for SynthesisReport {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SYNTHESIS_REPORT);
        w.put_f64(self.power_mw);
        w.put_f64(self.power_at_reference_mw);
        self.breakdown.encode(w);
        w.put_f64(self.area);
        w.put_f64(self.vdd);
        w.put_f64(self.enc);
        w.put_f64(self.enc_min);
        w.put_f64(self.enc_limit);
        w.put_f64(self.laxity);
        w.put_f64(self.initial_power_mw);
        w.put_f64(self.initial_area);
        w.put_usize(self.moves_applied);
        w.put_usize(self.passes);
    }
}

impl Decode for SynthesisReport {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SYNTHESIS_REPORT)?;
        Ok(Self {
            power_mw: r.take_f64()?,
            power_at_reference_mw: r.take_f64()?,
            breakdown: Decode::decode(r)?,
            area: r.take_f64()?,
            vdd: r.take_f64()?,
            enc: r.take_f64()?,
            enc_min: r.take_f64()?,
            enc_limit: r.take_f64()?,
            laxity: r.take_f64()?,
            initial_power_mw: r.take_f64()?,
            initial_area: r.take_f64()?,
            moves_applied: r.take_usize()?,
            passes: r.take_usize()?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;

    fn setup(bench: impact_benchmarks::Benchmark, passes: usize) -> (Cdfg, ExecutionTrace) {
        let cdfg = bench.compile().unwrap();
        let inputs = bench.input_sequences(passes, 17);
        let trace = simulate(&cdfg, &inputs).unwrap();
        (cdfg, trace)
    }

    fn quick(config: SynthesisConfig) -> SynthesisConfig {
        config.with_effort(2, 3)
    }

    #[test]
    fn power_mode_reduces_power_versus_the_initial_architecture() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(
            outcome.report.power_at_reference_mw <= outcome.report.initial_power_mw + 1e-9,
            "search must not end on a worse design ({} vs {})",
            outcome.report.power_at_reference_mw,
            outcome.report.initial_power_mw
        );
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
        assert!(outcome.report.vdd <= 5.0);
    }

    #[test]
    fn area_mode_reduces_area_and_respects_the_enc_budget() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::area_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(outcome.report.area < outcome.report.initial_area);
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn higher_laxity_never_increases_optimized_power() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let tight = Impact::new(quick(SynthesisConfig::power_optimized(1.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let relaxed = Impact::new(quick(SynthesisConfig::power_optimized(3.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(
            relaxed.report.power_mw <= tight.report.power_mw + 1e-9,
            "more slack must not hurt power ({} vs {})",
            relaxed.report.power_mw,
            tight.report.power_mw
        );
        assert!(relaxed.report.vdd <= tight.report.vdd + 1e-9);
    }

    #[test]
    fn committed_moves_report_their_pass_and_kind() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        for record in &outcome.history {
            assert!(record.pass < outcome.report.passes);
            assert!(!record.applied.kind().is_empty());
            assert_eq!(record.strategy, "greedy", "default explorer attribution");
        }
        assert_eq!(outcome.history.len(), outcome.report.moves_applied);
        assert!(
            outcome.front.is_empty(),
            "single-point strategies return no front"
        );
    }

    #[test]
    fn infeasible_laxity_is_reported() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 8);
        assert!(matches!(
            Impact::new(SynthesisConfig::power_optimized(0.5)).synthesize(&cdfg, &trace),
            Err(SynthesisError::InfeasibleLaxity { .. })
        ));
    }

    #[test]
    fn data_dominated_designs_are_handled_too() {
        let (cdfg, trace) = setup(impact_benchmarks::paulin(), 6);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(outcome.report.power_mw > 0.0);
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
    }

    #[test]
    fn ranking_is_deterministic_across_thread_counts() {
        // The parallel ranking stage must not let scheduling order leak into
        // candidate choice: any thread count yields the same winner and the
        // same synthesis result.
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 10);
        let mut configs = Vec::new();
        for threads in [1usize, 2, 5] {
            let mut engine = crate::EngineConfig::incremental();
            engine.ranking_threads = threads;
            configs.push(quick(SynthesisConfig::power_optimized(2.0)).with_engine(engine));
        }
        let baseline = Impact::new(configs[0].clone())
            .synthesize(&cdfg, &trace)
            .unwrap();
        for config in &configs[1..] {
            let outcome = Impact::new(config.clone())
                .synthesize(&cdfg, &trace)
                .unwrap();
            assert_eq!(outcome.report.power_mw, baseline.report.power_mw);
            assert_eq!(outcome.report.vdd, baseline.report.vdd);
            assert_eq!(outcome.history.len(), baseline.history.len());
            for (a, b) in outcome.history.iter().zip(&baseline.history) {
                assert_eq!(a.applied, b.applied);
            }
        }
    }

    #[test]
    fn sequential_and_incremental_engines_agree_bit_for_bit() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let config = quick(SynthesisConfig::power_optimized(2.0));
        let sequential = Impact::new(
            config
                .clone()
                .with_engine(crate::EngineConfig::sequential()),
        )
        .synthesize(&cdfg, &trace)
        .unwrap();
        let incremental = Impact::new(config.with_engine(crate::EngineConfig::incremental()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert_eq!(sequential.report.power_mw, incremental.report.power_mw);
        assert_eq!(
            sequential.report.power_at_reference_mw,
            incremental.report.power_at_reference_mw
        );
        assert_eq!(sequential.report.area, incremental.report.area);
        assert_eq!(sequential.report.vdd, incremental.report.vdd);
        assert_eq!(sequential.report.enc, incremental.report.enc);
        assert_eq!(sequential.design, incremental.design);
        assert_eq!(
            sequential.report.moves_applied,
            incremental.report.moves_applied
        );
        // The sequential engine never touches the cache; the incremental one
        // uses it heavily.
        assert_eq!(
            sequential.cache_stats.hits + sequential.cache_stats.misses,
            0
        );
        assert!(incremental.cache_stats.hits > 0);
    }

    #[test]
    fn final_schedule_covers_every_functional_operation() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        for (id, node) in cdfg.nodes() {
            if node.operation.needs_functional_unit() {
                assert!(outcome.schedule.stg.state_of(id).is_some());
            }
        }
    }
}
