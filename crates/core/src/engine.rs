//! The IMPACT iterative-improvement engine (Figure 7 of the paper).

use impact_behsim::ExecutionTrace;
use impact_cdfg::analysis::ExclusionInfo;
use impact_cdfg::Cdfg;
use impact_power::PowerBreakdown;
use impact_rtl::RtlDesign;
use impact_sched::SchedulingResult;

use crate::cache::CacheStats;
use crate::config::{OptimizationMode, SynthesisConfig};
use crate::error::SynthesisError;
use crate::evaluate::{DesignPoint, Evaluator};
use crate::moves::{generate, Move};
use crate::session::SweepSession;

/// One committed move together with its (possibly negative) gain.
#[derive(Clone, Debug)]
pub struct MoveRecord {
    /// The move applied.
    pub applied: Move,
    /// Cost reduction it produced (in the units of the optimization mode).
    pub gain: f64,
    /// Improvement pass during which it was committed.
    pub pass: usize,
}

/// Summary metrics of a finished synthesis run.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthesisReport {
    /// Estimated average power at the selected supply, in milliwatts.
    pub power_mw: f64,
    /// Power of the final design at the 5 V reference supply, in milliwatts.
    pub power_at_reference_mw: f64,
    /// Power breakdown at the selected supply.
    pub breakdown: PowerBreakdown,
    /// Total area in equivalent gates.
    pub area: f64,
    /// Selected supply voltage in volts.
    pub vdd: f64,
    /// Expected number of cycles of the final schedule.
    pub enc: f64,
    /// Minimum achievable ENC for this design and library.
    pub enc_min: f64,
    /// The ENC budget (`laxity × enc_min`).
    pub enc_limit: f64,
    /// The laxity factor the run was constrained to.
    pub laxity: f64,
    /// Power of the initial fully-parallel architecture at 5 V (the paper's
    /// normalization base before area optimization).
    pub initial_power_mw: f64,
    /// Area of the initial fully-parallel architecture.
    pub initial_area: f64,
    /// Number of committed moves.
    pub moves_applied: usize,
    /// Number of improvement passes executed.
    pub passes: usize,
}

/// Result of [`Impact::synthesize`]: the final architecture, its schedule and
/// the report plus the move history.
#[derive(Clone, Debug)]
pub struct SynthesisOutcome {
    /// Final RT-level architecture.
    pub design: RtlDesign,
    /// Final schedule.
    pub schedule: SchedulingResult,
    /// Headline metrics.
    pub report: SynthesisReport,
    /// Committed moves in application order.
    pub history: Vec<MoveRecord>,
    /// Evaluation-cache counters of the session the run used (all zero for
    /// the sequential engine configuration; cumulative over every run of the
    /// session when synthesized with a shared [`SweepSession`]).
    pub cache_stats: CacheStats,
}

/// The IMPACT synthesis engine.
#[derive(Clone, Debug)]
pub struct Impact {
    config: SynthesisConfig,
}

impl Impact {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the full synthesis flow of Figure 7: start from the fully
    /// parallel architecture, iteratively apply variable-depth sequences of
    /// moves, and stop when a whole pass brings no improvement.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InfeasibleLaxity`] for laxity below 1.0 and
    /// propagates scheduler failures.
    pub fn synthesize(
        &self,
        cdfg: &Cdfg,
        trace: &ExecutionTrace,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let evaluator = Evaluator::new(cdfg, trace, self.config.clone())?;
        self.run_with(cdfg, evaluator)
    }

    /// [`Self::synthesize`] against a shared [`SweepSession`]: the run reads
    /// and populates the session's cache instead of a private one, so a sweep
    /// of runs (different laxity factors, different optimization modes, even
    /// different benchmarks) shares contexts, trace statistics and design
    /// points. Results are bit-identical to [`Self::synthesize`] — the cache
    /// only memoizes pure functions — but a warm session skips most of the
    /// cold cost.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`].
    pub fn synthesize_with_session(
        &self,
        cdfg: &Cdfg,
        trace: &ExecutionTrace,
        session: &SweepSession,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let evaluator = Evaluator::with_session(cdfg, trace, self.config.clone(), session)?;
        self.run_with(cdfg, evaluator)
    }

    /// The Figure 7 improvement loop over a prepared evaluator.
    fn run_with(
        &self,
        cdfg: &Cdfg,
        evaluator: Evaluator<'_>,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let exclusion = ExclusionInfo::compute(cdfg);

        let initial = evaluator.initial_point()?;
        let initial_power_mw = initial.power_at_reference.total_mw();
        let initial_area = initial.area;

        let mut current = initial;
        let mut history: Vec<MoveRecord> = Vec::new();
        let mut passes_run = 0usize;

        for pass in 0..self.config.max_passes {
            passes_run = pass + 1;
            let committed = self.improvement_pass(
                cdfg,
                &evaluator,
                &exclusion,
                &mut current,
                pass,
                &mut history,
            )?;
            if !committed {
                break;
            }
        }

        // At the full auditing level the whole session is checked for cache
        // coherence before the outcome is handed out.
        #[cfg(feature = "verify")]
        if self.config.engine.verify == crate::VerifyLevel::Full {
            evaluator.audit_session()?;
        }

        let report = SynthesisReport {
            power_mw: current.power.total_mw(),
            power_at_reference_mw: current.power_at_reference.total_mw(),
            breakdown: current.power,
            area: current.area,
            vdd: current.vdd,
            enc: current.enc(),
            enc_min: evaluator.enc_min(),
            enc_limit: evaluator.enc_limit(),
            laxity: self.config.laxity,
            initial_power_mw,
            initial_area,
            moves_applied: history.len(),
            passes: passes_run,
        };
        Ok(SynthesisOutcome {
            design: current.design,
            schedule: (*current.schedule).clone(),
            report,
            history,
            cache_stats: evaluator.cache_stats(),
        })
    }

    /// One variable-depth pass. Returns `true` when at least one move was
    /// committed.
    fn improvement_pass(
        &self,
        cdfg: &Cdfg,
        evaluator: &Evaluator<'_>,
        exclusion: &ExclusionInfo,
        current: &mut DesignPoint,
        pass: usize,
        history: &mut Vec<MoveRecord>,
    ) -> Result<bool, SynthesisError> {
        let mode = self.config.mode;
        let mut working = current.clone();
        let mut sequence: Vec<(Move, DesignPoint, f64)> = Vec::new();
        let mut cumulative_gain = 0.0;
        let mut best_gain = 0.0;
        let mut best_prefix = 0usize;

        for _ in 0..self.config.max_sequence_length {
            let candidates = generate(
                cdfg,
                evaluator.library(),
                &working.design,
                &self.config,
                exclusion,
            );
            if candidates.is_empty() {
                break;
            }

            // Rank candidates with a cheap single-schedule evaluation at the
            // reference supply, then fully evaluate (including Vdd scaling)
            // in rank order until a candidate survives — a top-ranked
            // candidate that turns out infeasible under full evaluation no
            // longer discards the rest of the sequence. The working design
            // is fingerprinted once per step; every candidate's digest and
            // context are then patched from it through the move's delta.
            let parent_fingerprint = evaluator
                .session()
                .is_some()
                .then(|| working.design.fingerprint());
            let ranked =
                self.rank_candidates(evaluator, &working, &candidates, parent_fingerprint)?;
            let advanced = first_feasible(&ranked, |index| -> Result<_, SynthesisError> {
                Ok(evaluator
                    .evaluate_move_shared(&working.design, parent_fingerprint, &candidates[index])?
                    .map(|point| (*point).clone()))
            })?;
            let Some((index, full)) = advanced else { break };
            let chosen = candidates[index].clone();

            let gain = working.cost(mode) - full.cost(mode);
            cumulative_gain += gain;
            working = full.clone();
            sequence.push((chosen, full, gain));
            if cumulative_gain > best_gain + 1e-9 {
                best_gain = cumulative_gain;
                best_prefix = sequence.len();
            }
        }

        if best_prefix == 0 {
            return Ok(false);
        }
        // Commit the prefix with the best cumulative gain.
        for (mv, _, gain) in sequence.iter().take(best_prefix) {
            history.push(MoveRecord {
                applied: mv.clone(),
                gain: *gain,
                pass,
            });
        }
        *current = sequence[best_prefix - 1].1.clone();
        Ok(true)
    }

    /// Scores every applicable candidate at the reference supply and returns
    /// `(candidate index, gain)` pairs sorted best-first.
    ///
    /// The ordering is deterministic and independent of the thread count:
    /// higher gain first, and among equal gains the earliest-generated
    /// candidate wins (move generation orders candidates by preference, e.g.
    /// mutually exclusive sharing pairs first, so the tie-break preserves that
    /// intent — and matches the winner the historical first-strictly-greater
    /// scan selected).
    fn rank_candidates(
        &self,
        evaluator: &Evaluator<'_>,
        working: &DesignPoint,
        candidates: &[Move],
        parent_fingerprint: Option<impact_rtl::DesignFingerprint>,
    ) -> Result<Vec<(usize, f64)>, SynthesisError> {
        let mode = self.config.mode;
        let working_reference_cost = reference_cost(working, mode);
        let score = |index: usize| -> Result<Option<f64>, SynthesisError> {
            let Some(point) = evaluator.evaluate_move_at_vdd_shared(
                &working.design,
                parent_fingerprint,
                &candidates[index],
                impact_modlib::VDD_REFERENCE,
            )?
            else {
                return Ok(None);
            };
            Ok(Some(
                working_reference_cost - reference_cost(point.as_ref(), mode),
            ))
        };

        let threads = self.ranking_threads(candidates.len());
        let mut gains: Vec<Option<f64>> = vec![None; candidates.len()];
        if threads <= 1 {
            for (index, slot) in gains.iter_mut().enumerate() {
                *slot = score(index)?;
            }
        } else {
            // Scoped worker threads strided over the candidate set; results
            // land in per-index slots, so scheduling order cannot influence
            // the outcome.
            type ScoredChunk = Result<Vec<(usize, Option<f64>)>, SynthesisError>;
            let chunks: Vec<ScoredChunk> = std::thread::scope(|scope| {
                let score = &score;
                let handles: Vec<_> = (0..threads)
                    .map(|offset| {
                        scope.spawn(move || {
                            (offset..candidates.len())
                                .step_by(threads)
                                .map(|index| Ok((index, score(index)?)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("ranking worker panicked"))
                    .collect()
            });
            for chunk in chunks {
                for (index, gain) in chunk? {
                    gains[index] = gain;
                }
            }
        }

        let mut ranked: Vec<(usize, f64)> = gains
            .into_iter()
            .enumerate()
            .filter_map(|(index, gain)| gain.map(|gain| (index, gain)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(ranked)
    }

    /// Worker-thread count for one ranking stage.
    fn ranking_threads(&self, candidate_count: usize) -> usize {
        if !self.config.engine.parallel_ranking {
            return 1;
        }
        let configured = self.config.engine.ranking_threads;
        let available = if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        available.min(candidate_count).max(1)
    }
}

// ------------------------------------------------------------- report codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`SynthesisReport`]'s wire layout. The report travels
/// between shard worker processes and their coordinator, so the layout is
/// versioned like every cached type.
const TAG_SYNTHESIS_REPORT: u8 = 0x50;

impl Encode for SynthesisReport {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SYNTHESIS_REPORT);
        w.put_f64(self.power_mw);
        w.put_f64(self.power_at_reference_mw);
        self.breakdown.encode(w);
        w.put_f64(self.area);
        w.put_f64(self.vdd);
        w.put_f64(self.enc);
        w.put_f64(self.enc_min);
        w.put_f64(self.enc_limit);
        w.put_f64(self.laxity);
        w.put_f64(self.initial_power_mw);
        w.put_f64(self.initial_area);
        w.put_usize(self.moves_applied);
        w.put_usize(self.passes);
    }
}

impl Decode for SynthesisReport {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SYNTHESIS_REPORT)?;
        Ok(Self {
            power_mw: r.take_f64()?,
            power_at_reference_mw: r.take_f64()?,
            breakdown: Decode::decode(r)?,
            area: r.take_f64()?,
            vdd: r.take_f64()?,
            enc: r.take_f64()?,
            enc_min: r.take_f64()?,
            enc_limit: r.take_f64()?,
            laxity: r.take_f64()?,
            initial_power_mw: r.take_f64()?,
            initial_area: r.take_f64()?,
            moves_applied: r.take_usize()?,
            passes: r.take_usize()?,
        })
    }
}

fn reference_cost(point: &DesignPoint, mode: OptimizationMode) -> f64 {
    match mode {
        OptimizationMode::Power => point.power_at_reference.total_mw(),
        OptimizationMode::Area => point.area,
    }
}

/// Walks a ranked candidate list and returns the first candidate that
/// survives full evaluation, together with its design point. A top-ranked
/// candidate whose full Vdd-scaled evaluation is infeasible no longer aborts
/// the caller's sequence — lower-ranked feasible candidates get their turn.
fn first_feasible<E>(
    ranked: &[(usize, f64)],
    mut evaluate: impl FnMut(usize) -> Result<Option<DesignPoint>, E>,
) -> Result<Option<(usize, DesignPoint)>, E> {
    for &(index, _) in ranked {
        if let Some(point) = evaluate(index)? {
            return Ok(Some((index, point)));
        }
    }
    Ok(None)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;

    fn setup(bench: impact_benchmarks::Benchmark, passes: usize) -> (Cdfg, ExecutionTrace) {
        let cdfg = bench.compile().unwrap();
        let inputs = bench.input_sequences(passes, 17);
        let trace = simulate(&cdfg, &inputs).unwrap();
        (cdfg, trace)
    }

    fn quick(config: SynthesisConfig) -> SynthesisConfig {
        config.with_effort(2, 3)
    }

    #[test]
    fn power_mode_reduces_power_versus_the_initial_architecture() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(
            outcome.report.power_at_reference_mw <= outcome.report.initial_power_mw + 1e-9,
            "search must not end on a worse design ({} vs {})",
            outcome.report.power_at_reference_mw,
            outcome.report.initial_power_mw
        );
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
        assert!(outcome.report.vdd <= 5.0);
    }

    #[test]
    fn area_mode_reduces_area_and_respects_the_enc_budget() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::area_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(outcome.report.area < outcome.report.initial_area);
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn higher_laxity_never_increases_optimized_power() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let tight = Impact::new(quick(SynthesisConfig::power_optimized(1.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        let relaxed = Impact::new(quick(SynthesisConfig::power_optimized(3.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(
            relaxed.report.power_mw <= tight.report.power_mw + 1e-9,
            "more slack must not hurt power ({} vs {})",
            relaxed.report.power_mw,
            tight.report.power_mw
        );
        assert!(relaxed.report.vdd <= tight.report.vdd + 1e-9);
    }

    #[test]
    fn committed_moves_report_their_pass_and_kind() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        for record in &outcome.history {
            assert!(record.pass < outcome.report.passes);
            assert!(!record.applied.kind().is_empty());
        }
        assert_eq!(outcome.history.len(), outcome.report.moves_applied);
    }

    #[test]
    fn infeasible_laxity_is_reported() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 8);
        assert!(matches!(
            Impact::new(SynthesisConfig::power_optimized(0.5)).synthesize(&cdfg, &trace),
            Err(SynthesisError::InfeasibleLaxity { .. })
        ));
    }

    #[test]
    fn data_dominated_designs_are_handled_too() {
        let (cdfg, trace) = setup(impact_benchmarks::paulin(), 6);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert!(outcome.report.power_mw > 0.0);
        assert!(outcome.report.enc <= outcome.report.enc_limit + crate::evaluate::ENC_EPS);
    }

    #[test]
    fn infeasible_top_candidate_falls_through_to_the_next_ranked_one() {
        // Regression for the pass-abort bug: the engine used to `break` the
        // whole sequence when the top-ranked candidate's full evaluation came
        // back infeasible, discarding feasible lower-ranked candidates.
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 8);
        let evaluator = Evaluator::new(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(2.0).with_effort(1, 1),
        )
        .unwrap();
        let template = evaluator.initial_point().unwrap();
        let ranked = vec![(0usize, 3.0), (1, 2.0), (2, 1.0)];
        let mut probed = Vec::new();
        let result = first_feasible(&ranked, |index| -> Result<_, SynthesisError> {
            probed.push(index);
            // The best-gain candidate is infeasible under full evaluation.
            Ok((index != 0).then(|| template.clone()))
        })
        .unwrap();
        let (chosen, _) = result.expect("a lower-ranked feasible candidate is committed");
        assert_eq!(chosen, 1, "the next-ranked candidate is chosen");
        assert_eq!(probed, vec![0, 1], "ranking order is respected");
        // When every candidate is infeasible the step (not the whole pass
        // machinery) reports exhaustion.
        let none = first_feasible(&ranked, |_| -> Result<_, SynthesisError> { Ok(None) }).unwrap();
        assert!(none.is_none());
        // Errors propagate immediately.
        let err = first_feasible(
            &ranked,
            |_| -> Result<Option<DesignPoint>, SynthesisError> {
                Err(SynthesisError::InfeasibleLaxity { laxity: 0.0 })
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn ranking_is_deterministic_across_thread_counts() {
        // The parallel ranking stage must not let scheduling order leak into
        // candidate choice: any thread count yields the same winner and the
        // same synthesis result.
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 10);
        let mut configs = Vec::new();
        for threads in [1usize, 2, 5] {
            let mut engine = crate::EngineConfig::incremental();
            engine.ranking_threads = threads;
            configs.push(quick(SynthesisConfig::power_optimized(2.0)).with_engine(engine));
        }
        let baseline = Impact::new(configs[0].clone())
            .synthesize(&cdfg, &trace)
            .unwrap();
        for config in &configs[1..] {
            let outcome = Impact::new(config.clone())
                .synthesize(&cdfg, &trace)
                .unwrap();
            assert_eq!(outcome.report.power_mw, baseline.report.power_mw);
            assert_eq!(outcome.report.vdd, baseline.report.vdd);
            assert_eq!(outcome.history.len(), baseline.history.len());
            for (a, b) in outcome.history.iter().zip(&baseline.history) {
                assert_eq!(a.applied, b.applied);
            }
        }
    }

    #[test]
    fn sequential_and_incremental_engines_agree_bit_for_bit() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let config = quick(SynthesisConfig::power_optimized(2.0));
        let sequential = Impact::new(
            config
                .clone()
                .with_engine(crate::EngineConfig::sequential()),
        )
        .synthesize(&cdfg, &trace)
        .unwrap();
        let incremental = Impact::new(config.with_engine(crate::EngineConfig::incremental()))
            .synthesize(&cdfg, &trace)
            .unwrap();
        assert_eq!(sequential.report.power_mw, incremental.report.power_mw);
        assert_eq!(
            sequential.report.power_at_reference_mw,
            incremental.report.power_at_reference_mw
        );
        assert_eq!(sequential.report.area, incremental.report.area);
        assert_eq!(sequential.report.vdd, incremental.report.vdd);
        assert_eq!(sequential.report.enc, incremental.report.enc);
        assert_eq!(sequential.design, incremental.design);
        assert_eq!(
            sequential.report.moves_applied,
            incremental.report.moves_applied
        );
        // The sequential engine never touches the cache; the incremental one
        // uses it heavily.
        assert_eq!(
            sequential.cache_stats.hits + sequential.cache_stats.misses,
            0
        );
        assert!(incremental.cache_stats.hits > 0);
    }

    #[test]
    fn final_schedule_covers_every_functional_operation() {
        let (cdfg, trace) = setup(impact_benchmarks::gcd(), 12);
        let outcome = Impact::new(quick(SynthesisConfig::power_optimized(2.0)))
            .synthesize(&cdfg, &trace)
            .unwrap();
        for (id, node) in cdfg.nodes() {
            if node.operation.needs_functional_unit() {
                assert!(outcome.schedule.stg.state_of(id).is_some());
            }
        }
    }
}
