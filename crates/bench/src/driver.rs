//! The batch job driver: many `(benchmark, configuration)` synthesis jobs
//! scheduled over a scoped worker pool, optionally sharing one
//! [`SweepSession`] — plus the CLI and report plumbing every bench binary
//! shares ([`BenchCli`], [`example_designs`], [`report_json`],
//! [`write_report`], [`min_metric`], [`fail_if`], [`TimedBatch`]).
//!
//! Every experiment driver that used to hand-roll its own timing loop
//! (`engine_bench`, the Figure 13 sweep) now goes through [`run_batch`]: one
//! place that claims jobs off a shared queue, times each synthesis, and
//! returns results in submission order regardless of which worker finished
//! first. Synthesis itself is deterministic under any worker or
//! ranking-thread count, so parallel batches produce bit-identical reports to
//! sequential ones — the pool only changes wall-clock.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use impact_behsim::ExecutionTrace;
use impact_benchmarks::Benchmark;
use impact_cdfg::Cdfg;
use impact_core::{Impact, SweepSession, SynthesisConfig, SynthesisOutcome};

/// One synthesis job of a batch: a prepared workload plus the configuration
/// to synthesize it under.
#[derive(Clone, Debug)]
pub struct SweepJob<'a> {
    /// Job label carried into the result (e.g. `power@1.4`).
    pub label: String,
    /// Compiled benchmark.
    pub cdfg: &'a Cdfg,
    /// Its behavioral trace.
    pub trace: &'a ExecutionTrace,
    /// Synthesis configuration of this job.
    pub config: SynthesisConfig,
}

impl<'a> SweepJob<'a> {
    /// Creates a job.
    pub fn new(
        label: impl Into<String>,
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
    ) -> Self {
        Self {
            label: label.into(),
            cdfg,
            trace,
            config,
        }
    }
}

/// Outcome of one batch job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The synthesis outcome.
    pub outcome: SynthesisOutcome,
    /// Wall-clock of this job's `synthesize` call, in milliseconds.
    pub wall_ms: f64,
}

/// Resolves a worker-count request: `0` means one per available CPU, and the
/// pool never outnumbers the jobs.
fn effective_workers(requested: usize, jobs: usize) -> usize {
    let available = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    available.min(jobs).max(1)
}

/// Runs every job, optionally against one shared session, over `workers`
/// scoped worker threads (`0` = one per available CPU; `1` runs the jobs
/// in submission order on the calling thread, which keeps per-job timing
/// honest for benchmarking). Results come back in submission order.
///
/// # Panics
///
/// Panics when a job's synthesis fails — batch jobs run the curated
/// benchmark suite, where failure indicates a bug, not an input problem.
pub fn run_batch(
    jobs: &[SweepJob<'_>],
    session: Option<&SweepSession>,
    workers: usize,
) -> Vec<JobResult> {
    let run_one = |job: &SweepJob<'_>| -> JobResult {
        let engine = Impact::new(job.config.clone());
        let started = Instant::now();
        let outcome = match session {
            Some(session) => engine.synthesize_with_session(job.cdfg, job.trace, session),
            None => engine.synthesize(job.cdfg, job.trace),
        }
        .unwrap_or_else(|error| panic!("batch job `{}` failed: {error}", job.label));
        JobResult {
            label: job.label.clone(),
            outcome,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    };

    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        return jobs.iter().map(run_one).collect();
    }

    // Work-stealing by atomic claim; each result lands in its job's slot, so
    // finish order cannot reorder (or drop) results.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                let result = run_one(job);
                *slots[index]
                    .lock()
                    .expect("a bench job never panics while holding its result slot") =
                    Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after the scope joined")
                .expect("every claimed job stored its result")
        })
        .collect()
}

/// Parsed command line of a bench binary: the flags every driver shares
/// (`--smoke`, `--paper`, `--out PATH`) plus typed access to
/// binary-specific arguments.
#[derive(Clone, Debug)]
pub struct BenchCli {
    args: Vec<String>,
}

impl BenchCli {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Builds a CLI from an explicit argument list (for tests).
    pub fn from_args(args: Vec<String>) -> Self {
        Self { args }
    }

    /// Whether a bare flag (e.g. `--smoke`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// `--smoke`: reduced inputs so CI tracks the trajectory in seconds.
    pub fn smoke(&self) -> bool {
        self.flag("--smoke")
    }

    /// `--paper`: the full 11-point laxity grid of Figure 13.
    pub fn paper(&self) -> bool {
        self.flag("--paper")
    }

    /// The mode label reports carry: `"smoke"` or `"full"`.
    pub fn mode(&self) -> &'static str {
        if self.smoke() {
            "smoke"
        } else {
            "full"
        }
    }

    /// The operand following `key` (e.g. `--workers 4`), verbatim.
    pub fn value(&self, key: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .cloned()
    }

    /// The operand following `key`, parsed; `None` when absent or malformed.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.value(key).and_then(|v| v.parse().ok())
    }

    /// The report path: `--out PATH` or the binary's default.
    pub fn out_path(&self, default: &str) -> String {
        self.value("--out").unwrap_or_else(|| default.to_string())
    }

    /// `--ranking-threads N`: pin the engine's inner ranking parallelism
    /// (`0`, the default, means one thread per available CPU). Shard workers
    /// pass `1` so N worker processes don't each spawn a full ranking pool on
    /// the same machine. Ranking is deterministic under any thread count.
    pub fn ranking_threads(&self) -> usize {
        self.parsed("--ranking-threads").unwrap_or(0)
    }
}

/// The example designs the comparison benches run on, smallest first.
pub fn example_designs() -> Vec<Benchmark> {
    vec![
        impact_benchmarks::gcd(),
        impact_benchmarks::x25_send(),
        impact_benchmarks::dealer(),
        impact_benchmarks::paulin(),
    ]
}

/// Assembles the report envelope the bench binaries share: scalar header
/// fields (values are raw JSON), one or more named arrays of pre-rendered
/// objects, and a `headline` object.
pub fn report_json(
    scalars: &[(&str, String)],
    arrays: &[(&str, &[String])],
    headline: &str,
) -> String {
    let mut out = String::from("{\n");
    for (name, value) in scalars {
        out.push_str(&format!("  \"{name}\": {value},\n"));
    }
    for (name, items) in arrays {
        out.push_str(&format!("  \"{name}\": [\n"));
        for (i, item) in items.iter().enumerate() {
            out.push_str(&format!(
                "    {item}{}\n",
                if i + 1 < items.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str(&format!("  \"headline\": {headline}\n"));
    out.push_str("}\n");
    out
}

/// Writes a report to `path` and logs the destination.
///
/// # Panics
///
/// Panics when the path is not writable — bench reports are the product of
/// the run, so failing to record them is a hard error.
pub fn write_report(path: &str, json: &str) {
    let mut file = std::fs::File::create(path).expect("bench output file is writable");
    file.write_all(json.as_bytes())
        .expect("bench output writes");
    println!("wrote {path}");
}

/// The smallest value of `metric` across `results` (`0.0` for an empty
/// slice) — the conservative summary the bench headlines report.
pub fn min_metric<T>(results: &[T], metric: impl Fn(&T) -> f64) -> f64 {
    let min = results.iter().map(metric).fold(f64::INFINITY, f64::min);
    if min.is_finite() {
        min
    } else {
        0.0
    }
}

/// Exits non-zero with `FAIL: message` when `diverged` holds, making a
/// bench's equivalence check a hard gate wherever it runs.
pub fn fail_if(diverged: bool, message: &str) {
    if diverged {
        eprintln!("FAIL: {message}");
        std::process::exit(1);
    }
}

/// Best-of-N repeat runner for timing-sensitive comparisons: every `run`
/// repeats the identical experiment (a fresh session per repeat when
/// requested, so repeats stay cold) and the fastest repeat's results,
/// wall-clock and session are kept. Taking the minimum of identical runs is
/// the standard way to recover the stable floor under machine noise.
pub struct TimedBatch {
    results: Option<Vec<JobResult>>,
    best_ms: f64,
    session: Option<SweepSession>,
}

impl TimedBatch {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self {
            results: None,
            best_ms: f64::INFINITY,
            session: None,
        }
    }

    /// Runs one repeat on a single worker and keeps it if it was fastest.
    pub fn run(&mut self, jobs: &[SweepJob<'_>], with_session: bool) {
        let session = with_session.then(SweepSession::new);
        let started = Instant::now();
        let results = run_batch(jobs, session.as_ref(), 1);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        if ms < self.best_ms {
            self.best_ms = ms;
            self.results = Some(results);
            self.session = session;
        }
    }

    /// Fastest repeat's wall-clock, in milliseconds.
    pub fn best_ms(&self) -> f64 {
        self.best_ms
    }

    /// Fastest repeat's results.
    ///
    /// # Panics
    ///
    /// Panics when no repeat ran.
    pub fn into_results(self) -> Vec<JobResult> {
        self.results.expect("at least one repeat runs")
    }

    /// Fastest repeat's results and (when sessions were requested) session.
    ///
    /// # Panics
    ///
    /// Panics when no repeat ran.
    pub fn into_parts(self) -> (Vec<JobResult>, Option<SweepSession>) {
        (
            self.results.expect("at least one repeat runs"),
            self.session,
        )
    }
}

impl Default for TimedBatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_core::EngineConfig;

    #[test]
    fn batches_preserve_submission_order_and_match_sequential_runs() {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(8, 11)).unwrap();
        let jobs: Vec<SweepJob<'_>> = [1.0, 1.6, 2.2]
            .iter()
            .map(|&laxity| {
                SweepJob::new(
                    format!("power@{laxity}"),
                    &cdfg,
                    &trace,
                    SynthesisConfig::power_optimized(laxity).with_effort(2, 3),
                )
            })
            .collect();
        let sequential = run_batch(&jobs, None, 1);
        let session = SweepSession::new();
        let parallel = run_batch(&jobs, Some(&session), 3);
        assert_eq!(sequential.len(), 3);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.label, b.label, "submission order is preserved");
            assert_eq!(a.outcome.report, b.outcome.report, "results are identical");
            assert!(a.wall_ms > 0.0 && b.wall_ms > 0.0);
        }
        assert!(session.stats().hits > 0, "jobs share the session");
    }

    #[test]
    fn worker_counts_resolve_sanely() {
        assert_eq!(effective_workers(1, 10), 1);
        assert_eq!(effective_workers(4, 2), 2);
        assert!(effective_workers(0, 64) >= 1);
        assert_eq!(effective_workers(3, 0), 1);
    }

    #[test]
    fn sequential_engine_jobs_run_through_the_same_path() {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(8, 11)).unwrap();
        let config = SynthesisConfig::power_optimized(2.0)
            .with_effort(1, 2)
            .with_engine(EngineConfig::sequential());
        let jobs = [SweepJob::new("sequential", &cdfg, &trace, config)];
        let results = run_batch(&jobs, None, 1);
        assert_eq!(results[0].outcome.cache_stats.hits, 0);
        assert_eq!(results[0].outcome.cache_stats.misses, 0);
    }
}
