//! The batch job driver: many `(benchmark, configuration)` synthesis jobs
//! scheduled over a scoped worker pool, optionally sharing one
//! [`SweepSession`].
//!
//! Every experiment driver that used to hand-roll its own timing loop
//! (`engine_bench`, the Figure 13 sweep) now goes through [`run_batch`]: one
//! place that claims jobs off a shared queue, times each synthesis, and
//! returns results in submission order regardless of which worker finished
//! first. Synthesis itself is deterministic under any worker or
//! ranking-thread count, so parallel batches produce bit-identical reports to
//! sequential ones — the pool only changes wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use impact_behsim::ExecutionTrace;
use impact_cdfg::Cdfg;
use impact_core::{Impact, SweepSession, SynthesisConfig, SynthesisOutcome};

/// One synthesis job of a batch: a prepared workload plus the configuration
/// to synthesize it under.
#[derive(Clone, Debug)]
pub struct SweepJob<'a> {
    /// Job label carried into the result (e.g. `power@1.4`).
    pub label: String,
    /// Compiled benchmark.
    pub cdfg: &'a Cdfg,
    /// Its behavioral trace.
    pub trace: &'a ExecutionTrace,
    /// Synthesis configuration of this job.
    pub config: SynthesisConfig,
}

impl<'a> SweepJob<'a> {
    /// Creates a job.
    pub fn new(
        label: impl Into<String>,
        cdfg: &'a Cdfg,
        trace: &'a ExecutionTrace,
        config: SynthesisConfig,
    ) -> Self {
        Self {
            label: label.into(),
            cdfg,
            trace,
            config,
        }
    }
}

/// Outcome of one batch job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The synthesis outcome.
    pub outcome: SynthesisOutcome,
    /// Wall-clock of this job's `synthesize` call, in milliseconds.
    pub wall_ms: f64,
}

/// Resolves a worker-count request: `0` means one per available CPU, and the
/// pool never outnumbers the jobs.
fn effective_workers(requested: usize, jobs: usize) -> usize {
    let available = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    available.min(jobs).max(1)
}

/// Runs every job, optionally against one shared session, over `workers`
/// scoped worker threads (`0` = one per available CPU; `1` runs the jobs
/// in submission order on the calling thread, which keeps per-job timing
/// honest for benchmarking). Results come back in submission order.
///
/// # Panics
///
/// Panics when a job's synthesis fails — batch jobs run the curated
/// benchmark suite, where failure indicates a bug, not an input problem.
pub fn run_batch(
    jobs: &[SweepJob<'_>],
    session: Option<&SweepSession>,
    workers: usize,
) -> Vec<JobResult> {
    let run_one = |job: &SweepJob<'_>| -> JobResult {
        let engine = Impact::new(job.config.clone());
        let started = Instant::now();
        let outcome = match session {
            Some(session) => engine.synthesize_with_session(job.cdfg, job.trace, session),
            None => engine.synthesize(job.cdfg, job.trace),
        }
        .unwrap_or_else(|error| panic!("batch job `{}` failed: {error}", job.label));
        JobResult {
            label: job.label.clone(),
            outcome,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    };

    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        return jobs.iter().map(run_one).collect();
    }

    // Work-stealing by atomic claim; each result lands in its job's slot, so
    // finish order cannot reorder (or drop) results.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                let result = run_one(job);
                *slots[index].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after the scope joined")
                .expect("every claimed job stored its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::EngineConfig;

    #[test]
    fn batches_preserve_submission_order_and_match_sequential_runs() {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(8, 11)).unwrap();
        let jobs: Vec<SweepJob<'_>> = [1.0, 1.6, 2.2]
            .iter()
            .map(|&laxity| {
                SweepJob::new(
                    format!("power@{laxity}"),
                    &cdfg,
                    &trace,
                    SynthesisConfig::power_optimized(laxity).with_effort(2, 3),
                )
            })
            .collect();
        let sequential = run_batch(&jobs, None, 1);
        let session = SweepSession::new();
        let parallel = run_batch(&jobs, Some(&session), 3);
        assert_eq!(sequential.len(), 3);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.label, b.label, "submission order is preserved");
            assert_eq!(a.outcome.report, b.outcome.report, "results are identical");
            assert!(a.wall_ms > 0.0 && b.wall_ms > 0.0);
        }
        assert!(session.stats().hits > 0, "jobs share the session");
    }

    #[test]
    fn worker_counts_resolve_sanely() {
        assert_eq!(effective_workers(1, 10), 1);
        assert_eq!(effective_workers(4, 2), 2);
        assert!(effective_workers(0, 64) >= 1);
        assert_eq!(effective_workers(3, 0), 1);
    }

    #[test]
    fn sequential_engine_jobs_run_through_the_same_path() {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(8, 11)).unwrap();
        let config = SynthesisConfig::power_optimized(2.0)
            .with_effort(1, 2)
            .with_engine(EngineConfig::sequential());
        let jobs = [SweepJob::new("sequential", &cdfg, &trace, config)];
        let results = run_batch(&jobs, None, 1);
        assert_eq!(results[0].outcome.cache_stats.hits, 0);
        assert_eq!(results[0].outcome.cache_stats.misses, 0);
    }
}
