//! Experiment drivers regenerating the tables and figures of the IMPACT
//! paper. The binaries in `src/bin/` print the series; the Criterion benches
//! in `benches/` time the underlying computations.
//!
//! Multi-run experiments (the Figure 13 laxity sweep, the engine comparison)
//! are expressed as batches of [`SweepJob`]s over the [`run_batch`] driver,
//! sharing one [`SweepSession`] where the runs cover the same workload.

use std::path::Path;
use std::time::Instant;

use impact_behsim::{simulate, ExecutionTrace};
use impact_benchmarks::Benchmark;
use impact_cdfg::Cdfg;
use impact_core::{
    CacheStats, EngineConfig, ExploreStats, ExplorerKind, Impact, SnapshotScope, SnapshotStats,
    SweepSession, SynthesisConfig, SynthesisOutcome, SynthesisReport,
};
use impact_sched::{uniform_problem, BaselineScheduler, Scheduler, WaveScheduler};

mod driver;
pub mod shard;

pub use driver::{
    example_designs, fail_if, min_metric, report_json, run_batch, write_report, BenchCli,
    JobResult, SweepJob, TimedBatch,
};
pub use shard::{
    benchmark_by_name, decode_reports, run_shard_worker, run_sharded, shard_jobs, ShardSpec,
    SweepShardApp,
};

/// Number of input passes used by the experiment drivers ("typical input
/// sequences"). Kept modest so the full Figure 13 sweep runs in minutes.
pub const DEFAULT_PASSES: usize = 48;

/// Seed used for the deterministic input generators.
pub const DEFAULT_SEED: u64 = 1998;

/// Search effort (improvement passes, sequence length) used by the drivers.
pub const DEFAULT_EFFORT: (usize, usize) = (3, 5);

/// One point of a Figure 13 curve.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Point {
    /// Laxity factor of this point.
    pub laxity: f64,
    /// Power of the Vdd-scaled area-optimized design, normalized to the base.
    pub a_power: f64,
    /// Power of the IMPACT power-optimized design, normalized to the base.
    pub i_power: f64,
    /// Area of the power-optimized design, normalized to the base
    /// area-optimized design (laxity 1.0), as in the paper's I-Area curves.
    pub i_area: f64,
    /// Supply voltage chosen for the power-optimized design, in volts.
    pub i_vdd: f64,
    /// Absolute base power (area-optimized at laxity 1.0, 5 V), in mW.
    pub base_power_mw: f64,
}

/// A full Figure 13 sub-plot: one benchmark's curves.
#[derive(Clone, Debug)]
pub struct Fig13Series {
    /// Benchmark name.
    pub benchmark: String,
    /// The sampled laxity points.
    pub points: Vec<Fig13Point>,
}

impl Fig13Series {
    /// Largest power reduction of `I-Power` versus the 5 V base
    /// (the paper's "up to 6.7-fold" claim).
    pub fn max_reduction_vs_base(&self) -> f64 {
        self.points
            .iter()
            .map(|p| {
                if p.i_power > 0.0 {
                    1.0 / p.i_power
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Largest power reduction of `I-Power` versus `A-Power`
    /// (the paper's "up to 2.6-fold" claim).
    pub fn max_reduction_vs_a_power(&self) -> f64 {
        self.points
            .iter()
            .map(|p| {
                if p.i_power > 0.0 {
                    p.a_power / p.i_power
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Largest area overhead of the power-optimized designs
    /// (the paper's "no more than 30 %" claim).
    pub fn max_area_overhead(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.i_area - 1.0)
            .fold(0.0, f64::max)
    }
}

/// Compiles and simulates a benchmark once (the single behavioral simulation
/// every IMPACT run amortizes).
pub fn prepare(bench: &Benchmark, passes: usize, seed: u64) -> (Cdfg, ExecutionTrace) {
    let cdfg = bench.compile().expect("benchmark sources compile");
    let inputs = bench.input_sequences(passes, seed);
    let trace = simulate(&cdfg, &inputs).expect("benchmark inputs simulate");
    (cdfg, trace)
}

/// Runs one synthesis with the experiment-default effort.
pub fn run(cdfg: &Cdfg, trace: &ExecutionTrace, config: SynthesisConfig) -> SynthesisOutcome {
    let (passes, seq) = DEFAULT_EFFORT;
    Impact::new(config.with_effort(passes, seq))
        .synthesize(cdfg, trace)
        .expect("synthesis succeeds on the benchmark suite")
}

/// Builds the job list of one Figure 13 sweep: the normalization base
/// (area-optimized at laxity 1.0) followed by an area-optimized and a
/// power-optimized run per laxity point. Feed the list to [`run_batch`] and
/// the results to [`assemble_fig13`].
pub fn figure13_jobs<'a>(
    cdfg: &'a Cdfg,
    trace: &'a ExecutionTrace,
    laxities: &[f64],
    effort: (usize, usize),
) -> Vec<SweepJob<'a>> {
    let (passes, seq) = effort;
    let configure = |config: SynthesisConfig| config.with_effort(passes, seq);
    let mut jobs = Vec::with_capacity(1 + 2 * laxities.len());
    jobs.push(SweepJob::new(
        "base",
        cdfg,
        trace,
        configure(SynthesisConfig::area_optimized(1.0)),
    ));
    for &laxity in laxities {
        jobs.push(SweepJob::new(
            format!("area@{laxity:.1}"),
            cdfg,
            trace,
            configure(SynthesisConfig::area_optimized(laxity)),
        ));
        jobs.push(SweepJob::new(
            format!("power@{laxity:.1}"),
            cdfg,
            trace,
            configure(SynthesisConfig::power_optimized(laxity)),
        ));
    }
    jobs
}

/// Normalizes the results of a [`figure13_jobs`] batch into the figure's
/// series (results must be in submission order, as [`run_batch`] returns
/// them).
pub fn assemble_fig13(benchmark: &str, laxities: &[f64], results: &[JobResult]) -> Fig13Series {
    assert_eq!(
        results.len(),
        1 + 2 * laxities.len(),
        "one base plus two runs per laxity point"
    );
    let base = &results[0].outcome.report;
    let base_power = base.power_at_reference_mw;
    let base_area = base.area;
    let points = laxities
        .iter()
        .enumerate()
        .map(|(index, &laxity)| {
            let area_opt = &results[1 + 2 * index].outcome.report;
            let power_opt = &results[2 + 2 * index].outcome.report;
            Fig13Point {
                laxity,
                a_power: area_opt.power_mw / base_power,
                i_power: power_opt.power_mw / base_power,
                i_area: power_opt.area / base_area,
                i_vdd: power_opt.vdd,
                base_power_mw: base_power,
            }
        })
        .collect();
    Fig13Series {
        benchmark: benchmark.to_string(),
        points,
    }
}

/// Computes one benchmark's Figure 13 series over the given laxity points:
/// one shared [`SweepSession`] and a worker pool make the whole sweep close
/// to one cold run's cost, with results identical to independent runs.
pub fn figure13_series(bench: &Benchmark, laxities: &[f64], passes: usize) -> Fig13Series {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let session = SweepSession::new();
    let jobs = figure13_jobs(&cdfg, &trace, laxities, DEFAULT_EFFORT);
    let results = run_batch(&jobs, Some(&session), 0);
    assemble_fig13(bench.name, laxities, &results)
}

/// The laxity grid of the paper (1.0 to 3.0).
pub fn paper_laxities() -> Vec<f64> {
    (0..=10).map(|i| 1.0 + 0.2 * f64::from(i)).collect()
}

/// A coarser laxity grid for quick runs.
pub fn quick_laxities() -> Vec<f64> {
    vec![1.0, 1.5, 2.0, 2.5, 3.0]
}

/// Expected-number-of-cycles comparison between the baseline CFG scheduler
/// and Wavesched on the initial fully-parallel architecture (Section 2.2).
#[derive(Clone, Debug)]
pub struct EncComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// ENC of the baseline scheduler.
    pub baseline_enc: f64,
    /// ENC of the Wavesched-style scheduler.
    pub wavesched_enc: f64,
}

impl EncComparison {
    /// ENC reduction factor (baseline / wavesched).
    pub fn reduction(&self) -> f64 {
        if self.wavesched_enc > 0.0 {
            self.baseline_enc / self.wavesched_enc
        } else {
            0.0
        }
    }
}

/// Runs the scheduler comparison for one benchmark.
pub fn enc_comparison(bench: &Benchmark, passes: usize) -> EncComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let problem = uniform_problem(&cdfg, trace.profile());
    let baseline = BaselineScheduler::new()
        .schedule(&problem)
        .expect("baseline schedules the benchmarks");
    let wave = WaveScheduler::new()
        .schedule(&problem)
        .expect("wavesched schedules the benchmarks");
    EncComparison {
        benchmark: bench.name.to_string(),
        baseline_enc: baseline.enc,
        wavesched_enc: wave.enc,
    }
}

/// Formats a normalized value the way the figures label them.
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// One benchmark's sequential-vs-incremental engine comparison: wall-clock of
/// both engine configurations on the same synthesis run, whether the reports
/// agree bit-for-bit, and the incremental engine's cache counters.
#[derive(Clone, Debug)]
pub struct EngineComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// CDFG size (nodes), the rough proxy for design size.
    pub nodes: usize,
    /// Wall-clock of `Impact::synthesize` with the brute-force sequential
    /// engine, in milliseconds.
    pub sequential_ms: f64,
    /// Wall-clock with the incremental (cached + parallel-ranking) engine, in
    /// milliseconds.
    pub incremental_ms: f64,
    /// Whether both engines produced bit-identical synthesis reports.
    pub identical: bool,
    /// Evaluation-cache counters of the incremental run.
    pub cache: CacheStats,
}

impl EngineComparison {
    /// Sequential over incremental wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms > 0.0 {
            self.sequential_ms / self.incremental_ms
        } else {
            0.0
        }
    }
}

/// Exact (bit-for-bit) equality of two synthesis reports.
pub fn reports_identical(a: &SynthesisReport, b: &SynthesisReport) -> bool {
    a == b
}

/// Runs one benchmark through both engine configurations and times them via
/// the batch driver (one worker, so per-job timing stays honest).
/// `effort` is `(max_passes, max_sequence_length)`.
pub fn engine_comparison(
    bench: &Benchmark,
    passes: usize,
    effort: (usize, usize),
    laxity: f64,
) -> EngineComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let config = SynthesisConfig::power_optimized(laxity).with_effort(effort.0, effort.1);
    let jobs = [
        SweepJob::new(
            "sequential",
            &cdfg,
            &trace,
            config.clone().with_engine(EngineConfig::sequential()),
        ),
        SweepJob::new(
            "incremental",
            &cdfg,
            &trace,
            config.with_engine(EngineConfig::incremental()),
        ),
    ];
    let results = run_batch(&jobs, None, 1);
    let (sequential, incremental) = (&results[0], &results[1]);

    EngineComparison {
        benchmark: bench.name.to_string(),
        nodes: cdfg.node_count(),
        sequential_ms: sequential.wall_ms,
        incremental_ms: incremental.wall_ms,
        identical: reports_identical(&sequential.outcome.report, &incremental.outcome.report),
        cache: incremental.outcome.cache_stats,
    }
}

/// One benchmark's cold-vs-shared-session Figure 13 sweep comparison: the
/// wall-clock of running every `(laxity, mode)` job independently (fresh
/// per-run caches, one at a time — the historical sweep cost) against the
/// batch driver with one shared [`SweepSession`], plus a sharded-search
/// check: two half-sweeps populate independent sessions which are `merge`d
/// and replayed over the full job list. A third measurement — the cold jobs
/// over the *same* worker pool — separates what the pool contributes from
/// what session sharing contributes.
#[derive(Clone, Debug)]
pub struct SweepComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of laxity points swept.
    pub laxity_points: usize,
    /// Wall-clock of the sequential cold sweep (the historical
    /// `figure13_series` cost), in milliseconds.
    pub cold_ms: f64,
    /// Wall-clock of the cold sweep over the same worker pool as the
    /// shared-session run (fresh per-run caches), in milliseconds.
    pub cold_parallel_ms: f64,
    /// Wall-clock of the shared-session sweep, in milliseconds.
    pub shared_ms: f64,
    /// Whether every job of the shared-session sweep reproduced the cold
    /// run's report bit-for-bit.
    pub identical: bool,
    /// Whether replaying the sweep over the merged shard sessions reproduced
    /// the cold reports bit-for-bit.
    pub merged_identical: bool,
    /// Cache counters of the shared session after its sweep.
    pub shared_cache: CacheStats,
    /// Cache counters of the merged session after its replay sweep.
    pub merged_cache: CacheStats,
}

impl SweepComparison {
    /// Sequential cold over shared-session wall-clock: the end-to-end win of
    /// the batch driver plus session sharing versus the historical sweep.
    pub fn speedup(&self) -> f64 {
        if self.shared_ms > 0.0 {
            self.cold_ms / self.shared_ms
        } else {
            0.0
        }
    }

    /// Parallel cold over shared-session wall-clock: the contribution of
    /// session sharing alone, with the worker pool held constant.
    pub fn cache_speedup(&self) -> f64 {
        if self.shared_ms > 0.0 {
            self.cold_parallel_ms / self.shared_ms
        } else {
            0.0
        }
    }
}

/// Whether two batch results carry bit-identical synthesis reports, job by
/// job.
pub fn batches_identical(a: &[JobResult], b: &[JobResult]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| reports_identical(&x.outcome.report, &y.outcome.report))
}

/// One-line rendering of the per-layer cache counters, for the bench
/// summaries: `layer hits/misses (hit%)` from cheapest to most expensive to
/// recompute.
pub fn format_layer_stats(stats: &CacheStats) -> String {
    let layer = |name: &str, layer: impact_core::LayerStats| {
        format!(
            "{name} {}/{} ({:.1}%)",
            layer.hits,
            layer.misses,
            100.0 * layer.hit_rate()
        )
    };
    format!(
        "{} | {} | {} | {} | {} | {} | {} | {} | {}",
        layer("stats", stats.trace_stats),
        layer("context", stats.context),
        layer("block", stats.block),
        layer("schedule", stats.schedule),
        layer("point", stats.point),
        layer("scaled", stats.scaled),
        format_merge_stats(&stats.merge),
        format_snapshot_stats(&stats.snapshot),
        format_explore_stats(&stats.explore),
    )
}

/// One-line rendering of the explorer counters: full probes (plus the
/// cheap reference-supply ranking probes), commits, exact reverts, the
/// widest beam actually realized, restarts taken, and Pareto kept/dominated.
pub fn format_explore_stats(stats: &ExploreStats) -> String {
    format!(
        "explore probes {} (rank {}) commits {} reverts {} beam {} restarts {} pareto {}/{}",
        stats.probes,
        stats.rank_probes,
        stats.commits,
        stats.reverts,
        stats.beam_width,
        stats.restarts,
        stats.pareto_kept,
        stats.pareto_dominated,
    )
}

/// One-line rendering of the cumulative merge counters: `merge absorbed N
/// dup N dropped N` (entries a session took in through `absorb` — shard
/// exchanges, snapshot loads, session merges — vs duplicate-skipped and
/// capacity-dropped offers).
pub fn format_merge_stats(stats: &impact_core::AbsorbStats) -> String {
    format!(
        "merge absorbed {} dup {} dropped {}",
        stats.absorbed, stats.duplicates, stats.dropped
    )
}

/// One-line rendering of the snapshot save/load counters, including the
/// per-reason load rejections: `snapshot saves N loads N rejected N
/// (version N, digest N, truncated N)`.
pub fn format_snapshot_stats(stats: &SnapshotStats) -> String {
    format!(
        "snapshot saves {} loads {} rejected {} (version {}, digest {}, truncated {})",
        stats.saves,
        stats.loads,
        stats.rejected(),
        stats.rejected_version,
        stats.rejected_digest,
        stats.rejected_truncated,
    )
}

/// One benchmark's three-way delta-evaluation comparison over the same
/// laxity sweep:
///
/// * **cold** — the PR 2 evaluator: full-rebuild engine, one private cache
///   per run (no cross-run sharing),
/// * **shared** — the PR 3 path: full-rebuild engine over one shared
///   [`SweepSession`],
/// * **delta** — this PR: move-delta patched fingerprints/contexts plus
///   schedule memoization over one shared session.
///
/// All three must produce bit-identical reports, job for job.
#[derive(Clone, Debug)]
pub struct DeltaComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of laxity points swept.
    pub laxity_points: usize,
    /// Wall-clock of the cold full-rebuild sweep (per-run caches), in ms.
    pub cold_ms: f64,
    /// Wall-clock of the shared-session full-rebuild sweep, in ms.
    pub shared_ms: f64,
    /// Wall-clock of the shared-session delta sweep, in ms.
    pub delta_ms: f64,
    /// Whether every job of all three sweeps reported bit-identically.
    pub identical: bool,
    /// Cache counters of the delta sweep's session.
    pub delta_cache: CacheStats,
}

impl DeltaComparison {
    /// Cold (PR 2) over delta wall-clock.
    pub fn speedup_vs_cold(&self) -> f64 {
        if self.delta_ms > 0.0 {
            self.cold_ms / self.delta_ms
        } else {
            0.0
        }
    }

    /// Shared-session (PR 3) over delta wall-clock: the contribution of
    /// delta patching and schedule memoization alone.
    pub fn speedup_vs_shared(&self) -> f64 {
        if self.delta_ms > 0.0 {
            self.shared_ms / self.delta_ms
        } else {
            0.0
        }
    }
}

/// Runs one benchmark's Figure 13 sweep through the three evaluator
/// generations (cold rebuild, shared rebuild, shared delta) on a single
/// worker (so per-sweep timing stays honest) and checks all three agree
/// bit-for-bit. `effort` is `(max_passes, max_sequence_length)`.
pub fn delta_comparison(
    bench: &Benchmark,
    laxities: &[f64],
    passes: usize,
    effort: (usize, usize),
) -> DeltaComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let jobs_with = |engine: EngineConfig| -> Vec<SweepJob<'_>> {
        figure13_jobs(&cdfg, &trace, laxities, effort)
            .into_iter()
            .map(|mut job| {
                job.config = job.config.with_engine(engine);
                job
            })
            .collect()
    };

    // PR 2 baseline: full rebuild, a fresh private cache per run.
    let cold_jobs = jobs_with(EngineConfig::full_rebuild());
    let started = Instant::now();
    let cold = run_batch(&cold_jobs, None, 1);
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;

    // PR 3 baseline: full rebuild over one shared session.
    let shared_session = SweepSession::new();
    let started = Instant::now();
    let shared = run_batch(&cold_jobs, Some(&shared_session), 1);
    let shared_ms = started.elapsed().as_secs_f64() * 1e3;

    // This PR: delta-patched evaluation over one shared session.
    let delta_jobs = jobs_with(EngineConfig::incremental());
    let delta_session = SweepSession::new();
    let started = Instant::now();
    let delta = run_batch(&delta_jobs, Some(&delta_session), 1);
    let delta_ms = started.elapsed().as_secs_f64() * 1e3;

    DeltaComparison {
        benchmark: bench.name.to_string(),
        laxity_points: laxities.len(),
        cold_ms,
        shared_ms,
        delta_ms,
        identical: batches_identical(&cold, &shared) && batches_identical(&cold, &delta),
        delta_cache: delta_session.stats(),
    }
}

/// One benchmark's three-way schedule-repair comparison over the same laxity
/// sweep:
///
/// * **cold** — the PR 2 evaluator: full-rebuild engine, one private cache
///   per run (no schedule memoization, no repair),
/// * **memoized** — the PR 4 delta evaluator: delta patching and
///   whole-schedule memoization over one shared [`SweepSession`], every memo
///   miss paying a full hierarchical reschedule
///   ([`EngineConfig::full_reschedule`]),
/// * **repaired** — this PR: on a memo miss only the blocks the move touched
///   are list-scheduled; untouched blocks splice from the parent schedule or
///   the shared per-block layer.
///
/// All three must produce bit-identical reports, job for job.
#[derive(Clone, Debug)]
pub struct RepairComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of laxity points swept.
    pub laxity_points: usize,
    /// Wall-clock of the cold full-rebuild sweep (per-run caches), in ms.
    pub cold_ms: f64,
    /// Wall-clock of the shared-session full-reschedule (PR 4) sweep, in ms.
    pub memoized_ms: f64,
    /// Wall-clock of the shared-session repaired sweep, in ms.
    pub repaired_ms: f64,
    /// Whether every job of all three sweeps reported bit-identically.
    pub identical: bool,
    /// Cache counters of the repaired sweep's session.
    pub repaired_cache: CacheStats,
}

impl RepairComparison {
    /// Cold (PR 2) over repaired wall-clock.
    pub fn speedup_vs_cold(&self) -> f64 {
        if self.repaired_ms > 0.0 {
            self.cold_ms / self.repaired_ms
        } else {
            0.0
        }
    }

    /// Memoized (PR 4) over repaired wall-clock: the contribution of
    /// block-granular repair alone, with delta patching and schedule
    /// memoization held constant.
    pub fn speedup_vs_memoized(&self) -> f64 {
        if self.repaired_ms > 0.0 {
            self.memoized_ms / self.repaired_ms
        } else {
            0.0
        }
    }
}

/// Timed sweeps per generation in [`repair_comparison`]; the fastest repeat
/// is reported. The three generations differ only in the scheduling stage,
/// so a single scheduler-level measurement is easily drowned by machine
/// noise — taking the minimum of a few identical cold runs (each repeat gets
/// a fresh session) is the standard way to recover the stable floor.
const REPAIR_BENCH_REPEATS: usize = 7;

/// Runs one benchmark's Figure 13 sweep through the cold, memoized (PR 4)
/// and repaired evaluator generations on a single worker (so per-sweep
/// timing stays honest) and checks all three agree bit-for-bit. `effort` is
/// `(max_passes, max_sequence_length)`.
pub fn repair_comparison(
    bench: &Benchmark,
    laxities: &[f64],
    passes: usize,
    effort: (usize, usize),
) -> RepairComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let jobs_with = |engine: EngineConfig| -> Vec<SweepJob<'_>> {
        figure13_jobs(&cdfg, &trace, laxities, effort)
            .into_iter()
            .map(|mut job| {
                job.config = job.config.with_engine(engine);
                job
            })
            .collect()
    };
    // Every repeat runs the identical cold experiment (fresh session each
    // time); the fastest repeat per generation is the noise-free estimate.
    // The generations are *interleaved* within each round so a slow machine
    // phase degrades all three equally instead of biasing one.
    //
    // PR 2 baseline: full rebuild, a fresh private cache per run. PR 4
    // baseline: the delta evaluator with repair disabled — every
    // schedule-memo miss reschedules the whole CDFG. This PR: block-granular
    // schedule repair over one shared session.
    let cold_jobs = jobs_with(EngineConfig::full_rebuild());
    let memo_jobs = jobs_with(EngineConfig::full_reschedule());
    let repair_jobs = jobs_with(EngineConfig::incremental());
    let (mut cold, mut memoized, mut repaired) =
        (TimedBatch::new(), TimedBatch::new(), TimedBatch::new());
    for _ in 0..REPAIR_BENCH_REPEATS {
        cold.run(&cold_jobs, false);
        memoized.run(&memo_jobs, true);
        repaired.run(&repair_jobs, true);
    }

    let (cold_ms, memoized_ms, repaired_ms) =
        (cold.best_ms(), memoized.best_ms(), repaired.best_ms());
    let cold_results = cold.into_results();
    let memo_results = memoized.into_results();
    let (repair_results, repair_session) = repaired.into_parts();
    RepairComparison {
        benchmark: bench.name.to_string(),
        laxity_points: laxities.len(),
        cold_ms,
        memoized_ms,
        repaired_ms,
        identical: batches_identical(&cold_results, &memo_results)
            && batches_identical(&cold_results, &repair_results),
        repaired_cache: repair_session
            .expect("the repaired generation runs with a session")
            .stats(),
    }
}

/// Runs one benchmark's Figure 13 sweep cold, shared and merged-sharded, and
/// checks all three agree. `effort` is `(max_passes, max_sequence_length)`;
/// `workers` is the pool size of the shared-session runs (`0` = one per CPU).
pub fn sweep_comparison(
    bench: &Benchmark,
    laxities: &[f64],
    passes: usize,
    effort: (usize, usize),
    workers: usize,
) -> SweepComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let jobs = figure13_jobs(&cdfg, &trace, laxities, effort);

    // Cold: every job pays the full cost, sequentially (the pre-session
    // behavior of `figure13_series`).
    let started = Instant::now();
    let cold = run_batch(&jobs, None, 1);
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;

    // Cold over the same worker pool: isolates what the pool contributes so
    // the session's share of the speedup is measured apples-to-apples.
    let started = Instant::now();
    let cold_parallel = run_batch(&jobs, None, workers);
    let cold_parallel_ms = started.elapsed().as_secs_f64() * 1e3;

    // Shared session over a worker pool.
    let session = SweepSession::new();
    let started = Instant::now();
    let shared = run_batch(&jobs, Some(&session), workers);
    let shared_ms = started.elapsed().as_secs_f64() * 1e3;

    // Sharded search: two independently populated half-sweep sessions,
    // merged, then replayed over the full job list.
    let (half_a, half_b) = laxities.split_at(laxities.len() / 2);
    let merged = SweepSession::new();
    for half in [half_a, half_b] {
        let shard = SweepSession::new();
        run_batch(
            &figure13_jobs(&cdfg, &trace, half, effort),
            Some(&shard),
            workers,
        );
        merged.merge_from(&shard);
    }
    let replay = run_batch(&jobs, Some(&merged), workers);

    SweepComparison {
        benchmark: bench.name.to_string(),
        laxity_points: laxities.len(),
        cold_ms,
        cold_parallel_ms,
        shared_ms,
        identical: batches_identical(&cold, &cold_parallel) && batches_identical(&cold, &shared),
        merged_identical: batches_identical(&cold, &replay),
        shared_cache: session.stats(),
        merged_cache: merged.stats(),
    }
}

/// One benchmark's cold-vs-warm-start comparison: a sweep over a fresh
/// session, a snapshot save, a load into a second fresh session, and a rerun
/// of the same sweep against the loaded entries. The warm rerun must
/// reproduce the cold reports bit-for-bit and answer every design-point
/// lookup from the snapshot.
#[derive(Clone, Debug)]
pub struct WarmStartComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of laxity points swept.
    pub laxity_points: usize,
    /// Wall-clock of the cold sweep, in milliseconds.
    pub cold_ms: f64,
    /// Wall-clock of the warm rerun, in milliseconds.
    pub warm_ms: f64,
    /// Wall-clock of encoding the snapshot, in milliseconds.
    pub save_ms: f64,
    /// Wall-clock of verifying + absorbing the snapshot, in milliseconds.
    pub load_ms: f64,
    /// Size of the encoded snapshot, in bytes.
    pub snapshot_bytes: usize,
    /// Entries the warm session absorbed from the snapshot.
    pub absorbed: usize,
    /// Whether the warm rerun reproduced the cold reports bit-for-bit.
    pub identical: bool,
    /// Whether a snapshot file from a previous process already existed and
    /// was byte-identical to this run's fresh save (cross-process
    /// determinism; always `false` without a snapshot path or on the first
    /// run against one).
    pub resumed: bool,
    /// Cache counters of the warm session after the rerun (its `snapshot`
    /// field carries the save/load counters of this comparison).
    pub warm_cache: CacheStats,
}

impl WarmStartComparison {
    /// Cold over warm wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            0.0
        }
    }

    /// Point-layer hit rate of the warm rerun.
    pub fn point_hit_rate(&self) -> f64 {
        self.warm_cache.point.hit_rate()
    }

    /// Whether the warm rerun answered every design-point lookup from the
    /// snapshot (100 % point-layer hit rate).
    pub fn fully_warm(&self) -> bool {
        self.warm_cache.point.hits > 0 && self.warm_cache.point.misses == 0
    }
}

/// Runs one benchmark's Figure 13 sweep cold, snapshots the session, reloads
/// the snapshot into a fresh session and reruns the sweep warm. With a
/// `snapshot_path` the bytes round-trip through the filesystem (atomic write,
/// verified load) and `resumed` reports whether a pre-existing file from an
/// earlier process was byte-identical to this run's save; without one the
/// bytes stay in memory. `effort` is `(max_passes, max_sequence_length)`;
/// `workers` sizes the pool of both sweeps (`0` = one per CPU).
///
/// # Panics
///
/// Panics when the snapshot this run just saved fails verification — that is
/// a codec bug, not an input problem — or when `snapshot_path` is not
/// writable.
pub fn warm_start_comparison(
    bench: &Benchmark,
    laxities: &[f64],
    passes: usize,
    effort: (usize, usize),
    workers: usize,
    snapshot_path: Option<&Path>,
) -> WarmStartComparison {
    let (cdfg, trace) = prepare(bench, passes, DEFAULT_SEED);
    let jobs = figure13_jobs(&cdfg, &trace, laxities, effort);

    let cold_session = SweepSession::new();
    let started = Instant::now();
    let cold = run_batch(&jobs, Some(&cold_session), workers);
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let bytes = cold_session.save_snapshot();
    let save_ms = started.elapsed().as_secs_f64() * 1e3;

    // Cross-process determinism check: a file left by a previous run must
    // byte-match this run's save before we replace it.
    let resumed = snapshot_path
        .and_then(|path| std::fs::read(path).ok())
        .is_some_and(|existing| existing == bytes);
    if let Some(path) = snapshot_path {
        impact_core::write_snapshot_bytes(path, &bytes).expect("snapshot path is writable");
    }

    let warm_session = SweepSession::new();
    let started = Instant::now();
    let merged = match snapshot_path {
        Some(path) => warm_session
            .load_from_file(path, SnapshotScope::Any)
            .expect("a snapshot this run just wrote verifies and loads"),
        None => warm_session
            .load_snapshot(&bytes, SnapshotScope::Any)
            .expect("a snapshot this run just saved verifies and loads"),
    };
    let load_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let warm = run_batch(&jobs, Some(&warm_session), workers);
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;

    WarmStartComparison {
        benchmark: bench.name.to_string(),
        laxity_points: laxities.len(),
        cold_ms,
        warm_ms,
        save_ms,
        load_ms,
        snapshot_bytes: bytes.len(),
        absorbed: merged.absorbed as usize,
        identical: batches_identical(&cold, &warm),
        resumed,
        warm_cache: warm_session.stats(),
    }
}

/// One explorer's run on one `(benchmark, laxity)` cell of the search
/// comparison: which strategy ran and what it produced.
#[derive(Clone, Debug)]
pub struct SearchPoint {
    /// The strategy that produced this point.
    pub explorer: ExplorerKind,
    /// Its synthesis result (quality, history, wall-clock, counters).
    pub result: JobResult,
}

impl SearchPoint {
    /// Final power at the chosen supply, in mW.
    pub fn power_mw(&self) -> f64 {
        self.result.outcome.report.power_mw
    }

    /// The explorer counters of this run.
    pub fn explore_stats(&self) -> ExploreStats {
        self.result.outcome.cache_stats.explore
    }
}

/// Every explorer's result on one `(benchmark, laxity)` cell, greedy — the
/// oracle the refactor is pinned against — first. The quality-vs-time curve
/// of `search_bench`.
#[derive(Clone, Debug)]
pub struct SearchComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Laxity factor of this cell.
    pub laxity: f64,
    /// One point per explorer, in [`ExplorerKind::all`] order.
    pub points: Vec<SearchPoint>,
}

impl SearchComparison {
    /// The greedy oracle's point.
    ///
    /// # Panics
    ///
    /// Panics when the cell was built without the greedy explorer.
    pub fn greedy(&self) -> &SearchPoint {
        self.points
            .iter()
            .find(|p| p.explorer == ExplorerKind::Greedy)
            .expect("search cells always include the greedy oracle")
    }

    /// Whether any non-greedy strategy strictly beat greedy's final power.
    pub fn any_beats_greedy(&self) -> bool {
        let greedy = self.greedy().power_mw();
        self.points
            .iter()
            .filter(|p| p.explorer != ExplorerKind::Greedy)
            .any(|p| p.power_mw() < greedy - 1e-9)
    }

    /// Whether every non-greedy strategy is at least as good as greedy —
    /// the never-worse gate `search_bench` hard-fails on.
    pub fn none_worse_than_greedy(&self) -> bool {
        let greedy = self.greedy().power_mw();
        self.points.iter().all(|p| p.power_mw() <= greedy + 1e-9)
    }
}

/// Runs every explorer on one `(benchmark, laxity)` cell: cold (no shared
/// session, so cross-strategy cache reuse cannot flatten the timing curve)
/// and on a single worker (so per-job timing stays honest). `effort` is
/// `(max_passes, max_sequence_length)`.
pub fn search_cell(
    cdfg: &Cdfg,
    trace: &ExecutionTrace,
    benchmark: &str,
    laxity: f64,
    effort: (usize, usize),
    explorers: &[ExplorerKind],
) -> SearchComparison {
    let (passes, seq) = effort;
    let jobs: Vec<SweepJob<'_>> = explorers
        .iter()
        .map(|&kind| {
            let config = SynthesisConfig::power_optimized(laxity).with_effort(passes, seq);
            let engine = config.engine.with_explorer(kind);
            SweepJob::new(
                format!("{}@{laxity:.1}", kind.name()),
                cdfg,
                trace,
                config.with_engine(engine),
            )
        })
        .collect();
    let results = run_batch(&jobs, None, 1);
    SearchComparison {
        benchmark: benchmark.to_string(),
        laxity,
        points: explorers
            .iter()
            .zip(results)
            .map(|(&explorer, result)| SearchPoint { explorer, result })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laxity_grids_span_one_to_three() {
        let paper = paper_laxities();
        assert_eq!(paper.len(), 11);
        assert!((paper[0] - 1.0).abs() < 1e-12);
        assert!((paper[10] - 3.0).abs() < 1e-12);
        let quick = quick_laxities();
        assert_eq!(quick.len(), 5);
    }

    #[test]
    fn engine_comparison_reports_identical_results_and_counts_cache_traffic() {
        let cmp = engine_comparison(&impact_benchmarks::gcd(), 8, (1, 2), 2.0);
        assert!(cmp.identical, "engines must agree bit-for-bit");
        assert!(cmp.sequential_ms > 0.0 && cmp.incremental_ms > 0.0);
        assert!(cmp.cache.hits + cmp.cache.misses > 0);
        assert!(cmp.cache.hit_rate() > 0.0);
        assert!(cmp.nodes > 0);
        assert!(cmp.speedup() > 0.0);
    }

    #[test]
    fn delta_comparison_reports_identical_results_across_generations() {
        let cmp = delta_comparison(&impact_benchmarks::gcd(), &[1.0, 2.0], 8, (1, 2));
        assert!(cmp.identical, "all three evaluator generations must agree");
        assert!(cmp.cold_ms > 0.0 && cmp.shared_ms > 0.0 && cmp.delta_ms > 0.0);
        assert!(cmp.speedup_vs_cold() > 0.0 && cmp.speedup_vs_shared() > 0.0);
        assert_eq!(cmp.laxity_points, 2);
        // The delta sweep exercised the schedule-memo layer, and the summary
        // line renders every layer.
        let line = format_layer_stats(&cmp.delta_cache);
        assert!(cmp.delta_cache.schedule.hits + cmp.delta_cache.schedule.misses > 0);
        for name in ["stats", "context", "schedule", "point", "scaled"] {
            assert!(line.contains(name), "{line} must mention {name}");
        }
    }

    #[test]
    fn repair_comparison_reports_identical_results_across_generations() {
        let cmp = repair_comparison(&impact_benchmarks::gcd(), &[1.0, 2.0], 8, (1, 2));
        assert!(cmp.identical, "all three evaluator generations must agree");
        assert!(cmp.cold_ms > 0.0 && cmp.memoized_ms > 0.0 && cmp.repaired_ms > 0.0);
        assert!(cmp.speedup_vs_cold() > 0.0 && cmp.speedup_vs_memoized() > 0.0);
        assert_eq!(cmp.laxity_points, 2);
        // The repaired sweep exercised the block layer, and the summary line
        // renders it.
        assert!(cmp.repaired_cache.block.hits + cmp.repaired_cache.block.misses > 0);
        assert!(format_layer_stats(&cmp.repaired_cache).contains("block"));
    }

    #[test]
    fn enc_comparison_favors_wavesched() {
        let cmp = enc_comparison(&impact_benchmarks::gcd(), 12);
        assert!(cmp.reduction() >= 1.0);
        assert!(cmp.baseline_enc > 0.0);
    }

    #[test]
    fn figure13_point_normalization_is_sane_for_a_tiny_run() {
        let series = figure13_series(&impact_benchmarks::gcd(), &[1.0, 2.0], 10);
        assert_eq!(series.points.len(), 2);
        let p1 = &series.points[0];
        // At laxity 1.0 the Vdd-scaled area-optimized design is close to the base.
        assert!(p1.a_power > 0.5 && p1.a_power <= 1.3);
        // Power optimization never does worse than the area-optimized design.
        for p in &series.points {
            assert!(p.i_power <= p.a_power + 0.05);
            assert!(p.i_area > 0.3);
        }
        assert!(series.max_reduction_vs_base() >= 1.0);
    }
}
