//! Headline benchmark of the sharded multi-process search: runs the Figure
//! 13 laxity sweep of every example design once in-process (the baseline),
//! then over fleets of worker subprocesses coordinated by `impact_shard` —
//! partitioned dynamically (work stealing), exchanging cache deltas through
//! the verified snapshot codec, and merged in submission order. Every
//! fleet's merged reports must be bit-identical to the baseline; the scaling
//! curve goes to `BENCH_shard.json`.
//!
//! Usage: `shard_bench [--smoke] [--paper] [--workers-list 1,2,4,8]
//! [--mailbox DIR] [--out PATH]`
//!
//! `--smoke` runs the reduced input set (fewer passes, smaller effort, the
//! coarse laxity grid) and a 1,4 worker curve so CI finishes in minutes.
//! With `--mailbox DIR` every exchanged snapshot is persisted as a
//! `.impactcache` file for post-hoc audit with `impact-verify
//! --snapshot-dir`. The process exits non-zero if any fleet's merged
//! results diverge from the baseline.
//!
//! The binary is its own worker: `shard_bench --shard-worker --worker-id N`
//! turns the process into a protocol worker on stdin/stdout (the
//! coordinator spawns these; no one types this by hand).

use impact_bench::{
    decode_reports, example_designs, fail_if, paper_laxities, quick_laxities, report_json,
    run_batch, run_shard_worker, run_sharded, shard_jobs, write_report, BenchCli, SweepJob,
    DEFAULT_EFFORT, DEFAULT_PASSES, DEFAULT_SEED,
};
use impact_codec::encode_to_vec;
use impact_core::{SweepSession, SynthesisReport};

/// One fleet size's measurements.
struct CurvePoint {
    workers: u32,
    wall_ms: f64,
    identical: bool,
    jobs_per_link: Vec<u64>,
    accepted: u64,
    rejected: u64,
    bytes_exchanged: u64,
    merge_absorbed: u64,
    merge_duplicates: u64,
}

fn curve_object(point: &CurvePoint, baseline_ms: f64) -> String {
    let balance = point
        .jobs_per_link
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"workers\": {}, \"wall_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}, \
         \"jobs_per_worker\": [{balance}], \"exchanges_accepted\": {}, \
         \"exchanges_rejected\": {}, \"bytes_exchanged\": {}, \"merge_absorbed\": {}, \
         \"merge_duplicates\": {}}}",
        point.workers,
        point.wall_ms,
        baseline_ms / point.wall_ms,
        point.identical,
        point.accepted,
        point.rejected,
        point.bytes_exchanged,
        point.merge_absorbed,
        point.merge_duplicates,
    )
}

fn main() {
    let cli = BenchCli::parse();
    if cli.flag("--shard-worker") {
        let worker_id = cli.parsed("--worker-id").unwrap_or(0u32);
        std::process::exit(run_shard_worker(worker_id));
    }

    let out_path = cli.out_path("BENCH_shard.json");
    let mailbox = cli.value("--mailbox").map(std::path::PathBuf::from);
    if let Some(dir) = &mailbox {
        std::fs::create_dir_all(dir).expect("mailbox directory is creatable");
    }

    let (passes, effort) = if cli.smoke() {
        (10, (2, 3))
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT)
    };
    let laxities = if cli.paper() {
        paper_laxities()
    } else {
        quick_laxities()
    };
    let fleets: Vec<u32> = cli
        .value("--workers-list")
        .map(|list| {
            list.split(',')
                .map(|w| w.trim().parse().expect("--workers-list is numbers"))
                .collect()
        })
        .unwrap_or_else(|| {
            if cli.smoke() {
                vec![1, 4]
            } else {
                vec![1, 2, 4, 8]
            }
        });
    let mode = cli.mode();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let benchmarks = example_designs();
    let jobs = shard_jobs(
        &benchmarks,
        &laxities,
        passes,
        DEFAULT_SEED,
        effort,
        // Workers sharing one machine each rank on a single thread; the
        // single-worker fleet gets the whole machine like the baseline.
        if fleets.iter().any(|&w| w > 1) { 1 } else { 0 },
    );
    println!(
        "shard bench ({mode}): {} jobs over {} designs, {} laxity points, fleets {fleets:?}, \
         {cpus} cpu(s)",
        jobs.len(),
        benchmarks.len(),
        laxities.len(),
    );

    // Baseline: the same job list in one process, one shared session — the
    // run every fleet must reproduce bit-for-bit.
    let baseline_started = std::time::Instant::now();
    let mut baseline: Vec<SynthesisReport> = Vec::with_capacity(jobs.len());
    {
        let session = SweepSession::new();
        for bench in &benchmarks {
            let (cdfg, trace) = impact_bench::prepare(bench, passes, DEFAULT_SEED);
            let batch = impact_bench::figure13_jobs(&cdfg, &trace, &laxities, effort);
            let batch: Vec<SweepJob<'_>> = batch
                .into_iter()
                .map(|job| SweepJob {
                    label: format!("{}/{}", bench.name, job.label),
                    ..job
                })
                .collect();
            baseline.extend(
                run_batch(&batch, Some(&session), 1)
                    .into_iter()
                    .map(|result| result.outcome.report),
            );
        }
    }
    let baseline_ms = baseline_started.elapsed().as_secs_f64() * 1e3;
    let baseline_bytes: Vec<Vec<u8>> = baseline.iter().map(encode_to_vec).collect();
    println!("baseline (in-process, 1 worker): {baseline_ms:.1} ms");

    let exe = std::env::current_exe().expect("own executable path resolves");
    println!(
        "{:>8} {:>12} {:>9} {:>10} {:>10} {:>10} {:>12} {:>20}",
        "workers", "wall (ms)", "speedup", "identical", "accepted", "rejected", "bytes", "balance"
    );
    let mut curve = Vec::new();
    for &workers in &fleets {
        let fleet_mailbox = mailbox.as_deref().filter(|_| workers > 1);
        let started = std::time::Instant::now();
        let (outcome, _hub) = run_sharded(&exe, workers, jobs.clone(), fleet_mailbox)
            .unwrap_or_else(|error| panic!("sharded run with {workers} worker(s) failed: {error}"));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let reports = decode_reports(&outcome);
        let identical = reports == baseline
            && outcome
                .results
                .iter()
                .zip(&baseline_bytes)
                .all(|(result, bytes)| result.payload == *bytes)
            && outcome
                .results
                .iter()
                .zip(&jobs)
                .all(|(result, job)| result.label == job.label);
        let balance = outcome
            .jobs_per_link
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:>8} {:>12.1} {:>9.2} {:>10} {:>10} {:>10} {:>12} {:>20}",
            workers,
            wall_ms,
            baseline_ms / wall_ms,
            identical,
            outcome.exchange.accepted,
            outcome.exchange.rejected(),
            outcome.exchange.bytes_in + outcome.exchange.bytes_out,
            balance,
        );
        curve.push(CurvePoint {
            workers,
            wall_ms,
            identical,
            jobs_per_link: outcome.jobs_per_link,
            accepted: outcome.exchange.accepted,
            rejected: outcome.exchange.rejected(),
            bytes_exchanged: outcome.exchange.bytes_in + outcome.exchange.bytes_out,
            merge_absorbed: outcome.exchange.merge.absorbed,
            merge_duplicates: outcome.exchange.merge.duplicates,
        });
    }

    let all_identical = curve.iter().all(|p| p.identical);
    let best_speedup = curve
        .iter()
        .map(|p| baseline_ms / p.wall_ms)
        .fold(0.0, f64::max);
    let curve_objects: Vec<String> = curve.iter().map(|p| curve_object(p, baseline_ms)).collect();
    let headline = format!(
        "{{\"all_identical\": {all_identical}, \"best_speedup\": {best_speedup:.3}, \
         \"baseline_ms\": {baseline_ms:.3}, \"fleets\": {}}}",
        curve.len()
    );
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("cpus", cpus.to_string()),
            ("jobs", jobs.len().to_string()),
            ("laxity_points", laxities.len().to_string()),
        ],
        &[("curve", &curve_objects)],
        &headline,
    );
    write_report(&out_path, &json);

    println!(
        "headline: every fleet merged bit-identically to the in-process baseline: \
         {all_identical}; best fleet speedup {best_speedup:.2}x on {cpus} cpu(s)",
    );
    fail_if(
        !all_identical,
        "a sharded fleet's merged results diverged from the in-process baseline",
    );
}
