//! Compares the expected number of cycles (ENC) of the baseline CFG-style
//! scheduler with the Wavesched-style scheduler on every benchmark
//! (Section 2.2: Wavesched "has been shown to reduce the ENC by up to a
//! factor of five").

use impact_bench::{enc_comparison, DEFAULT_PASSES};

fn main() {
    println!("Scheduler comparison on the fully parallel architecture ({DEFAULT_PASSES} passes)");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "benchmark", "baseline ENC", "wavesched ENC", "reduction"
    );
    let mut best = 0.0f64;
    for bench in impact_benchmarks::all_benchmarks() {
        let cmp = enc_comparison(&bench, DEFAULT_PASSES);
        println!(
            "{:>10} {:>16.1} {:>16.1} {:>11.2}x",
            cmp.benchmark,
            cmp.baseline_enc,
            cmp.wavesched_enc,
            cmp.reduction()
        );
        best = best.max(cmp.reduction());
    }
    println!();
    println!("Paper (from [18]): ENC reduced by up to ~5x on CFI designs.");
    println!("Measured         : ENC reduced by up to {best:.2}x across the suite.");
}
