//! Regenerates the worked multiplexer-restructuring example of Section 3.2.1
//! (Figures 8–10): the balanced tree has switching activity 1.09, the
//! restructured tree 0.72 (a 34 % reduction), and removing one mux stage from
//! the most probable path brings it back under the 15 ns clock.

use impact_modlib::{ModuleLibrary, CHAINING_OVERHEAD, DEFAULT_CLOCK_NS};
use impact_rtl::{MuxSource, MuxTree};

fn main() {
    // Relative switching activities and branch probabilities quoted in the
    // paper for the four branches of the Figure 8 CDFG.
    let sources = vec![
        MuxSource::new("e1", 0.6, 0.7),
        MuxSource::new("e2", 0.1, 0.2),
        MuxSource::new("e3", 0.2, 0.05),
        MuxSource::new("e4", 0.1, 0.05),
    ];
    let balanced = MuxTree::balanced(sources.clone());
    let restructured = MuxTree::huffman(sources);

    println!("Multiplexer-tree restructuring example (paper Section 3.2.1)");
    println!();
    println!("input  activity  probability  depth(balanced)  depth(restructured)");
    for (i, s) in balanced.sources().iter().enumerate() {
        println!(
            "{:>5} {:>9.2} {:>12.2} {:>16} {:>20}",
            s.label,
            s.activity,
            s.probability,
            balanced.depth_of(i).unwrap_or(0),
            restructured.depth_of(i).unwrap_or(0)
        );
    }
    println!();
    let a_bal = balanced.switching_activity();
    let a_res = restructured.switching_activity();
    println!("balanced tree activity      : {a_bal:.2}   (paper: 1.09)");
    println!("restructured tree activity  : {a_res:.2}   (paper: 0.72)");
    println!(
        "activity reduction          : {:.0}%  (paper: 34%)",
        100.0 * (1.0 - a_res / a_bal)
    );

    // Path-delay consequence: the most probable branch (e1) chains two adders
    // and then traverses the mux tree before reaching the output register.
    let lib = ModuleLibrary::standard();
    let adder = lib
        .fastest(impact_cdfg::OpClass::AddSub)
        .expect("adders exist")
        .delay_ns;
    let mux = lib.mux2().delay_ns;
    let chained_adder = adder * CHAINING_OVERHEAD;
    let balanced_path = adder + chained_adder + mux * balanced.depth_of(0).unwrap_or(0) as f64;
    let restructured_path =
        adder + chained_adder + mux * restructured.depth_of(0).unwrap_or(0) as f64;
    println!();
    println!("most probable path, balanced     : {balanced_path:.1} ns (clock {DEFAULT_CLOCK_NS} ns) -> {} cycle(s)",
        (balanced_path / DEFAULT_CLOCK_NS).ceil());
    println!("most probable path, restructured : {restructured_path:.1} ns (clock {DEFAULT_CLOCK_NS} ns) -> {} cycle(s)",
        (restructured_path / DEFAULT_CLOCK_NS).ceil());
    println!();
    println!("Paper's switch-level measurement: 10.1 mW (balanced) vs 6.0 mW (restructured).");
    println!("Shape reproduced: lower tree activity plus the saved cycle enables Vdd scaling.");
}
