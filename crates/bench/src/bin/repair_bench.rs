//! Headline benchmark of delta-aware schedule repair: runs the Figure 13
//! laxity sweep of every example design through three evaluator generations
//! — the PR 2 cold evaluator (full rebuild, per-run caches), the PR 4 delta
//! evaluator (delta patching plus whole-schedule memoization, every memo
//! miss rescheduling the whole CDFG) and the repaired engine (on a memo miss
//! only the blocks a move touched are list-scheduled, the rest spliced from
//! the parent schedule or the shared per-block layer) — verifies all three
//! produce bit-identical reports, and writes the measurements (including the
//! block-layer hit rates) to `BENCH_repair.json`.
//!
//! Usage: `repair_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! a 3-point laxity grid) so CI can track the trajectory in seconds. The
//! process exits non-zero if any design's reports diverge, making the
//! bit-identity check a hard gate wherever the bench runs.

use std::io::Write as _;

use impact_bench::{
    format_layer_stats, quick_laxities, repair_comparison, RepairComparison, DEFAULT_EFFORT,
};

/// The example designs the comparison runs on, smallest first.
fn designs() -> Vec<impact_benchmarks::Benchmark> {
    vec![
        impact_benchmarks::gcd(),
        impact_benchmarks::x25_send(),
        impact_benchmarks::dealer(),
        impact_benchmarks::paulin(),
    ]
}

fn json_for(results: &[RepairComparison], mode: &str, laxity_points: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"laxity_points\": {laxity_points},\n"));
    out.push_str("  \"designs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"memoized_ms\": {:.3}, \
             \"repaired_ms\": {:.3}, \"speedup_vs_cold\": {:.3}, \"speedup_vs_memoized\": {:.3}, \
             \"identical\": {}, \"block_hit_rate\": {:.4}, \"schedule_hit_rate\": {:.4}, \
             \"block_schedules\": {}}}{}\n",
            r.benchmark,
            r.cold_ms,
            r.memoized_ms,
            r.repaired_ms,
            r.speedup_vs_cold(),
            r.speedup_vs_memoized(),
            r.identical,
            r.repaired_cache.block.hit_rate(),
            r.repaired_cache.schedule.hit_rate(),
            r.repaired_cache.block_schedules,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let min_of = |metric: fn(&RepairComparison) -> f64| {
        let min = results.iter().map(metric).fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "  \"headline\": {{\"min_speedup_vs_cold\": {:.3}, \"min_speedup_vs_memoized\": {:.3}, \
         \"all_identical\": {}}}\n",
        min_of(RepairComparison::speedup_vs_cold),
        min_of(RepairComparison::speedup_vs_memoized),
        results.iter().all(|r| r.identical),
    ));
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_repair.json".to_string());

    // Full mode uses a 16-pass trace rather than the drivers' default: the
    // three generations differ only in the scheduling stage, and longer
    // traces only inflate the trace-statistics stage — identical in all
    // three — which buries the quantity under measurement.
    let (passes, effort, laxities) = if smoke {
        (10, (2, 3), vec![1.0, 2.0, 3.0])
    } else {
        (16, DEFAULT_EFFORT, quick_laxities())
    };
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "repair bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>13} {:>13} {:>10} {:>12} {:>10}",
        "design",
        "cold (ms)",
        "memoized (ms)",
        "repaired (ms)",
        "vs cold",
        "vs memoized",
        "identical"
    );

    let mut results = Vec::new();
    for bench in designs() {
        let result = repair_comparison(&bench, &laxities, passes, effort);
        println!(
            "{:>10} {:>12.1} {:>13.1} {:>13.1} {:>10.2} {:>12.2} {:>10}",
            result.benchmark,
            result.cold_ms,
            result.memoized_ms,
            result.repaired_ms,
            result.speedup_vs_cold(),
            result.speedup_vs_memoized(),
            result.identical,
        );
        println!(
            "{:>10} layers: {}",
            "",
            format_layer_stats(&result.repaired_cache)
        );
        results.push(result);
    }

    let json = json_for(&results, mode, laxities.len());
    let mut file = std::fs::File::create(&out_path).expect("bench output file is writable");
    file.write_all(json.as_bytes())
        .expect("bench output writes");
    println!("wrote {out_path}");

    let min_cold = results
        .iter()
        .map(RepairComparison::speedup_vs_cold)
        .fold(f64::INFINITY, f64::min);
    let min_memo = results
        .iter()
        .map(RepairComparison::speedup_vs_memoized)
        .fold(f64::INFINITY, f64::min);
    println!(
        "headline: schedule repair is at least {min_cold:.2}x faster than the PR 2 cold \
         evaluator and {min_memo:.2}x faster than the re-based PR 4 delta evaluator \
         (EngineConfig::full_reschedule in this build) across {} designs",
        results.len()
    );

    if results.iter().any(|r| !r.identical) {
        eprintln!("FAIL: repaired schedules diverged from the full-reschedule oracle");
        std::process::exit(1);
    }
}
