//! Headline benchmark of delta-aware schedule repair: runs the Figure 13
//! laxity sweep of every example design through three evaluator generations
//! — the PR 2 cold evaluator (full rebuild, per-run caches), the PR 4 delta
//! evaluator (delta patching plus whole-schedule memoization, every memo
//! miss rescheduling the whole CDFG) and the repaired engine (on a memo miss
//! only the blocks a move touched are list-scheduled, the rest spliced from
//! the parent schedule or the shared per-block layer) — verifies all three
//! produce bit-identical reports, and writes the measurements (including the
//! block-layer hit rates) to `BENCH_repair.json`.
//!
//! Usage: `repair_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! a 3-point laxity grid) so CI can track the trajectory in seconds. The
//! process exits non-zero if any design's reports diverge, making the
//! bit-identity check a hard gate wherever the bench runs.

use impact_bench::{
    example_designs, fail_if, format_layer_stats, min_metric, quick_laxities, repair_comparison,
    report_json, write_report, BenchCli, RepairComparison, DEFAULT_EFFORT,
};

fn design_object(r: &RepairComparison) -> String {
    format!(
        "{{\"name\": \"{}\", \"cold_ms\": {:.3}, \"memoized_ms\": {:.3}, \
         \"repaired_ms\": {:.3}, \"speedup_vs_cold\": {:.3}, \"speedup_vs_memoized\": {:.3}, \
         \"identical\": {}, \"block_hit_rate\": {:.4}, \"schedule_hit_rate\": {:.4}, \
         \"block_schedules\": {}}}",
        r.benchmark,
        r.cold_ms,
        r.memoized_ms,
        r.repaired_ms,
        r.speedup_vs_cold(),
        r.speedup_vs_memoized(),
        r.identical,
        r.repaired_cache.block.hit_rate(),
        r.repaired_cache.schedule.hit_rate(),
        r.repaired_cache.block_schedules,
    )
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_repair.json");

    // Full mode uses a 16-pass trace rather than the drivers' default: the
    // three generations differ only in the scheduling stage, and longer
    // traces only inflate the trace-statistics stage — identical in all
    // three — which buries the quantity under measurement.
    let (passes, effort, laxities) = if cli.smoke() {
        (10, (2, 3), vec![1.0, 2.0, 3.0])
    } else {
        (16, DEFAULT_EFFORT, quick_laxities())
    };
    let mode = cli.mode();

    println!(
        "repair bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>13} {:>13} {:>10} {:>12} {:>10}",
        "design",
        "cold (ms)",
        "memoized (ms)",
        "repaired (ms)",
        "vs cold",
        "vs memoized",
        "identical"
    );

    let mut results = Vec::new();
    for bench in example_designs() {
        let result = repair_comparison(&bench, &laxities, passes, effort);
        println!(
            "{:>10} {:>12.1} {:>13.1} {:>13.1} {:>10.2} {:>12.2} {:>10}",
            result.benchmark,
            result.cold_ms,
            result.memoized_ms,
            result.repaired_ms,
            result.speedup_vs_cold(),
            result.speedup_vs_memoized(),
            result.identical,
        );
        println!(
            "{:>10} layers: {}",
            "",
            format_layer_stats(&result.repaired_cache)
        );
        results.push(result);
    }

    let design_objects: Vec<String> = results.iter().map(design_object).collect();
    let headline = format!(
        "{{\"min_speedup_vs_cold\": {:.3}, \"min_speedup_vs_memoized\": {:.3}, \
         \"all_identical\": {}}}",
        min_metric(&results, RepairComparison::speedup_vs_cold),
        min_metric(&results, RepairComparison::speedup_vs_memoized),
        results.iter().all(|r| r.identical),
    );
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("laxity_points", laxities.len().to_string()),
        ],
        &[("designs", &design_objects)],
        &headline,
    );
    write_report(&out_path, &json);

    println!(
        "headline: schedule repair is at least {:.2}x faster than the PR 2 cold \
         evaluator and {:.2}x faster than the re-based PR 4 delta evaluator \
         (EngineConfig::full_reschedule in this build) across {} designs",
        min_metric(&results, RepairComparison::speedup_vs_cold),
        min_metric(&results, RepairComparison::speedup_vs_memoized),
        results.len()
    );

    fail_if(
        results.iter().any(|r| !r.identical),
        "repaired schedules diverged from the full-reschedule oracle",
    );
}
