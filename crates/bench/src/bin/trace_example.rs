//! Regenerates the trace-manipulation example of Section 2.3 (Figures 3–6):
//! the three-addition CDFG is simulated once; sharing all additions on a
//! single adder produces the merged trace of the paper without re-simulation.

use impact_behsim::simulate;
use impact_cdfg::OpClass;
use impact_modlib::ModuleLibrary;
use impact_rtl::RtlDesign;
use impact_trace::RtTraces;

fn main() {
    let cdfg = impact_hdl::compile(
        "design fig3 { input a: 8, b: 8, c: 8, d: 8; output o: 8; var t: 8;
           t = b + c;
           if (a < 8) { o = t + d; } else { o = a + t; }
         }",
    )
    .expect("the Figure 3 design compiles");

    // Four passes whose condition outcomes are [T, T, F, T] as in the paper.
    let inputs = vec![
        vec![1, 10, 20, 3],
        vec![2, 11, 21, 4],
        vec![100, 12, 22, 5],
        vec![3, 13, 23, 6],
    ];
    let trace = simulate(&cdfg, &inputs).expect("the example simulates");

    let library = ModuleLibrary::standard();
    let mut design = RtlDesign::initial_parallel(&cdfg, &library);
    let adders = design.units_of_class(OpClass::AddSub);
    println!(
        "Fully parallel architecture: {} adders (one per addition).",
        adders.len()
    );
    design.share_fus(adders[0], adders[1]).expect("same class");
    design.share_fus(adders[0], adders[2]).expect("same class");
    println!("After resource sharing: 1 adder (the Figure 5 implementation).");
    println!();

    let rt = RtTraces::new(&cdfg, &design, &trace);
    let merged = rt.merged_fu_events(adders[0]);
    println!("Merged adder trace TR(A1) obtained by trace manipulation (no re-simulation):");
    println!(
        "{:>5} {:>6} {:>6} {:>6}   operation",
        "pass", "In1", "In2", "Out"
    );
    for event in &merged {
        let node = cdfg.node(event.node);
        println!(
            "{:>5} {:>6} {:>6} {:>6}   {}",
            event.pass,
            event.inputs.first().copied().unwrap_or(0),
            event.inputs.get(1).copied().unwrap_or(0),
            event.output,
            node.display_label()
        );
    }
    println!();
    println!(
        "Condition sequence e8 = [T, T, F, T]: the second addition of each pass is (+then, +then, +else, +then),"
    );
    println!("matching the merged-trace table of Section 2.3.");
    println!(
        "Adder input switching activity on the merged trace: {:.3}",
        rt.fu_input_activity(adders[0])
    );
}
