//! Headline benchmark of delta evaluation: runs the Figure 13 laxity sweep
//! of every example design through three evaluator generations — the PR 2
//! cold evaluator (full rebuild, per-run caches), the PR 3 shared-session
//! path (full rebuild over one session) and the delta engine (move-delta
//! patched fingerprints and contexts plus schedule memoization over one
//! session) — verifies all three produce bit-identical reports, and writes
//! the measurements to `BENCH_delta.json`.
//!
//! Usage: `delta_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! a 3-point laxity grid) so CI can track the trajectory in seconds. The
//! process exits non-zero if any design's reports diverge, making the
//! bit-identity check a hard gate wherever the bench runs.

use impact_bench::{
    delta_comparison, example_designs, fail_if, format_layer_stats, min_metric, quick_laxities,
    report_json, write_report, BenchCli, DeltaComparison, DEFAULT_EFFORT, DEFAULT_PASSES,
};

fn design_object(r: &DeltaComparison) -> String {
    format!(
        "{{\"name\": \"{}\", \"cold_ms\": {:.3}, \"shared_ms\": {:.3}, \
         \"delta_ms\": {:.3}, \"speedup_vs_cold\": {:.3}, \"speedup_vs_shared\": {:.3}, \
         \"identical\": {}, \"schedule_hit_rate\": {:.4}, \"context_hit_rate\": {:.4}, \
         \"point_hit_rate\": {:.4}}}",
        r.benchmark,
        r.cold_ms,
        r.shared_ms,
        r.delta_ms,
        r.speedup_vs_cold(),
        r.speedup_vs_shared(),
        r.identical,
        r.delta_cache.schedule.hit_rate(),
        r.delta_cache.context.hit_rate(),
        r.delta_cache.point.hit_rate(),
    )
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_delta.json");

    let (passes, effort, laxities) = if cli.smoke() {
        (10, (2, 3), vec![1.0, 2.0, 3.0])
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT, quick_laxities())
    };
    let mode = cli.mode();

    println!(
        "delta bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>11} {:>10}",
        "design", "cold (ms)", "shared (ms)", "delta (ms)", "vs cold", "vs shared", "identical"
    );

    let mut results = Vec::new();
    for bench in example_designs() {
        let result = delta_comparison(&bench, &laxities, passes, effort);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>11.2} {:>10}",
            result.benchmark,
            result.cold_ms,
            result.shared_ms,
            result.delta_ms,
            result.speedup_vs_cold(),
            result.speedup_vs_shared(),
            result.identical,
        );
        println!(
            "{:>10} layers: {}",
            "",
            format_layer_stats(&result.delta_cache)
        );
        results.push(result);
    }

    let design_objects: Vec<String> = results.iter().map(design_object).collect();
    let headline = format!(
        "{{\"min_speedup_vs_cold\": {:.3}, \"min_speedup_vs_shared\": {:.3}, \
         \"all_identical\": {}}}",
        min_metric(&results, DeltaComparison::speedup_vs_cold),
        min_metric(&results, DeltaComparison::speedup_vs_shared),
        results.iter().all(|r| r.identical),
    );
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("laxity_points", laxities.len().to_string()),
        ],
        &[("designs", &design_objects)],
        &headline,
    );
    write_report(&out_path, &json);

    println!(
        "headline: delta evaluation is at least {:.2}x faster than the PR 2 cold \
         evaluator and {:.2}x faster than the PR 3 shared-session path across {} designs",
        min_metric(&results, DeltaComparison::speedup_vs_cold),
        min_metric(&results, DeltaComparison::speedup_vs_shared),
        results.len()
    );

    fail_if(
        results.iter().any(|r| !r.identical),
        "delta-patched reports diverged from the full-rebuild oracle",
    );
}
