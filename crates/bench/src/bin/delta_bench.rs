//! Headline benchmark of delta evaluation: runs the Figure 13 laxity sweep
//! of every example design through three evaluator generations — the PR 2
//! cold evaluator (full rebuild, per-run caches), the PR 3 shared-session
//! path (full rebuild over one session) and the delta engine (move-delta
//! patched fingerprints and contexts plus schedule memoization over one
//! session) — verifies all three produce bit-identical reports, and writes
//! the measurements to `BENCH_delta.json`.
//!
//! Usage: `delta_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! a 3-point laxity grid) so CI can track the trajectory in seconds. The
//! process exits non-zero if any design's reports diverge, making the
//! bit-identity check a hard gate wherever the bench runs.

use std::io::Write as _;

use impact_bench::{
    delta_comparison, format_layer_stats, quick_laxities, DeltaComparison, DEFAULT_EFFORT,
    DEFAULT_PASSES,
};

/// The example designs the comparison runs on, smallest first.
fn designs() -> Vec<impact_benchmarks::Benchmark> {
    vec![
        impact_benchmarks::gcd(),
        impact_benchmarks::x25_send(),
        impact_benchmarks::dealer(),
        impact_benchmarks::paulin(),
    ]
}

fn json_for(results: &[DeltaComparison], mode: &str, laxity_points: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"laxity_points\": {laxity_points},\n"));
    out.push_str("  \"designs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"shared_ms\": {:.3}, \
             \"delta_ms\": {:.3}, \"speedup_vs_cold\": {:.3}, \"speedup_vs_shared\": {:.3}, \
             \"identical\": {}, \"schedule_hit_rate\": {:.4}, \"context_hit_rate\": {:.4}, \
             \"point_hit_rate\": {:.4}}}{}\n",
            r.benchmark,
            r.cold_ms,
            r.shared_ms,
            r.delta_ms,
            r.speedup_vs_cold(),
            r.speedup_vs_shared(),
            r.identical,
            r.delta_cache.schedule.hit_rate(),
            r.delta_cache.context.hit_rate(),
            r.delta_cache.point.hit_rate(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let min_of = |metric: fn(&DeltaComparison) -> f64| {
        let min = results.iter().map(metric).fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "  \"headline\": {{\"min_speedup_vs_cold\": {:.3}, \"min_speedup_vs_shared\": {:.3}, \
         \"all_identical\": {}}}\n",
        min_of(DeltaComparison::speedup_vs_cold),
        min_of(DeltaComparison::speedup_vs_shared),
        results.iter().all(|r| r.identical),
    ));
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_delta.json".to_string());

    let (passes, effort, laxities) = if smoke {
        (10, (2, 3), vec![1.0, 2.0, 3.0])
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT, quick_laxities())
    };
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "delta bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>11} {:>10}",
        "design", "cold (ms)", "shared (ms)", "delta (ms)", "vs cold", "vs shared", "identical"
    );

    let mut results = Vec::new();
    for bench in designs() {
        let result = delta_comparison(&bench, &laxities, passes, effort);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>11.2} {:>10}",
            result.benchmark,
            result.cold_ms,
            result.shared_ms,
            result.delta_ms,
            result.speedup_vs_cold(),
            result.speedup_vs_shared(),
            result.identical,
        );
        println!(
            "{:>10} layers: {}",
            "",
            format_layer_stats(&result.delta_cache)
        );
        results.push(result);
    }

    let json = json_for(&results, mode, laxities.len());
    let mut file = std::fs::File::create(&out_path).expect("bench output file is writable");
    file.write_all(json.as_bytes())
        .expect("bench output writes");
    println!("wrote {out_path}");

    let min_cold = results
        .iter()
        .map(DeltaComparison::speedup_vs_cold)
        .fold(f64::INFINITY, f64::min);
    let min_shared = results
        .iter()
        .map(DeltaComparison::speedup_vs_shared)
        .fold(f64::INFINITY, f64::min);
    println!(
        "headline: delta evaluation is at least {min_cold:.2}x faster than the PR 2 cold \
         evaluator and {min_shared:.2}x faster than the PR 3 shared-session path across {} designs",
        results.len()
    );

    if results.iter().any(|r| !r.identical) {
        eprintln!("FAIL: delta-patched reports diverged from the full-rebuild oracle");
        std::process::exit(1);
    }
}
