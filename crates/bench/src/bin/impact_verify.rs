//! `impact-verify`: static invariant audit of IMPACT artifacts.
//!
//! Three modes, all exiting non-zero when any violation is found:
//!
//! * `--snapshot FILE` — decode one persistent cache snapshot and audit
//!   every cached entry against its key (fingerprints, supply levels, ENC
//!   budgets, block digests, context consistency).
//! * `--snapshot-dir DIR` — audit every `*.impactcache` file in a
//!   directory (the layout `sweep_bench --snapshot-dir` produces). Fails
//!   when the directory holds no snapshots at all, so a misconfigured CI
//!   path cannot pass vacuously.
//! * default (optionally `--design NAME`, repeatable) — synthesize the
//!   example designs over a shared session with the engine's inline audits
//!   at [`VerifyLevel::Full`], then re-audit the finished outcomes, the
//!   whole session cache and the snapshot round-trip as data.
//!
//! Usage: `impact-verify [--smoke] [--design NAME] [--snapshot FILE]
//! [--snapshot-dir DIR]`

use impact_bench::{fail_if, prepare, quick_laxities, BenchCli, DEFAULT_EFFORT, DEFAULT_PASSES};
use impact_core::verify::{audit_session, audit_snapshot_bytes};
use impact_core::{EngineConfig, Evaluator, Impact, SweepSession, SynthesisConfig, VerifyLevel};
use impact_verify::Violation;

/// Prints every violation of one audited artifact and folds it into the
/// running total.
fn report(label: &str, violations: &[Violation], total: &mut usize) {
    for violation in violations {
        println!("{label}: {violation}");
    }
    *total += violations.len();
}

/// Audits one snapshot file as bytes.
fn audit_file(path: &std::path::Path, total: &mut usize) {
    let label = path.display().to_string();
    match std::fs::read(path) {
        Ok(bytes) => {
            let violations = audit_snapshot_bytes(&bytes);
            println!(
                "{label}: {} bytes, {} violation(s)",
                bytes.len(),
                violations.len()
            );
            report(&label, &violations, total);
        }
        Err(error) => {
            println!("{label}: unreadable ({error})");
            *total += 1;
        }
    }
}

/// Synthesizes `bench` across a small laxity sweep with inline engine audits
/// on, then audits the outcomes, the session and the snapshot round-trip.
fn audit_design(
    bench: &impact_benchmarks::Benchmark,
    laxities: &[f64],
    passes: usize,
    effort: (usize, usize),
    total: &mut usize,
) {
    let (cdfg, trace) = prepare(bench, passes, impact_bench::DEFAULT_SEED);
    let session = SweepSession::new();
    let mut artifacts = 0usize;
    for &laxity in laxities {
        for mode in ["area", "power"] {
            let label = format!("{}/{mode}@{laxity:.1}", bench.name);
            let base = match mode {
                "area" => SynthesisConfig::area_optimized(laxity),
                _ => SynthesisConfig::power_optimized(laxity),
            };
            let config = base
                .with_effort(effort.0, effort.1)
                .with_engine(EngineConfig::incremental().with_verify(VerifyLevel::Full));
            // The run itself audits every stored point and the session
            // (VerifyLevel::Full), so a violation surfaces here as an error.
            let outcome = match Impact::new(config.clone())
                .synthesize_with_session(&cdfg, &trace, &session)
            {
                Ok(outcome) => outcome,
                Err(error) => {
                    println!("{label}: synthesis failed: {error}");
                    *total += 1;
                    continue;
                }
            };
            // Re-audit the finished outcome as data, budget included.
            let violations = match Evaluator::with_session(&cdfg, &trace, config, &session) {
                Ok(evaluator) => evaluator.audit_outcome(&outcome),
                Err(error) => {
                    println!("{label}: evaluator failed: {error}");
                    *total += 1;
                    continue;
                }
            };
            report(&label, &violations, total);
            artifacts += 1;
        }
    }
    let session_violations = audit_session(&session);
    report(
        &format!("{}/session", bench.name),
        &session_violations,
        total,
    );
    let snapshot_violations = audit_snapshot_bytes(&session.save_snapshot());
    report(
        &format!("{}/snapshot", bench.name),
        &snapshot_violations,
        total,
    );
    println!(
        "{}: {artifacts} outcome(s), session and snapshot audited, {} violation(s)",
        bench.name,
        session_violations.len() + snapshot_violations.len()
    );
}

fn main() {
    let cli = BenchCli::parse();
    let mut total = 0usize;

    if let Some(path) = cli.value("--snapshot") {
        audit_file(std::path::Path::new(&path), &mut total);
    } else if let Some(dir) = cli.value("--snapshot-dir") {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|error| panic!("snapshot directory `{dir}` is readable: {error}"))
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "impactcache"))
            .collect();
        paths.sort();
        fail_if(
            paths.is_empty(),
            &format!("no *.impactcache snapshots found in `{dir}`"),
        );
        for path in &paths {
            audit_file(path, &mut total);
        }
        println!("audited {} snapshot(s) in `{dir}`", paths.len());
    } else {
        let (passes, effort, laxities) = if cli.smoke() {
            (10, (2, 3), vec![1.0, 2.0])
        } else {
            (DEFAULT_PASSES, DEFAULT_EFFORT, quick_laxities())
        };
        // `--design` is repeatable; BenchCli::value only sees the first, so
        // collect every occurrence here.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let wanted: Vec<String> = args
            .windows(2)
            .filter(|pair| pair[0] == "--design")
            .map(|pair| pair[1].clone())
            .collect();
        for bench in impact_bench::example_designs() {
            if !wanted.is_empty() && !wanted.iter().any(|name| name == bench.name) {
                continue;
            }
            audit_design(&bench, &laxities, passes, effort, &mut total);
        }
    }

    fail_if(
        total > 0,
        &format!("impact-verify found {total} violation(s)"),
    );
    println!("impact-verify: no violations");
}
