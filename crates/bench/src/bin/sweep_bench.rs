//! Headline benchmark of the sweep-session cache layer: runs the Figure 13
//! laxity sweep of every example design cold (independent per-laxity runs,
//! fresh caches — the historical sweep cost), then with one shared
//! [`SweepSession`](impact_core::SweepSession) over the batch driver's worker
//! pool, and finally replays it over two merged half-sweep shard sessions.
//! Reports must agree bit-for-bit across all three; the measurements go to
//! `BENCH_sweep.json`.
//!
//! Usage: `sweep_bench [--smoke] [--paper] [--workers N] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! the coarse 5-point laxity grid) so CI can track the trajectory in seconds.
//! `--paper` sweeps the full 11-point grid of the figure. The process exits
//! non-zero if any design's cold, shared and merged-shard reports diverge,
//! making the equivalence check a hard gate wherever the bench runs.

use std::io::Write as _;

use impact_bench::{
    format_layer_stats, paper_laxities, quick_laxities, sweep_comparison, SweepComparison,
    DEFAULT_EFFORT, DEFAULT_PASSES,
};

/// The example designs the comparison runs on, smallest first.
fn designs() -> Vec<impact_benchmarks::Benchmark> {
    vec![
        impact_benchmarks::gcd(),
        impact_benchmarks::x25_send(),
        impact_benchmarks::dealer(),
        impact_benchmarks::paulin(),
    ]
}

fn json_for(results: &[SweepComparison], mode: &str, laxity_points: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"laxity_points\": {laxity_points},\n"));
    out.push_str("  \"designs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"cold_parallel_ms\": {:.3}, \
             \"shared_ms\": {:.3}, \"speedup\": {:.3}, \"cache_speedup\": {:.3}, \
             \"identical\": {}, \"merged_identical\": {}, \
             \"shared_hit_rate\": {:.4}, \"merged_hit_rate\": {:.4}}}{}\n",
            r.benchmark,
            r.cold_ms,
            r.cold_parallel_ms,
            r.shared_ms,
            r.speedup(),
            r.cache_speedup(),
            r.identical,
            r.merged_identical,
            r.shared_cache.hit_rate(),
            r.merged_cache.hit_rate(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let min_of = |metric: fn(&SweepComparison) -> f64| {
        let min = results.iter().map(metric).fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "  \"headline\": {{\"min_speedup\": {:.3}, \"min_cache_speedup\": {:.3}, \
         \"all_identical\": {}}}\n",
        min_of(SweepComparison::speedup),
        min_of(SweepComparison::cache_speedup),
        results.iter().all(|r| r.identical && r.merged_identical),
    ));
    out.push('}');
    out.push('\n');
    out
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let paper = args.iter().any(|a| a == "--paper");
    let workers = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let (passes, effort) = if smoke {
        (10, (2, 3))
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT)
    };
    let laxities = if paper {
        paper_laxities()
    } else {
        quick_laxities()
    };
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "sweep bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>13} {:>12} {:>9} {:>9} {:>10} {:>8} {:>13} {:>13}",
        "design",
        "cold (ms)",
        "cold-par (ms)",
        "shared (ms)",
        "speedup",
        "cache x",
        "identical",
        "merged",
        "shared hit %",
        "merged hit %"
    );

    let mut results = Vec::new();
    for bench in designs() {
        let result = sweep_comparison(&bench, &laxities, passes, effort, workers);
        println!(
            "{:>10} {:>12.1} {:>13.1} {:>12.1} {:>9.2} {:>9.2} {:>10} {:>8} {:>13.1} {:>13.1}",
            result.benchmark,
            result.cold_ms,
            result.cold_parallel_ms,
            result.shared_ms,
            result.speedup(),
            result.cache_speedup(),
            result.identical,
            result.merged_identical,
            100.0 * result.shared_cache.hit_rate(),
            100.0 * result.merged_cache.hit_rate(),
        );
        println!(
            "{:>10} shared layers: {}",
            "",
            format_layer_stats(&result.shared_cache)
        );
        results.push(result);
    }

    let json = json_for(&results, mode, laxities.len());
    let mut file = std::fs::File::create(&out_path).expect("bench output file is writable");
    file.write_all(json.as_bytes())
        .expect("bench output writes");
    println!("wrote {out_path}");

    let min_speedup = results
        .iter()
        .map(SweepComparison::speedup)
        .fold(f64::INFINITY, f64::min);
    let min_cache_speedup = results
        .iter()
        .map(SweepComparison::cache_speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "headline: shared-session sweep is at least {min_speedup:.2}x faster than the \
         sequential cold sweep ({min_cache_speedup:.2}x at the same worker count) \
         across {} designs",
        results.len()
    );

    if results.iter().any(|r| !r.identical || !r.merged_identical) {
        eprintln!("FAIL: shared-session or merged-shard sweep diverged from cold runs");
        std::process::exit(1);
    }
}
