//! Headline benchmark of the sweep-session cache layer: runs the Figure 13
//! laxity sweep of every example design cold (independent per-laxity runs,
//! fresh caches — the historical sweep cost), then with one shared
//! [`SweepSession`](impact_core::SweepSession) over the batch driver's worker
//! pool, then replays it over two merged half-sweep shard sessions, and
//! finally measures the persistence path: sweep, snapshot, reload into a
//! fresh session, rerun warm. Reports must agree bit-for-bit across every
//! variant and the warm rerun must answer every design-point lookup from the
//! snapshot; the measurements go to `BENCH_sweep.json`.
//!
//! Usage: `sweep_bench [--smoke] [--paper] [--workers N] [--out PATH]
//! [--snapshot-dir DIR] [--expect-resume]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! the coarse 5-point laxity grid) so CI can track the trajectory in seconds.
//! `--paper` sweeps the full 11-point grid of the figure. With
//! `--snapshot-dir` the warm-start snapshots round-trip through
//! `DIR/<design>.impactcache` instead of staying in memory, and a second run
//! against the same directory verifies cross-process byte identity;
//! `--expect-resume` turns that verification into a hard gate. The process
//! exits non-zero if any variant diverges from the cold runs or the warm
//! rerun misses the point layer.

use impact_bench::{
    example_designs, fail_if, format_layer_stats, min_metric, paper_laxities, quick_laxities,
    report_json, sweep_comparison, warm_start_comparison, write_report, BenchCli, SweepComparison,
    WarmStartComparison, DEFAULT_EFFORT, DEFAULT_PASSES,
};

fn design_object(r: &SweepComparison) -> String {
    format!(
        "{{\"name\": \"{}\", \"cold_ms\": {:.3}, \"cold_parallel_ms\": {:.3}, \
         \"shared_ms\": {:.3}, \"speedup\": {:.3}, \"cache_speedup\": {:.3}, \
         \"identical\": {}, \"merged_identical\": {}, \
         \"shared_hit_rate\": {:.4}, \"merged_hit_rate\": {:.4}}}",
        r.benchmark,
        r.cold_ms,
        r.cold_parallel_ms,
        r.shared_ms,
        r.speedup(),
        r.cache_speedup(),
        r.identical,
        r.merged_identical,
        r.shared_cache.hit_rate(),
        r.merged_cache.hit_rate(),
    )
}

fn warm_object(r: &WarmStartComparison) -> String {
    let c = &r.warm_cache;
    format!(
        "{{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.3}, \
         \"save_ms\": {:.3}, \"load_ms\": {:.3}, \"snapshot_bytes\": {}, \"absorbed\": {}, \
         \"identical\": {}, \"resumed\": {}, \"layer_hit_rates\": {{\"stats\": {:.4}, \
         \"context\": {:.4}, \"block\": {:.4}, \"schedule\": {:.4}, \"point\": {:.4}, \
         \"scaled\": {:.4}}}}}",
        r.benchmark,
        r.cold_ms,
        r.warm_ms,
        r.speedup(),
        r.save_ms,
        r.load_ms,
        r.snapshot_bytes,
        r.absorbed,
        r.identical,
        r.resumed,
        c.trace_stats.hit_rate(),
        c.context.hit_rate(),
        c.block.hit_rate(),
        c.schedule.hit_rate(),
        c.point.hit_rate(),
        c.scaled.hit_rate(),
    )
}

fn main() {
    let cli = BenchCli::parse();
    let workers = cli.parsed("--workers").unwrap_or(0usize);
    let out_path = cli.out_path("BENCH_sweep.json");
    let snapshot_dir = cli.value("--snapshot-dir").map(std::path::PathBuf::from);
    let expect_resume = cli.flag("--expect-resume");

    let (passes, effort) = if cli.smoke() {
        (10, (2, 3))
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT)
    };
    let laxities = if cli.paper() {
        paper_laxities()
    } else {
        quick_laxities()
    };
    let mode = cli.mode();

    println!(
        "sweep bench ({mode}): {} laxity points, {passes} passes, effort {effort:?}, \
         {} jobs per sweep",
        laxities.len(),
        1 + 2 * laxities.len(),
    );
    println!(
        "{:>10} {:>12} {:>13} {:>12} {:>9} {:>9} {:>10} {:>8} {:>13} {:>13}",
        "design",
        "cold (ms)",
        "cold-par (ms)",
        "shared (ms)",
        "speedup",
        "cache x",
        "identical",
        "merged",
        "shared hit %",
        "merged hit %"
    );

    let mut results = Vec::new();
    for bench in example_designs() {
        let result = sweep_comparison(&bench, &laxities, passes, effort, workers);
        println!(
            "{:>10} {:>12.1} {:>13.1} {:>12.1} {:>9.2} {:>9.2} {:>10} {:>8} {:>13.1} {:>13.1}",
            result.benchmark,
            result.cold_ms,
            result.cold_parallel_ms,
            result.shared_ms,
            result.speedup(),
            result.cache_speedup(),
            result.identical,
            result.merged_identical,
            100.0 * result.shared_cache.hit_rate(),
            100.0 * result.merged_cache.hit_rate(),
        );
        println!(
            "{:>10} shared layers: {}",
            "",
            format_layer_stats(&result.shared_cache)
        );
        results.push(result);
    }

    println!();
    println!(
        "warm start (sweep → snapshot → reload → rerun{})",
        snapshot_dir
            .as_deref()
            .map(|d| format!(", snapshots in {}", d.display()))
            .unwrap_or_default()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "design",
        "cold (ms)",
        "warm (ms)",
        "speedup",
        "save (ms)",
        "load (ms)",
        "bytes",
        "identical",
        "point hit %",
        "resumed"
    );
    let mut warm_results = Vec::new();
    for bench in example_designs() {
        let path = snapshot_dir
            .as_ref()
            .map(|dir| dir.join(format!("{}.impactcache", bench.name)));
        let result =
            warm_start_comparison(&bench, &laxities, passes, effort, workers, path.as_deref());
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>9.2} {:>10.2} {:>10.2} {:>10} {:>10} {:>12.1} {:>8}",
            result.benchmark,
            result.cold_ms,
            result.warm_ms,
            result.speedup(),
            result.save_ms,
            result.load_ms,
            result.snapshot_bytes,
            result.identical,
            100.0 * result.point_hit_rate(),
            result.resumed,
        );
        println!(
            "{:>10} warm layers: {}",
            "",
            format_layer_stats(&result.warm_cache)
        );
        warm_results.push(result);
    }

    let design_objects: Vec<String> = results.iter().map(design_object).collect();
    let warm_objects: Vec<String> = warm_results.iter().map(warm_object).collect();
    let headline = format!(
        "{{\"min_speedup\": {:.3}, \"min_cache_speedup\": {:.3}, \"all_identical\": {}, \
         \"min_warm_speedup\": {:.3}, \"all_warm_identical\": {}, \"all_fully_warm\": {}, \
         \"all_resumed\": {}}}",
        min_metric(&results, SweepComparison::speedup),
        min_metric(&results, SweepComparison::cache_speedup),
        results.iter().all(|r| r.identical && r.merged_identical)
            && warm_results.iter().all(|r| r.identical),
        min_metric(&warm_results, WarmStartComparison::speedup),
        warm_results.iter().all(|r| r.identical),
        warm_results.iter().all(WarmStartComparison::fully_warm),
        warm_results.iter().all(|r| r.resumed),
    );
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("laxity_points", laxities.len().to_string()),
        ],
        &[("designs", &design_objects), ("warm", &warm_objects)],
        &headline,
    );
    write_report(&out_path, &json);

    println!(
        "headline: shared-session sweep is at least {:.2}x faster than the sequential cold \
         sweep ({:.2}x at the same worker count), and a warm start from a snapshot is at \
         least {:.2}x faster than cold, across {} designs",
        min_metric(&results, SweepComparison::speedup),
        min_metric(&results, SweepComparison::cache_speedup),
        min_metric(&warm_results, WarmStartComparison::speedup),
        results.len()
    );

    fail_if(
        results.iter().any(|r| !r.identical || !r.merged_identical),
        "shared-session or merged-shard sweep diverged from cold runs",
    );
    fail_if(
        warm_results.iter().any(|r| !r.identical),
        "warm-started sweep diverged from its cold run",
    );
    fail_if(
        warm_results.iter().any(|r| !r.fully_warm()),
        "warm rerun missed the point layer (expected a 100% hit rate)",
    );
    if expect_resume {
        fail_if(
            warm_results.iter().any(|r| !r.resumed),
            "expected byte-identical snapshots from the previous run (--expect-resume)",
        );
    }
}
