//! Ablation of the IMPACT move families: how much of the power reduction is
//! lost when multiplexer restructuring, module selection, resource sharing or
//! register sharing is disabled. These are the design choices DESIGN.md calls
//! out; the paper applies all of them simultaneously.

use impact_bench::{prepare, run, DEFAULT_PASSES, DEFAULT_SEED};
use impact_core::SynthesisConfig;

fn main() {
    let laxity = 2.0;
    let benchmarks = ["gcd", "loops", "x25_send"];
    println!("Move-family ablation at laxity {laxity} ({DEFAULT_PASSES} passes); values are power in mW at the scaled supply");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "full", "no-mux", "no-modsel", "no-sharing", "no-regshare"
    );
    for name in benchmarks {
        let bench = impact_benchmarks::by_name(name).expect("benchmark exists");
        let (cdfg, trace) = prepare(&bench, DEFAULT_PASSES, DEFAULT_SEED);
        let full = run(&cdfg, &trace, SynthesisConfig::power_optimized(laxity));
        let no_mux = run(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(laxity).without_mux_restructuring(),
        );
        let no_modsel = run(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(laxity).without_module_selection(),
        );
        let no_share = run(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(laxity).without_resource_sharing(),
        );
        let no_regshare = run(
            &cdfg,
            &trace,
            SynthesisConfig::power_optimized(laxity).without_register_sharing(),
        );
        println!(
            "{:>10} {:>10.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            name,
            full.report.power_mw,
            no_mux.report.power_mw,
            no_modsel.report.power_mw,
            no_share.report.power_mw,
            no_regshare.report.power_mw
        );
    }
    println!();
    println!("Higher numbers in an ablation column mean the disabled move family was contributing savings.");
}
