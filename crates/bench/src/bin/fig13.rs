//! Regenerates Figure 13 of the paper: normalized power and area versus the
//! laxity factor for every benchmark.
//!
//! Usage:
//!
//! ```text
//! fig13 [--paper] [--benchmark NAME] [--passes N]
//! ```
//!
//! `--paper` sweeps the full 1.0–3.0 laxity grid in 0.2 steps (slower); the
//! default uses a coarser 5-point grid. Output is one table per benchmark
//! with the `A-Power`, `I-Power` and `I-Area` series of the corresponding
//! sub-figure.

use impact_bench::{figure13_series, paper_laxities, quick_laxities, BenchCli, DEFAULT_PASSES};

fn main() {
    let cli = BenchCli::parse();
    let passes = cli.parsed("--passes").unwrap_or(DEFAULT_PASSES);
    let only = cli.value("--benchmark");

    let laxities = if cli.paper() {
        paper_laxities()
    } else {
        quick_laxities()
    };

    println!("Figure 13 reproduction: normalized power and area vs. laxity factor");
    println!(
        "({} laxity points, {} input passes per benchmark; normalization base = area-optimized design at laxity 1.0, 5 V)",
        laxities.len(),
        passes
    );

    for bench in impact_benchmarks::all_benchmarks() {
        if let Some(name) = &only {
            if !bench.name.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let series = figure13_series(&bench, &laxities, passes);
        println!();
        println!(
            "== {} ({}) — base power {:.4} mW",
            series.benchmark,
            bench.description,
            series
                .points
                .first()
                .map(|p| p.base_power_mw)
                .unwrap_or(0.0)
        );
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>8}",
            "laxity", "A-Power", "I-Power", "I-Area", "I-Vdd"
        );
        for p in &series.points {
            println!(
                "{:>8.1} {:>10.3} {:>10.3} {:>10.3} {:>8.2}",
                p.laxity, p.a_power, p.i_power, p.i_area, p.i_vdd
            );
        }
        println!(
            "   max reduction vs base: {:.2}x, vs A-Power: {:.2}x, max area overhead: {:.0}%",
            series.max_reduction_vs_base(),
            series.max_reduction_vs_a_power(),
            100.0 * series.max_area_overhead()
        );
    }
}
