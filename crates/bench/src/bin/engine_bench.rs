//! Headline benchmark of the incremental evaluation engine: times
//! `Impact::synthesize` with the brute-force sequential configuration against
//! the cached + parallel-ranking incremental configuration on the example
//! designs, verifies both produce bit-identical synthesis reports, and writes
//! the measurements to `BENCH_engine.json`.
//!
//! Usage: `engine_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort)
//! so CI can track the perf trajectory in seconds rather than minutes. The
//! process exits non-zero if any design's reports diverge, making the
//! equivalence check a hard gate wherever the bench runs.

use std::io::Write as _;

use impact_bench::{
    engine_comparison, format_layer_stats, EngineComparison, DEFAULT_EFFORT, DEFAULT_PASSES,
};

/// The example designs the comparison runs on, smallest first.
fn designs() -> Vec<impact_benchmarks::Benchmark> {
    vec![
        impact_benchmarks::gcd(),
        impact_benchmarks::x25_send(),
        impact_benchmarks::dealer(),
        impact_benchmarks::paulin(),
    ]
}

fn json_for(results: &[EngineComparison], mode: &str, laxity: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"laxity\": {laxity},\n"));
    out.push_str("  \"designs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"sequential_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
            r.benchmark,
            r.nodes,
            r.sequential_ms,
            r.incremental_ms,
            r.speedup(),
            r.identical,
            r.cache.hits,
            r.cache.misses,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let largest = results.iter().max_by_key(|r| r.nodes);
    if let Some(largest) = largest {
        out.push_str(&format!(
            "  \"headline\": {{\"design\": \"{}\", \"speedup\": {:.3}}}\n",
            largest.benchmark,
            largest.speedup()
        ));
    } else {
        out.push_str("  \"headline\": null\n");
    }
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let (passes, effort) = if smoke {
        (12, (2, 3))
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT)
    };
    let laxity = 2.0;
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "engine bench ({mode}): {} passes, effort {:?}, laxity {laxity}",
        passes, effort
    );
    println!(
        "{:>10} {:>7} {:>14} {:>14} {:>9} {:>10} {:>12}",
        "design", "nodes", "seq (ms)", "inc (ms)", "speedup", "identical", "hit rate (%)"
    );

    let mut results = Vec::new();
    for bench in designs() {
        let result = engine_comparison(&bench, passes, effort, laxity);
        let hit_rate = 100.0 * result.cache.hit_rate();
        println!(
            "{:>10} {:>7} {:>14.1} {:>14.1} {:>9.2} {:>10} {:>12.1}",
            result.benchmark,
            result.nodes,
            result.sequential_ms,
            result.incremental_ms,
            result.speedup(),
            result.identical,
            hit_rate,
        );
        println!("{:>10} layers: {}", "", format_layer_stats(&result.cache));
        results.push(result);
    }

    let json = json_for(&results, mode, laxity);
    let mut file = std::fs::File::create(&out_path).expect("bench output file is writable");
    file.write_all(json.as_bytes())
        .expect("bench output writes");
    println!("wrote {out_path}");

    if let Some(largest) = results.iter().max_by_key(|r| r.nodes) {
        println!(
            "headline: {:.2}x speedup of Impact::synthesize on {} ({} nodes)",
            largest.speedup(),
            largest.benchmark,
            largest.nodes
        );
    }

    if results.iter().any(|r| !r.identical) {
        eprintln!("FAIL: sequential and incremental engines diverged");
        std::process::exit(1);
    }
}
