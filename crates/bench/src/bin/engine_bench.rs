//! Headline benchmark of the incremental evaluation engine: times
//! `Impact::synthesize` with the brute-force sequential configuration against
//! the cached + parallel-ranking incremental configuration on the example
//! designs, verifies both produce bit-identical synthesis reports, and writes
//! the measurements to `BENCH_engine.json`.
//!
//! Usage: `engine_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort)
//! so CI can track the perf trajectory in seconds rather than minutes. The
//! process exits non-zero if any design's reports diverge, making the
//! equivalence check a hard gate wherever the bench runs.

use impact_bench::{
    engine_comparison, example_designs, fail_if, format_layer_stats, report_json, write_report,
    BenchCli, EngineComparison, DEFAULT_EFFORT, DEFAULT_PASSES,
};

fn design_object(r: &EngineComparison) -> String {
    format!(
        "{{\"name\": \"{}\", \"nodes\": {}, \"sequential_ms\": {:.3}, \
         \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        r.benchmark,
        r.nodes,
        r.sequential_ms,
        r.incremental_ms,
        r.speedup(),
        r.identical,
        r.cache.hits,
        r.cache.misses,
    )
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_engine.json");

    let (passes, effort) = if cli.smoke() {
        (12, (2, 3))
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT)
    };
    let laxity = 2.0;
    let mode = cli.mode();

    println!(
        "engine bench ({mode}): {} passes, effort {:?}, laxity {laxity}",
        passes, effort
    );
    println!(
        "{:>10} {:>7} {:>14} {:>14} {:>9} {:>10} {:>12}",
        "design", "nodes", "seq (ms)", "inc (ms)", "speedup", "identical", "hit rate (%)"
    );

    let mut results = Vec::new();
    for bench in example_designs() {
        let result = engine_comparison(&bench, passes, effort, laxity);
        let hit_rate = 100.0 * result.cache.hit_rate();
        println!(
            "{:>10} {:>7} {:>14.1} {:>14.1} {:>9.2} {:>10} {:>12.1}",
            result.benchmark,
            result.nodes,
            result.sequential_ms,
            result.incremental_ms,
            result.speedup(),
            result.identical,
            hit_rate,
        );
        println!("{:>10} layers: {}", "", format_layer_stats(&result.cache));
        results.push(result);
    }

    let design_objects: Vec<String> = results.iter().map(design_object).collect();
    let headline = match results.iter().max_by_key(|r| r.nodes) {
        Some(largest) => format!(
            "{{\"design\": \"{}\", \"speedup\": {:.3}}}",
            largest.benchmark,
            largest.speedup()
        ),
        None => "null".to_string(),
    };
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("laxity", laxity.to_string()),
        ],
        &[("designs", &design_objects)],
        &headline,
    );
    write_report(&out_path, &json);

    if let Some(largest) = results.iter().max_by_key(|r| r.nodes) {
        println!(
            "headline: {:.2}x speedup of Impact::synthesize on {} ({} nodes)",
            largest.speedup(),
            largest.benchmark,
            largest.nodes
        );
    }

    fail_if(
        results.iter().any(|r| !r.identical),
        "sequential and incremental engines diverged",
    );
}
