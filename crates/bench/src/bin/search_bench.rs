//! Headline benchmark of the search-policy layer: runs every example design
//! through all four explorers — greedy (the oracle the refactor is pinned
//! against), beam, restart, and the Pareto sweep — at each laxity point,
//! cold and single-worker so the quality-vs-time curve is honest, and audits
//! every reported result (and every Pareto-front member) with the
//! `impact_verify` static checker. The measurements go to
//! `BENCH_search.json`.
//!
//! Usage: `search_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs a reduced input set (fewer passes, smaller search effort,
//! two laxity points) so CI can track the trajectory in seconds. The process
//! exits non-zero if any explorer lands on worse final power than greedy at
//! the same laxity, or if any reported point fails the static audit.

use impact_bench::{
    example_designs, fail_if, format_explore_stats, prepare, report_json, search_cell,
    write_report, BenchCli, SearchComparison, DEFAULT_EFFORT, DEFAULT_PASSES, DEFAULT_SEED,
};
use impact_core::{Evaluator, ExplorerKind, SynthesisConfig};

/// Violations found by the static audit of one cell: every explorer's final
/// outcome, plus every member of the Pareto front individually.
fn audit_cell(
    cdfg: &impact_cdfg::Cdfg,
    trace: &impact_behsim::ExecutionTrace,
    cell: &SearchComparison,
) -> usize {
    let config = SynthesisConfig::power_optimized(cell.laxity);
    let evaluator = Evaluator::new(cdfg, trace, config).expect("bench laxities are feasible");
    let mut violations = 0;
    for point in &cell.points {
        let outcome = &point.result.outcome;
        for violation in evaluator.audit_outcome(outcome) {
            eprintln!(
                "AUDIT {} {}@{:.1}: {violation}",
                cell.benchmark,
                point.explorer.name(),
                cell.laxity
            );
            violations += 1;
        }
        for (index, member) in outcome.front.iter().enumerate() {
            for violation in evaluator.audit_design_point(member) {
                eprintln!(
                    "AUDIT {} {}@{:.1} front[{index}]: {violation}",
                    cell.benchmark,
                    point.explorer.name(),
                    cell.laxity
                );
                violations += 1;
            }
        }
    }
    violations
}

fn cell_objects(cell: &SearchComparison, violations: usize) -> Vec<String> {
    let greedy_power = cell.greedy().power_mw();
    cell.points
        .iter()
        .map(|point| {
            let report = &point.result.outcome.report;
            let stats = point.explore_stats();
            format!(
                "{{\"design\": \"{}\", \"laxity\": {:.1}, \"explorer\": \"{}\", \
                 \"power_mw\": {:.6}, \"power_vs_greedy\": {:.6}, \"area\": {:.1}, \
                 \"vdd\": {:.2}, \"wall_ms\": {:.3}, \"moves\": {}, \"front_size\": {}, \
                 \"probes\": {}, \"rank_probes\": {}, \"violations\": {}}}",
                cell.benchmark,
                cell.laxity,
                point.explorer.name(),
                report.power_mw,
                report.power_mw / greedy_power,
                report.area,
                report.vdd,
                point.result.wall_ms,
                report.moves_applied,
                point.result.outcome.front.len(),
                stats.probes,
                stats.rank_probes,
                violations,
            )
        })
        .collect()
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_search.json");
    let (passes, effort, laxities) = if cli.smoke() {
        (10, (2, 3), vec![1.0, 2.0])
    } else {
        (DEFAULT_PASSES, DEFAULT_EFFORT, vec![1.0, 1.5, 2.0, 2.5])
    };
    let explorers = ExplorerKind::all();
    let mode = cli.mode();

    println!(
        "search bench ({mode}): {} designs x {} laxities x {} explorers, {passes} passes, \
         effort {effort:?}",
        example_designs().len(),
        laxities.len(),
        explorers.len(),
    );
    println!(
        "{:>10} {:>7} {:>9} {:>12} {:>9} {:>10} {:>6} {:>6}",
        "design", "laxity", "explorer", "power (mW)", "vs greedy", "wall (ms)", "moves", "front"
    );

    let mut cells = Vec::new();
    let mut objects = Vec::new();
    let mut total_violations = 0;
    for bench in example_designs() {
        let (cdfg, trace) = prepare(&bench, passes, DEFAULT_SEED);
        for &laxity in &laxities {
            let cell = search_cell(&cdfg, &trace, bench.name, laxity, effort, &explorers);
            let violations = audit_cell(&cdfg, &trace, &cell);
            total_violations += violations;
            let greedy_power = cell.greedy().power_mw();
            for point in &cell.points {
                println!(
                    "{:>10} {:>7.1} {:>9} {:>12.4} {:>9.4} {:>10.1} {:>6} {:>6}",
                    cell.benchmark,
                    cell.laxity,
                    point.explorer.name(),
                    point.power_mw(),
                    point.power_mw() / greedy_power,
                    point.result.wall_ms,
                    point.result.outcome.report.moves_applied,
                    point.result.outcome.front.len(),
                );
            }
            let mut cell_stats = impact_core::ExploreStats::default();
            for point in &cell.points {
                cell_stats.accumulate(point.explore_stats());
            }
            println!("{:>10} {}", "", format_explore_stats(&cell_stats));
            objects.extend(cell_objects(&cell, violations));
            cells.push(cell);
        }
    }

    let beats: Vec<&SearchComparison> = cells.iter().filter(|c| c.any_beats_greedy()).collect();
    let best_gain = cells
        .iter()
        .flat_map(|cell| {
            let greedy = cell.greedy().power_mw();
            cell.points.iter().map(move |p| 1.0 - p.power_mw() / greedy)
        })
        .fold(0.0, f64::max);
    let headline = format!(
        "{{\"cells\": {}, \"none_worse_than_greedy\": {}, \"beats_greedy_cells\": {}, \
         \"any_beats_greedy\": {}, \"best_power_gain\": {:.4}, \"violations\": {}}}",
        cells.len(),
        cells.iter().all(SearchComparison::none_worse_than_greedy),
        beats.len(),
        !beats.is_empty(),
        best_gain,
        total_violations,
    );
    let json = report_json(
        &[
            ("mode", format!("\"{mode}\"")),
            ("laxity_points", laxities.len().to_string()),
        ],
        &[("cells", &objects)],
        &headline,
    );
    write_report(&out_path, &json);

    println!(
        "headline: {} of {} cells improved on greedy (best power gain {:.1}%), \
         {} audit violations",
        beats.len(),
        cells.len(),
        100.0 * best_gain,
        total_violations,
    );

    fail_if(
        cells.iter().any(|c| !c.none_worse_than_greedy()),
        "an explorer landed on worse final power than the greedy oracle",
    );
    fail_if(
        total_violations > 0,
        "a reported search result failed the impact_verify static audit",
    );
    fail_if(
        beats.is_empty(),
        "no cell improved on greedy (expected beam or restart to win somewhere)",
    );
}
