//! Regenerates the headline numbers of the abstract and Section 4:
//! per-benchmark maximum power reduction versus the 5 V area-optimized base,
//! versus the Vdd-scaled area-optimized designs, the area overhead, and the
//! multiplexer power share of the area-optimized designs.

use impact_bench::{figure13_series, prepare, quick_laxities, run, DEFAULT_PASSES};
use impact_core::SynthesisConfig;

fn main() {
    let laxities = quick_laxities();
    println!(
        "IMPACT headline results ({} laxity points, {} passes)",
        laxities.len(),
        DEFAULT_PASSES
    );
    println!(
        "{:>10} {:>16} {:>18} {:>14} {:>12}",
        "benchmark", "vs base (x)", "vs A-Power (x)", "area ovhd (%)", "mux share (%)"
    );
    let mut worst_base = 0.0f64;
    let mut worst_apower = 0.0f64;
    let mut worst_area = 0.0f64;
    for bench in impact_benchmarks::all_benchmarks() {
        let series = figure13_series(&bench, &laxities, DEFAULT_PASSES);
        // Mux power share of the laxity-1 area-optimized design (the paper's
        // ">40% of total power" motivation for the restructuring move).
        let (cdfg, trace) = prepare(&bench, DEFAULT_PASSES, impact_bench::DEFAULT_SEED);
        let area_opt = run(&cdfg, &trace, SynthesisConfig::area_optimized(1.0));
        let mux_share = area_opt.report.breakdown.mux_share();
        println!(
            "{:>10} {:>16.2} {:>18.2} {:>14.0} {:>12.0}",
            series.benchmark,
            series.max_reduction_vs_base(),
            series.max_reduction_vs_a_power(),
            100.0 * series.max_area_overhead(),
            100.0 * mux_share,
        );
        worst_base = worst_base.max(series.max_reduction_vs_base());
        worst_apower = worst_apower.max(series.max_reduction_vs_a_power());
        worst_area = worst_area.max(series.max_area_overhead());
    }
    println!();
    println!("Paper:    up to 6.7x vs base, up to 2.6x vs A-Power, <=30% area overhead");
    println!(
        "Measured: up to {worst_base:.1}x vs base, up to {worst_apower:.1}x vs A-Power, <= {:.0}% area overhead",
        100.0 * worst_area
    );
}
