//! The application layer of the sharded sweep: what a shard job *is* (a
//! benchmark + configuration spec with a wire encoding), the worker app
//! that runs one, and the process spawner gluing `impact_shard`'s
//! coordinator to real worker subprocesses.
//!
//! The shard layer itself moves opaque payloads; this module gives them
//! meaning. A job payload is an encoded [`ShardSpec`] — everything a worker
//! needs to reproduce the exact run `run_batch` would do in-process:
//! benchmark name, optimization mode, laxity, input-generation knobs and
//! search effort. A result payload is the encoded
//! [`SynthesisReport`](impact_core::SynthesisReport); comparing those bytes
//! against an in-process baseline is the bench's bit-identity gate.

use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use impact_behsim::ExecutionTrace;
use impact_benchmarks::Benchmark;
use impact_cdfg::Cdfg;
use impact_codec::{
    decode_from_slice, encode_to_vec, Decode, DecodeError, Decoder, Encode, Encoder,
};
use impact_core::{
    EngineConfig, ExplorerKind, Impact, SweepSession, SynthesisConfig, SynthesisReport,
};
use impact_shard::{coordinate, CoordinatorOutcome, ShardApp, ShardJob, WorkerLink};

use crate::prepare;

// Bumped 0x71 -> 0x72 when the spec grew its `explorer` field; job payloads
// are ephemeral pipe traffic, but a version-mismatched worker should reject
// the spec rather than misread it.
const TAG_SHARD_SPEC: u8 = 0x72;

const MODE_AREA: u8 = 0;
const MODE_POWER: u8 = 1;

/// Everything a worker needs to reproduce one sweep job: the workload
/// (benchmark + input generation) and the synthesis configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct ShardSpec {
    /// Benchmark name (resolved with [`benchmark_by_name`]).
    pub benchmark: String,
    /// `true` for power optimization, `false` for area.
    pub power: bool,
    /// Laxity factor of the run.
    pub laxity: f64,
    /// Input passes fed to the behavioral simulator.
    pub input_passes: usize,
    /// Seed of the deterministic input generators.
    pub seed: u64,
    /// Improvement-pass limit of the search.
    pub max_passes: usize,
    /// Move-sequence length limit of the search.
    pub max_sequence: usize,
    /// Ranking-thread pin for the worker's engine (`0` = one per CPU).
    /// Workers sharing a machine pass `1`; deterministic either way.
    pub ranking_threads: usize,
    /// Search strategy the worker's engine runs this job under.
    pub explorer: ExplorerKind,
}

impl ShardSpec {
    /// The synthesis configuration this spec describes.
    pub fn config(&self) -> SynthesisConfig {
        let base = if self.power {
            SynthesisConfig::power_optimized(self.laxity)
        } else {
            SynthesisConfig::area_optimized(self.laxity)
        };
        base.with_effort(self.max_passes, self.max_sequence)
            .with_engine(
                EngineConfig::default()
                    .with_ranking_threads(self.ranking_threads)
                    .with_explorer(self.explorer),
            )
    }
}

impl Encode for ShardSpec {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SHARD_SPEC);
        w.put_str(&self.benchmark);
        w.put_u8(if self.power { MODE_POWER } else { MODE_AREA });
        w.put_f64(self.laxity);
        w.put_usize(self.input_passes);
        w.put_u64(self.seed);
        w.put_usize(self.max_passes);
        w.put_usize(self.max_sequence);
        w.put_usize(self.ranking_threads);
        self.explorer.encode(w);
    }
}

impl Decode for ShardSpec {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SHARD_SPEC)?;
        let benchmark = r.take_str()?.to_string();
        let power = match r.take_u8()? {
            MODE_AREA => false,
            MODE_POWER => true,
            _ => return Err(DecodeError::Invalid("unknown shard-spec mode")),
        };
        Ok(Self {
            benchmark,
            power,
            laxity: r.take_f64()?,
            input_passes: r.take_usize()?,
            seed: r.take_u64()?,
            max_passes: r.take_usize()?,
            max_sequence: r.take_usize()?,
            ranking_threads: r.take_usize()?,
            explorer: ExplorerKind::decode(r)?,
        })
    }
}

/// Resolves a benchmark by the name its [`Benchmark`] carries.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    match name {
        "loops" => Some(impact_benchmarks::loops()),
        "gcd" => Some(impact_benchmarks::gcd()),
        "x25_send" => Some(impact_benchmarks::x25_send()),
        "dealer" => Some(impact_benchmarks::dealer()),
        "cordic" => Some(impact_benchmarks::cordic()),
        "paulin" => Some(impact_benchmarks::paulin()),
        _ => None,
    }
}

/// Builds the sharded equivalent of one [`figure13_jobs`](crate::figure13_jobs)
/// batch per benchmark, concatenated: for each benchmark the normalization
/// base, then an area- and a power-optimized job per laxity point. Labels are
/// `benchmark/label` (e.g. `paulin/power@1.4`), and the job order matches the
/// in-process baseline the bench compares against.
pub fn shard_jobs(
    benchmarks: &[Benchmark],
    laxities: &[f64],
    input_passes: usize,
    seed: u64,
    effort: (usize, usize),
    ranking_threads: usize,
) -> Vec<ShardJob> {
    let (max_passes, max_sequence) = effort;
    let spec = |benchmark: &str, power: bool, laxity: f64| ShardSpec {
        benchmark: benchmark.to_string(),
        power,
        laxity,
        input_passes,
        seed,
        max_passes,
        max_sequence,
        ranking_threads,
        explorer: ExplorerKind::Greedy,
    };
    let mut jobs = Vec::with_capacity(benchmarks.len() * (1 + 2 * laxities.len()));
    for bench in benchmarks {
        jobs.push(ShardJob {
            label: format!("{}/base", bench.name),
            payload: encode_to_vec(&spec(bench.name, false, 1.0)),
        });
        for &laxity in laxities {
            jobs.push(ShardJob {
                label: format!("{}/area@{laxity:.1}", bench.name),
                payload: encode_to_vec(&spec(bench.name, false, laxity)),
            });
            jobs.push(ShardJob {
                label: format!("{}/power@{laxity:.1}", bench.name),
                payload: encode_to_vec(&spec(bench.name, true, laxity)),
            });
        }
    }
    jobs
}

/// The worker application of the sharded sweep: one [`SweepSession`] for
/// every job, workloads (compile + simulate) memoized per benchmark so a
/// worker pays the preparation once no matter how many laxity points it
/// draws from the queue.
pub struct SweepShardApp {
    session: SweepSession,
    workloads: Vec<(String, usize, u64, Cdfg, ExecutionTrace)>,
}

impl SweepShardApp {
    /// An app with a fresh session and no prepared workloads.
    pub fn new() -> Self {
        Self {
            session: SweepSession::new(),
            workloads: Vec::new(),
        }
    }

    fn workload_index(&mut self, spec: &ShardSpec) -> usize {
        if let Some(index) = self
            .workloads
            .iter()
            .position(|(name, passes, seed, _, _)| {
                name == &spec.benchmark && *passes == spec.input_passes && *seed == spec.seed
            })
        {
            return index;
        }
        let bench = benchmark_by_name(&spec.benchmark)
            .unwrap_or_else(|| panic!("unknown shard benchmark `{}`", spec.benchmark));
        let (cdfg, trace) = prepare(&bench, spec.input_passes, spec.seed);
        self.workloads.push((
            spec.benchmark.clone(),
            spec.input_passes,
            spec.seed,
            cdfg,
            trace,
        ));
        self.workloads.len() - 1
    }
}

impl Default for SweepShardApp {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardApp for SweepShardApp {
    fn session(&self) -> &SweepSession {
        &self.session
    }

    fn run(&mut self, payload: &[u8]) -> Vec<u8> {
        let spec: ShardSpec =
            decode_from_slice(payload).expect("coordinator sends well-formed shard specs");
        let index = self.workload_index(&spec);
        let (_, _, _, cdfg, trace) = &self.workloads[index];
        let outcome = Impact::new(spec.config())
            .synthesize_with_session(cdfg, trace, &self.session)
            .unwrap_or_else(|error| panic!("shard job on `{}` failed: {error}", spec.benchmark));
        encode_to_vec(&outcome.report)
    }
}

/// Decodes the reports of a coordinated run's results, in order.
///
/// # Panics
///
/// Panics when a payload is not an encoded report — workers only ever send
/// reports, so a mismatch is a bug, not an input problem.
pub fn decode_reports(outcome: &CoordinatorOutcome) -> Vec<SynthesisReport> {
    outcome
        .results
        .iter()
        .map(|result| decode_from_slice(&result.payload).expect("workers return encoded reports"))
        .collect()
}

/// Spawns `workers` copies of `exe` in worker mode and coordinates `jobs`
/// over them. The hub session starts cold; after the run it holds every
/// verified entry the fleet produced. Worker stderr passes through (their
/// logs interleave with the coordinator's), stdin/stdout carry the protocol.
///
/// # Errors
///
/// Propagates spawn and protocol errors; a worker exiting nonzero after a
/// completed run is also an error.
pub fn run_sharded(
    exe: &Path,
    workers: u32,
    jobs: Vec<ShardJob>,
    mailbox: Option<&Path>,
) -> std::io::Result<(CoordinatorOutcome, SweepSession)> {
    let mut children: Vec<Child> = Vec::with_capacity(workers as usize);
    let mut links = Vec::with_capacity(workers as usize);
    for id in 0..workers {
        let mut child = Command::new(exe)
            .arg("--shard-worker")
            .arg("--worker-id")
            .arg(id.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        links.push(WorkerLink {
            id,
            reader: Box::new(BufReader::new(stdout)),
            writer: Box::new(BufWriter::new(stdin)),
        });
        children.push(child);
    }

    let hub = SweepSession::new();
    let outcome = coordinate(&hub, links, jobs, mailbox);
    // Reap the workers regardless of how coordination went, so an error
    // return never leaks zombie processes.
    let mut statuses = Vec::new();
    for child in &mut children {
        statuses.push(child.wait());
    }
    let outcome = outcome?;
    for (id, status) in statuses.into_iter().enumerate() {
        let status = status?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "shard worker {id} exited with {status}"
            )));
        }
    }
    Ok((outcome, hub))
}

/// The worker-mode entry point of `shard_bench`: serves jobs over
/// stdin/stdout until the coordinator shuts the link down. Returns the exit
/// code for `main` (nonzero on a broken link).
pub fn run_shard_worker(worker_id: u32) -> i32 {
    let mut app = SweepShardApp::new();
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    match impact_shard::serve(&mut app, worker_id, stdin, BufWriter::new(stdout)) {
        Ok(stats) => {
            eprintln!(
                "worker {worker_id}: {} jobs, {} syncs in ({} rejected), {} syncs out",
                stats.jobs,
                stats.exchange.accepted + stats.exchange.rejected(),
                stats.exchange.rejected(),
                stats.exchange.sent,
            );
            0
        }
        Err(error) => {
            eprintln!("worker {worker_id}: link failed: {error}");
            1
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip() {
        for explorer in ExplorerKind::all() {
            let spec = ShardSpec {
                benchmark: "paulin".into(),
                power: true,
                laxity: 1.4,
                input_passes: 48,
                seed: 1998,
                max_passes: 3,
                max_sequence: 5,
                ranking_threads: 1,
                explorer,
            };
            let decoded: ShardSpec = decode_from_slice(&encode_to_vec(&spec)).unwrap();
            assert_eq!(decoded, spec);
            assert_eq!(spec.config().engine.explorer, explorer);
        }
    }

    #[test]
    fn job_labels_mirror_the_figure13_batch() {
        let jobs = shard_jobs(&[impact_benchmarks::gcd()], &[1.0, 2.0], 8, 11, (2, 3), 1);
        let labels: Vec<&str> = jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "gcd/base",
                "gcd/area@1.0",
                "gcd/power@1.0",
                "gcd/area@2.0",
                "gcd/power@2.0"
            ]
        );
        let spec: ShardSpec = decode_from_slice(&jobs[2].payload).unwrap();
        assert!(spec.power);
        assert_eq!(spec.laxity, 1.0);
        assert_eq!(spec.explorer, ExplorerKind::Greedy);
    }

    #[test]
    fn every_example_design_resolves_by_name() {
        for bench in crate::example_designs() {
            assert!(benchmark_by_name(bench.name).is_some(), "{}", bench.name);
        }
        assert!(benchmark_by_name("nonesuch").is_none());
    }
}
