#![allow(clippy::unwrap_used)]

//! Times one full design-point evaluation (schedule + trace manipulation +
//! power estimate + Vdd scaling) and one cheap fixed-supply evaluation — the
//! two operations the iterative-improvement inner loop performs per candidate
//! move.

use criterion::{criterion_group, criterion_main, Criterion};
use impact_bench::prepare;
use impact_core::{Evaluator, SynthesisConfig};
use impact_modlib::{ModuleLibrary, VDD_REFERENCE};
use impact_rtl::RtlDesign;

fn evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("move_evaluation");
    for name in ["gcd", "loops", "x25_send"] {
        let bench = impact_benchmarks::by_name(name).expect("benchmark exists");
        let (cdfg, trace) = prepare(&bench, 16, 7);
        let evaluator =
            Evaluator::new(&cdfg, &trace, SynthesisConfig::power_optimized(2.0)).unwrap();
        let library = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &library);
        group.bench_function(format!("full_with_vdd_search/{name}"), |b| {
            b.iter(|| std::hint::black_box(evaluator.evaluate(&design).unwrap().unwrap().vdd))
        });
        group.bench_function(format!("fixed_supply/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    evaluator
                        .evaluate_at_vdd(&design, VDD_REFERENCE)
                        .unwrap()
                        .unwrap()
                        .power
                        .total_mw(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, evaluation);
criterion_main!(benches);
