#![allow(clippy::unwrap_used)]

//! Times the baseline and Wavesched schedulers on every benchmark
//! (the scheduling step runs inside every move evaluation, so its cost
//! dominates the synthesis runtime).

use criterion::{criterion_group, criterion_main, Criterion};
use impact_bench::prepare;
use impact_sched::{uniform_problem, BaselineScheduler, Scheduler, WaveScheduler};

fn schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    for bench in impact_benchmarks::all_benchmarks() {
        let (cdfg, trace) = prepare(&bench, 16, 7);
        let problem = uniform_problem(&cdfg, trace.profile());
        group.bench_function(format!("baseline/{}", bench.name), |b| {
            b.iter(|| {
                std::hint::black_box(BaselineScheduler::new().schedule(&problem).unwrap().enc)
            })
        });
        group.bench_function(format!("wavesched/{}", bench.name), |b| {
            b.iter(|| std::hint::black_box(WaveScheduler::new().schedule(&problem).unwrap().enc))
        });
    }
    group.finish();
}

criterion_group!(benches, schedulers);
criterion_main!(benches);
