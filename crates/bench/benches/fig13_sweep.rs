#![allow(clippy::unwrap_used)]

//! Times one Figure 13 design point (area-optimized + power-optimized
//! synthesis at one laxity) per benchmark. Regenerating the whole figure is
//! `cargo run -p impact-bench --bin fig13`; this bench tracks how expensive
//! one sweep point is.

use criterion::{criterion_group, criterion_main, Criterion};
use impact_bench::{prepare, run};
use impact_core::SynthesisConfig;

fn fig13_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_point");
    group.sample_size(10);
    for name in ["gcd", "dealer", "cordic"] {
        let bench = impact_benchmarks::by_name(name).expect("benchmark exists");
        let (cdfg, trace) = prepare(&bench, 16, 7);
        group.bench_function(name, |b| {
            b.iter(|| {
                let area = run(&cdfg, &trace, SynthesisConfig::area_optimized(2.0));
                let power = run(&cdfg, &trace, SynthesisConfig::power_optimized(2.0));
                std::hint::black_box((area.report.power_mw, power.report.power_mw))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig13_point);
criterion_main!(benches);
