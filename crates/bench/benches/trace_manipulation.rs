#![allow(clippy::unwrap_used)]

//! Times trace manipulation: behavioral simulation (done once) versus the
//! per-move trace merging and statistics extraction it amortizes
//! (Section 2.3's motivation for avoiding re-simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use impact_behsim::simulate;
use impact_modlib::ModuleLibrary;
use impact_rtl::RtlDesign;
use impact_trace::RtTraces;

fn trace_manipulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_manipulation");
    let bench = impact_benchmarks::gcd();
    let cdfg = bench.compile().unwrap();
    let inputs = bench.input_sequences(48, 7);

    group.bench_function("behavioral_simulation_48_passes", |b| {
        b.iter(|| std::hint::black_box(simulate(&cdfg, &inputs).unwrap().event_count()))
    });

    let trace = simulate(&cdfg, &inputs).unwrap();
    let library = ModuleLibrary::standard();
    let mut design = RtlDesign::initial_parallel(&cdfg, &library);
    let adders = design.units_of_class(impact_cdfg::OpClass::AddSub);
    design.share_fus(adders[0], adders[1]).unwrap();

    group.bench_function("merge_shared_adder_trace", |b| {
        let rt = RtTraces::new(&cdfg, &design, &trace);
        b.iter(|| std::hint::black_box(rt.merged_fu_events(adders[0]).len()))
    });

    group.bench_function("mux_statistics_all_sites", |b| {
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let sites = design.mux_sites(&cdfg);
        b.iter(|| {
            let total: f64 = sites
                .iter()
                .map(|s| rt.mux_source_stats(s).iter().map(|m| m.ap()).sum::<f64>())
                .sum();
            std::hint::black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, trace_manipulation);
criterion_main!(benches);
