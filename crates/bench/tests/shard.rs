#![allow(clippy::unwrap_used)]

//! End-to-end tests of the sharded sweep: in-memory fleets merge
//! bit-identically to the in-process baseline, corrupted cache exchanges
//! degrade to cold starts without changing results, and the real
//! `shard_bench` worker subprocesses reproduce the same reports.

use std::path::Path;

use impact_bench::{
    decode_reports, figure13_jobs, prepare, run_batch, run_sharded, shard_jobs, SweepJob,
    SweepShardApp,
};
use impact_codec::encode_to_vec;
use impact_core::{SweepSession, SynthesisReport};
use impact_shard::wire::pipe;
use impact_shard::{
    coordinate, protocol, serve, Message, ShardApp as _, ShardJob, WorkerLink, PROTOCOL_VERSION,
};

const LAXITIES: [f64; 2] = [1.4, 2.2];
const PASSES: usize = 8;
const SEED: u64 = 11;
const EFFORT: (usize, usize) = (2, 3);

/// The single-process reports every sharded variant must reproduce.
fn baseline() -> Vec<SynthesisReport> {
    let bench = impact_benchmarks::gcd();
    let (cdfg, trace) = prepare(&bench, PASSES, SEED);
    let jobs = figure13_jobs(&cdfg, &trace, &LAXITIES, EFFORT);
    let jobs: Vec<SweepJob<'_>> = jobs
        .into_iter()
        .map(|job| SweepJob {
            label: format!("gcd/{}", job.label),
            ..job
        })
        .collect();
    let session = SweepSession::new();
    run_batch(&jobs, Some(&session), 1)
        .into_iter()
        .map(|result| result.outcome.report)
        .collect()
}

fn jobs() -> Vec<ShardJob> {
    shard_jobs(
        &[impact_benchmarks::gcd()],
        &LAXITIES,
        PASSES,
        SEED,
        EFFORT,
        1,
    )
}

/// Spawns `count` real worker loops on threads over in-memory pipes.
fn in_memory_fleet(count: u32) -> (Vec<WorkerLink>, Vec<std::thread::JoinHandle<()>>) {
    let mut links = Vec::new();
    let mut handles = Vec::new();
    for id in 0..count {
        let (to_worker, worker_reads) = pipe();
        let (worker_writes, from_worker) = pipe();
        links.push(WorkerLink {
            id,
            reader: Box::new(from_worker),
            writer: Box::new(to_worker),
        });
        handles.push(std::thread::spawn(move || {
            let mut app = SweepShardApp::new();
            serve(&mut app, id, worker_reads, worker_writes).unwrap();
        }));
    }
    (links, handles)
}

#[test]
fn in_memory_fleets_merge_bit_identically() {
    let expected = baseline();
    for workers in [1, 3] {
        let hub = SweepSession::new();
        let (links, handles) = in_memory_fleet(workers);
        let outcome = coordinate(&hub, links, jobs(), None).unwrap();
        for handle in handles {
            handle.join().unwrap();
        }

        let reports = decode_reports(&outcome);
        assert_eq!(reports, expected, "{workers}-worker fleet diverged");
        for (result, report) in outcome.results.iter().zip(&expected) {
            assert_eq!(
                result.payload,
                encode_to_vec(report),
                "payload bytes diverged on `{}`",
                result.label
            );
        }
        assert_eq!(
            outcome.jobs_per_link.iter().sum::<u64>(),
            outcome.results.len() as u64
        );
        if workers > 1 {
            assert!(
                outcome.exchange.accepted > 0,
                "a multi-worker fleet exchanges cache deltas"
            );
            // The hub accumulated the fleet's verified work.
            assert!(hub.stats().points > 0);
        }
    }
}

/// A worker that computes honest results but garbles every cache delta it
/// sends: the coordinator must reject the exchanges (the hub and the other
/// workers degrade to cold starts for that work) while the merged results
/// stay bit-identical — corruption costs wall-clock, never correctness.
fn serve_corrupting(id: u32, mut reader: impl std::io::Read, mut writer: impl std::io::Write) {
    let mut app = SweepShardApp::new();
    let mut known = impact_shard::KnownKeys::new();
    let mut stats = impact_shard::ExchangeStats::default();
    protocol::send(
        &mut writer,
        &Message::Hello {
            worker: id,
            protocol: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    while let Some(message) = protocol::receive(&mut reader).unwrap() {
        match message {
            Message::Sync { bytes } => {
                let _ =
                    impact_shard::gate_and_absorb(app.session(), &mut known, &bytes, &mut stats);
            }
            Message::Assign { slot, payload } => {
                let result = app.run(&payload);
                if let Some(mut bytes) =
                    impact_shard::export_delta(app.session(), &mut known, &mut stats)
                {
                    let middle = bytes.len() / 2;
                    bytes[middle] ^= 0xFF;
                    protocol::send(&mut writer, &Message::Sync { bytes }).unwrap();
                }
                protocol::send(
                    &mut writer,
                    &Message::Outcome {
                        slot,
                        payload: result,
                        wall_ms: 1.0,
                    },
                )
                .unwrap();
            }
            Message::Shutdown => {
                protocol::send(&mut writer, &Message::Bye).unwrap();
                break;
            }
            _ => panic!("coordinator sent a worker-only message"),
        }
    }
}

#[test]
fn corrupted_exchanges_degrade_to_cold_starts_not_wrong_results() {
    let expected = baseline();
    let hub = SweepSession::new();

    let (to_worker, worker_reads) = pipe();
    let (worker_writes, from_worker) = pipe();
    let handle = std::thread::spawn(move || serve_corrupting(0, worker_reads, worker_writes));
    let links = vec![WorkerLink {
        id: 0,
        reader: Box::new(from_worker),
        writer: Box::new(to_worker),
    }];
    let outcome = coordinate(&hub, links, jobs(), None).unwrap();
    handle.join().unwrap();

    assert!(
        outcome.exchange.rejected_decode > 0,
        "every delta the worker sent was garbled"
    );
    assert_eq!(outcome.exchange.accepted, 0);
    assert_eq!(hub.stats().points, 0, "the hub stayed cold — not poisoned");
    assert_eq!(decode_reports(&outcome), expected, "results are unaffected");
}

#[test]
fn real_worker_subprocesses_reproduce_the_baseline() {
    let exe = Path::new(env!("CARGO_BIN_EXE_shard_bench"));
    let mailbox = std::env::temp_dir().join(format!("shard_mailbox_{}", std::process::id()));
    std::fs::create_dir_all(&mailbox).unwrap();

    let (outcome, hub) = run_sharded(exe, 2, jobs(), Some(&mailbox)).unwrap();
    assert_eq!(decode_reports(&outcome), baseline());
    assert!(hub.stats().points > 0, "the hub absorbed the fleet's work");

    // The mailbox holds the exchanged snapshots for post-hoc audit, and
    // every one of them passes the verifier the coordinator used.
    let mut audited = 0;
    for entry in std::fs::read_dir(&mailbox).unwrap() {
        let path = entry.unwrap().path();
        assert_eq!(path.extension().unwrap(), "impactcache");
        let bytes = std::fs::read(&path).unwrap();
        let violations = impact_core::verify::audit_snapshot_bytes(&bytes);
        assert!(
            !impact_core::verify::has_errors(&violations),
            "{} fails the audit",
            path.display()
        );
        audited += 1;
    }
    assert!(audited > 0, "a 2-worker fleet persisted exchanges");
    std::fs::remove_dir_all(&mailbox).unwrap();
}
