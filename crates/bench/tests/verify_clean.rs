//! True-negative audits: `impact_verify` must stay silent on every artifact a
//! real synthesis run produces. Each example design is synthesized with the
//! engine's inline audits enabled ([`VerifyLevel::Full`] would have failed the
//! run), then the finished outcome, the shared session cache and the snapshot
//! round-trip are re-audited as data and must report zero violations.

#![allow(clippy::unwrap_used)]

use impact_bench::{example_designs, prepare, DEFAULT_SEED};
use impact_core::verify::{audit_session, audit_snapshot_bytes};
use impact_core::{EngineConfig, Evaluator, Impact, SweepSession, SynthesisConfig, VerifyLevel};

#[test]
fn real_synthesis_artifacts_audit_clean() {
    for bench in example_designs() {
        let (cdfg, trace) = prepare(&bench, 8, DEFAULT_SEED);
        let session = SweepSession::new();
        for config in [
            SynthesisConfig::area_optimized(1.5),
            SynthesisConfig::power_optimized(1.5),
        ] {
            let config = config
                .with_effort(2, 3)
                .with_engine(EngineConfig::incremental().with_verify(VerifyLevel::Full));
            let outcome = Impact::new(config.clone())
                .synthesize_with_session(&cdfg, &trace, &session)
                .unwrap_or_else(|error| panic!("{} failed to synthesize: {error}", bench.name));
            let evaluator = Evaluator::with_session(&cdfg, &trace, config, &session).unwrap();
            let violations = evaluator.audit_outcome(&outcome);
            assert!(
                violations.is_empty(),
                "{}: outcome audit found {violations:?}",
                bench.name
            );
        }
        let violations = audit_session(&session);
        assert!(
            violations.is_empty(),
            "{}: session audit found {violations:?}",
            bench.name
        );
        let violations = audit_snapshot_bytes(&session.save_snapshot());
        assert!(
            violations.is_empty(),
            "{}: snapshot audit found {violations:?}",
            bench.name
        );
    }
}
