//! Equivalence guarantees of the sweep-session cache layer: a Figure 13
//! sweep over one shared session (and over merged shard sessions) is
//! bit-identical to independent cold runs, under any worker count.

use impact_bench::{
    assemble_fig13, batches_identical, figure13_jobs, paper_laxities, prepare, run_batch,
};
use impact_core::SweepSession;
use proptest::prelude::*;

const EFFORT: (usize, usize) = (2, 3);

#[test]
fn shared_session_figure13_sweep_matches_eleven_independent_cold_runs() {
    // The paper's full 11-point laxity grid: every job of the shared-session
    // sweep must reproduce its independent cold run bit-for-bit.
    let bench = impact_benchmarks::gcd();
    let laxities = paper_laxities();
    let (cdfg, trace) = prepare(&bench, 8, 5);
    let jobs = figure13_jobs(&cdfg, &trace, &laxities, EFFORT);
    assert_eq!(jobs.len(), 23, "base + two runs per laxity point");

    let cold = run_batch(&jobs, None, 1);
    let session = SweepSession::new();
    let shared = run_batch(&jobs, Some(&session), 0);

    assert!(batches_identical(&cold, &shared));
    let cold_series = assemble_fig13(bench.name, &laxities, &cold);
    let shared_series = assemble_fig13(bench.name, &laxities, &shared);
    for (a, b) in cold_series.points.iter().zip(&shared_series.points) {
        assert_eq!(a.a_power.to_bits(), b.a_power.to_bits());
        assert_eq!(a.i_power.to_bits(), b.i_power.to_bits());
        assert_eq!(a.i_area.to_bits(), b.i_area.to_bits());
        assert_eq!(a.i_vdd.to_bits(), b.i_vdd.to_bits());
    }
    assert!(
        session.stats().hits > session.stats().misses,
        "a warm sweep is dominated by hits ({:?})",
        session.stats()
    );
}

#[test]
fn merged_shard_sessions_rank_like_one_shared_cache() {
    // Two half-sweeps populate independent shard sessions; their merge must
    // answer a full sweep exactly like one session that saw everything.
    let bench = impact_benchmarks::gcd();
    let laxities = [1.0, 1.4, 1.8, 2.2, 2.6, 3.0];
    let (cdfg, trace) = prepare(&bench, 8, 5);
    let jobs = figure13_jobs(&cdfg, &trace, &laxities, EFFORT);

    let one_shared = SweepSession::new();
    let reference = run_batch(&jobs, Some(&one_shared), 0);

    let merged = SweepSession::new();
    for half in [&laxities[..3], &laxities[3..]] {
        let shard = SweepSession::new();
        run_batch(&figure13_jobs(&cdfg, &trace, half, EFFORT), Some(&shard), 0);
        merged.merge_from(&shard);
    }
    let replayed = run_batch(&jobs, Some(&merged), 0);

    assert!(batches_identical(&reference, &replayed));
    // Both shards fully covered the replay's needs: the merged session
    // answers (almost) everything from its merged maps. The base job and the
    // laxity-independent entries overlap between shards, so the replay must
    // be hit-dominated.
    let stats = merged.stats();
    assert!(
        stats.hit_rate() > 0.9,
        "replay over merged shards must be hit-dominated ({stats:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any laxity subset, any seed, any worker count: cold, shared-session
    /// and merged-shard sweeps agree bit-for-bit.
    #[test]
    fn sweeps_agree_for_arbitrary_laxity_subsets(
        mask in 1u32..(1 << 6),
        seed in 0u64..1024,
        workers in 1usize..5,
    ) {
        let grid = [1.0, 1.4, 1.8, 2.2, 2.6, 3.0];
        let laxities: Vec<f64> = grid
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &l)| l)
            .collect();
        let bench = impact_benchmarks::gcd();
        let (cdfg, trace) = prepare(&bench, 6, seed);
        let jobs = figure13_jobs(&cdfg, &trace, &laxities, (1, 2));

        let cold = run_batch(&jobs, None, 1);
        let shared_session = SweepSession::new();
        let shared = run_batch(&jobs, Some(&shared_session), workers);
        prop_assert!(batches_identical(&cold, &shared));

        let merged = SweepSession::new();
        let split = laxities.len() / 2;
        for half in [&laxities[..split], &laxities[split..]] {
            let shard = SweepSession::new();
            run_batch(&figure13_jobs(&cdfg, &trace, half, (1, 2)), Some(&shard), workers);
            merged.merge_from(&shard);
        }
        let replayed = run_batch(&jobs, Some(&merged), workers);
        prop_assert!(batches_identical(&cold, &replayed));
    }
}
