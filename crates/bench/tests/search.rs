//! Static audits of the search-policy layer, under the `verify` feature the
//! bench crate turns on:
//!
//! - every member of a `ParetoSweep` front individually passes the
//!   `impact_verify` design/schedule rules (not just the returned best),
//! - `RestartExplorer`'s kick-and-revert machinery leaves a shared session
//!   coherent: the run passes [`VerifyLevel::Full`]'s inline session audit,
//!   and the session re-audits clean as data afterwards,
//! - a sharded batch may mix strategies per job: workers honor each spec's
//!   explorer and greedy jobs stay bit-identical to an in-process baseline.

#![allow(clippy::unwrap_used)]

use impact_bench::{prepare, run_batch, shard_jobs, SweepJob, SweepShardApp, DEFAULT_SEED};
use impact_codec::{decode_from_slice, encode_to_vec};
use impact_core::verify::audit_session;
use impact_core::{
    EngineConfig, Evaluator, ExplorerKind, Impact, SweepSession, SynthesisConfig, SynthesisReport,
    VerifyLevel,
};
use impact_shard::ShardApp;

fn config_with(laxity: f64, explorer: ExplorerKind) -> SynthesisConfig {
    let config = SynthesisConfig::power_optimized(laxity).with_effort(2, 3);
    let engine = EngineConfig::incremental()
        .with_verify(VerifyLevel::Full)
        .with_explorer(explorer);
    config.with_engine(engine)
}

#[test]
fn every_pareto_front_member_audits_clean() {
    for bench in [impact_benchmarks::gcd(), impact_benchmarks::dealer()] {
        let (cdfg, trace) = prepare(&bench, 8, DEFAULT_SEED);
        for laxity in [1.0, 2.0] {
            let config = config_with(laxity, ExplorerKind::Pareto);
            let outcome = Impact::new(config.clone())
                .synthesize(&cdfg, &trace)
                .unwrap();
            assert!(!outcome.front.is_empty(), "{}: empty front", bench.name);
            let evaluator = Evaluator::new(&cdfg, &trace, config).unwrap();
            for (index, member) in outcome.front.iter().enumerate() {
                let violations = evaluator.audit_design_point(member);
                assert!(
                    violations.is_empty(),
                    "{} laxity {laxity} front[{index}]: {violations:?}",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn restart_kicks_leave_a_shared_session_coherent() {
    let bench = impact_benchmarks::gcd();
    let (cdfg, trace) = prepare(&bench, 8, DEFAULT_SEED);
    let session = SweepSession::new();
    for laxity in [1.0, 2.0] {
        let explorer = ExplorerKind::Restart {
            restarts: 3,
            kicks: 2,
            seed: 11,
        };
        // VerifyLevel::Full audits every evaluation inline *and* the whole
        // session before the run returns — a kick whose revert left the
        // working design or the cache inconsistent fails here.
        let outcome = Impact::new(config_with(laxity, explorer))
            .synthesize_with_session(&cdfg, &trace, &session)
            .unwrap();
        assert!(outcome.cache_stats.explore.restarts > 0);
    }
    let violations = audit_session(&session);
    assert!(violations.is_empty(), "session audit found {violations:?}");
}

#[test]
fn shard_workers_honor_mixed_strategy_job_lists() {
    let bench = impact_benchmarks::gcd();
    let (cdfg, trace) = prepare(&bench, 8, DEFAULT_SEED);

    // Five jobs (base + two laxities x two modes), strategies assigned
    // round-robin so all four explorers appear in one batch.
    let mut jobs = shard_jobs(
        &[impact_benchmarks::gcd()],
        &[1.5, 2.0],
        8,
        DEFAULT_SEED,
        (2, 3),
        1,
    );
    let mixed = ExplorerKind::all();
    for (job, &explorer) in jobs.iter_mut().zip(mixed.iter().cycle()) {
        let mut spec: impact_bench::ShardSpec = decode_from_slice(&job.payload).unwrap();
        spec.explorer = explorer;
        job.payload = encode_to_vec(&spec);
    }
    let mut app = SweepShardApp::new();
    let reports: Vec<SynthesisReport> = jobs
        .iter()
        .map(|job| decode_from_slice(&app.run(&job.payload)).unwrap())
        .collect();

    // Each worker result matches the in-process run of the same spec.
    for (job, report) in jobs.iter().zip(&reports) {
        let spec: impact_bench::ShardSpec = decode_from_slice(&job.payload).unwrap();
        let baseline = run_batch(
            &[SweepJob::new(
                job.label.clone(),
                &cdfg,
                &trace,
                spec.config(),
            )],
            None,
            1,
        );
        assert_eq!(
            &baseline[0].outcome.report,
            report,
            "{}: sharded {} diverged from in-process",
            job.label,
            spec.explorer.name()
        );
    }
}
