//! Acceptance tests of the persistence path on every example design:
//! sweep → snapshot → reload into a fresh session → rerun must reproduce
//! bit-identical reports with a 100 % point-layer hit rate, both in memory
//! and through the filesystem (where a second run must also verify
//! cross-process byte identity via the `resumed` flag).

use impact_bench::{example_designs, warm_start_comparison};

#[test]
fn warm_start_replays_every_example_design_bit_identically() {
    let laxities = [1.2, 2.4];
    for bench in example_designs() {
        let cmp = warm_start_comparison(&bench, &laxities, 6, (1, 2), 1, None);
        assert!(
            cmp.identical,
            "{}: the warm rerun must reproduce the cold reports bit-for-bit",
            cmp.benchmark
        );
        assert!(
            cmp.fully_warm(),
            "{}: expected a 100% point-layer hit rate, got {:.3} ({} misses)",
            cmp.benchmark,
            cmp.point_hit_rate(),
            cmp.warm_cache.point.misses
        );
        assert!(cmp.absorbed > 0, "{}: nothing absorbed", cmp.benchmark);
        assert!(cmp.snapshot_bytes > 0);
        assert_eq!(cmp.warm_cache.snapshot.loads, 1);
        assert_eq!(cmp.warm_cache.snapshot.rejected(), 0);
        assert!(!cmp.resumed, "no snapshot file was involved");
    }
}

#[test]
fn warm_start_through_the_filesystem_resumes_on_the_second_run() {
    let dir = std::env::temp_dir().join(format!("impact_warm_start_{}", std::process::id()));
    let path = dir.join("gcd.impactcache");
    let _ = std::fs::remove_file(&path);
    let bench = impact_benchmarks::gcd();
    let laxities = [1.2, 2.4];

    let first = warm_start_comparison(&bench, &laxities, 6, (1, 2), 1, Some(&path));
    assert!(first.identical && first.fully_warm());
    assert!(
        !first.resumed,
        "no snapshot file existed before the first run"
    );
    assert!(path.is_file(), "the run left a snapshot behind");

    // A second, independent run against the same directory must produce a
    // byte-identical snapshot (cross-process determinism) and report it.
    let second = warm_start_comparison(&bench, &laxities, 6, (1, 2), 1, Some(&path));
    assert!(second.identical && second.fully_warm());
    assert!(
        second.resumed,
        "the second run must find a byte-identical snapshot from the first"
    );
    assert_eq!(first.snapshot_bytes, second.snapshot_bytes);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
