//! Bit-level switching statistics over value sequences.

/// Hamming distance between two values restricted to `width` bits.
///
/// ```
/// use impact_trace::hamming_distance;
/// assert_eq!(hamming_distance(0b1010, 0b0110, 4), 2);
/// assert_eq!(hamming_distance(-1, 0, 8), 8);
/// ```
pub fn hamming_distance(a: i64, b: i64, width: u8) -> u32 {
    let mask: u64 = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (((a ^ b) as u64) & mask).count_ones()
}

/// Total number of bit toggles along a value sequence, restricted to `width`
/// bits.
pub fn toggle_count(values: &[i64], width: u8) -> u64 {
    values
        .windows(2)
        .map(|w| u64::from(hamming_distance(w[0], w[1], width)))
        .sum()
}

/// Mean per-transition switching activity of a value sequence, normalized to
/// the bit width: 0.0 for a constant signal, 1.0 when every bit toggles on
/// every transition.
///
/// ```
/// use impact_trace::sequence_activity;
/// assert_eq!(sequence_activity(&[5, 5, 5], 8), 0.0);
/// assert_eq!(sequence_activity(&[0, 255, 0], 8), 1.0);
/// ```
pub fn sequence_activity(values: &[i64], width: u8) -> f64 {
    if values.len() < 2 || width == 0 {
        return 0.0;
    }
    let toggles = toggle_count(values, width) as f64;
    toggles / ((values.len() - 1) as f64 * f64::from(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_masks_to_width() {
        assert_eq!(hamming_distance(0xFF, 0x00, 4), 4);
        assert_eq!(hamming_distance(0xFF, 0x00, 8), 8);
        assert_eq!(hamming_distance(7, 7, 8), 0);
    }

    #[test]
    fn hamming_full_width_handles_negative_values() {
        assert_eq!(hamming_distance(-1, 0, 64), 64);
    }

    #[test]
    fn toggle_count_accumulates_over_the_sequence() {
        assert_eq!(toggle_count(&[0, 1, 3, 2], 8), 1 + 1 + 1);
        assert_eq!(toggle_count(&[], 8), 0);
        assert_eq!(toggle_count(&[42], 8), 0);
    }

    #[test]
    fn activity_is_normalized_per_bit_and_transition() {
        // One of four bits toggles on each of two transitions.
        assert!((sequence_activity(&[0b0000, 0b0001, 0b0011], 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sequences_have_zero_activity() {
        assert_eq!(sequence_activity(&[], 8), 0.0);
        assert_eq!(sequence_activity(&[1], 8), 0.0);
        assert_eq!(sequence_activity(&[1, 2], 0), 0.0);
    }

    #[test]
    fn alternating_extremes_give_unit_activity() {
        assert!((sequence_activity(&[0, 15, 0, 15], 4) - 1.0).abs() < 1e-12);
    }
}
