//! Trace manipulation: deriving RT-level unit traces and switching statistics
//! from one behavioral simulation.
//!
//! Section 2.3 of the paper: "an RT level simulation technique based on trace
//! manipulation … records signal traces of the inputs and outputs of each
//! functional unit, register, and multiplexer, and transforms signals
//! appropriately when a synthesis task (resource sharing, module selection)
//! is executed, without the need for re-simulation."
//!
//! The behavioral simulation of `impact-behsim` records one trace row per
//! executed operation in dynamic order. For any RT-level design (allocation +
//! binding) over the same CDFG, this crate derives
//!
//! * the trace of every **functional unit** by merging the traces of the
//!   operations bound to it, in dynamic execution order (exactly the
//!   `TR(A1|e8)` merge of the paper's three-addition example),
//! * the value sequence and switching activity of every **register**,
//! * the per-source activity (`a_i`) and probability of propagation (`p_i`)
//!   of every **multiplexer site**, ready for the mux-tree activity equations
//!   in `impact-rtl`.
//!
//! Because moves only change binding and module selection — never the set of
//! behaviors — one behavioral simulation suffices;
//! [`RtTraces::needs_resimulation`] reports whether any operation was never
//! exercised by the recorded inputs (the paper's criterion for re-simulating).

mod activity;
mod rt;
mod workload;

pub use activity::{hamming_distance, sequence_activity, toggle_count};
pub use rt::{FuStats, RegStats, RtTraces};
pub use workload::workload_digest;
