//! Content digest of an evaluation workload (CDFG + execution trace).
//!
//! Sweep sessions share one evaluation cache across many synthesis runs — and
//! potentially across *different* benchmarks batched over one worker pool.
//! The per-resource cache keys of the evaluation engine identify resources by
//! CDFG node and variable ids, which are only unique within one graph, so
//! every cache key is additionally scoped by a [`workload_digest`]: a
//! deterministic 128-bit content digest of the CDFG structure and the
//! recorded execution trace. Two jobs share cache entries exactly when they
//! evaluate the same behavior on the same inputs.
//!
//! The digest is stable across processes (no random hasher state), which is
//! what makes independently populated shard caches mergeable: the same
//! `(workload, resource)` pair hashes to the same key everywhere.

use impact_behsim::ExecutionTrace;
use impact_cdfg::Cdfg;
use impact_rtl::FingerprintHasher;

/// Deterministic 128-bit content digest of one `(CDFG, trace)` workload.
///
/// Covers the graph's full structure (per-node operation, control port,
/// defined variable; per-edge wiring, port, width and loop-carry flag;
/// per-variable kind and width), the dynamic event stream of the trace
/// (node, operands, result, pass, sequence) and the per-variable write
/// sequences. Everything that feeds scheduling dependencies, trace
/// statistics, base delays or power profiles is a pure function of these
/// inputs plus the design under evaluation, so equal digests imply
/// interchangeable cache entries — two graphs that differ only in wiring (and
/// happen to record coinciding traces) still digest differently.
pub fn workload_digest(cdfg: &Cdfg, trace: &ExecutionTrace) -> u128 {
    let mut hasher = FingerprintHasher::new();

    hasher.write_tag(0xC0);
    hasher.write_u64(cdfg.node_count() as u64);
    hasher.write_u64(cdfg.variable_count() as u64);
    for (id, node) in cdfg.nodes() {
        hasher.write_u64(id.index() as u64);
        hasher.write_u64(node.operation as u64);
        hasher.write_u64(node.inputs.len() as u64);
        hasher.write_u64(node.control.polarity as u64);
        hasher.write_i64(
            node.control
                .condition
                .map_or(-1, |edge| edge.index() as i64),
        );
        hasher.write_i64(node.defines.map_or(-1, |var| var.index() as i64));
    }
    hasher.write_tag(0xC1);
    hasher.write_u64(cdfg.edge_count() as u64);
    for (id, edge) in cdfg.edges() {
        hasher.write_u64(id.index() as u64);
        hasher.write_i64(match edge.source {
            impact_cdfg::EdgeSource::Node(node) => node.index() as i64,
            impact_cdfg::EdgeSource::External => -1,
        });
        hasher.write_u64(edge.target.index() as u64);
        hasher.write_u64(match edge.port {
            impact_cdfg::Port::Data(index) => u64::from(index),
            impact_cdfg::Port::Control => u64::MAX,
        });
        hasher.write_i64(edge.initial.unwrap_or(i64::MIN));
        hasher.write_u64(u64::from(edge.width));
        hasher.write_u64(u64::from(edge.loop_carried));
    }
    hasher.write_tag(0xC2);
    for (id, variable) in cdfg.variables() {
        hasher.write_u64(id.index() as u64);
        hasher.write_u64(variable.kind as u64);
        hasher.write_u64(u64::from(variable.width));
        hasher.write_i64(variable.initial.unwrap_or(i64::MIN));
    }

    // The trace side is one memoized digest over the event stream and the
    // per-variable write sequences: a sweep session scoping many runs by
    // workload hashes the (large, immutable) trace once instead of per run.
    hasher.write_tag(0xE0);
    hasher.write_u128(trace.content_digest());

    hasher.finish().as_u128()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;

    fn compile(source: &str) -> Cdfg {
        impact_hdl::compile(source).unwrap()
    }

    const ADD: &str = "design d { input a: 8, b: 8; output y: 8; y = a + b; }";
    const SUB: &str = "design d { input a: 8, b: 8; output y: 8; y = a - b; }";

    #[test]
    fn identical_workloads_share_a_digest() {
        let cdfg = compile(ADD);
        let inputs = vec![vec![1, 2], vec![30, 4]];
        let a = simulate(&cdfg, &inputs).unwrap();
        let b = simulate(&cdfg, &inputs).unwrap();
        assert_eq!(workload_digest(&cdfg, &a), workload_digest(&cdfg, &b));
    }

    #[test]
    fn different_inputs_or_programs_change_the_digest() {
        let add = compile(ADD);
        let sub = compile(SUB);
        let short = simulate(&add, &[vec![1, 2]]).unwrap();
        let long = simulate(&add, &[vec![1, 2], vec![3, 4]]).unwrap();
        let other = simulate(&sub, &[vec![1, 2]]).unwrap();
        assert_ne!(workload_digest(&add, &short), workload_digest(&add, &long));
        assert_ne!(workload_digest(&add, &short), workload_digest(&sub, &other));
    }
}
