//! RT-level unit traces derived by trace manipulation.

use impact_behsim::{ExecutionTrace, OpEvent};
use impact_cdfg::{Cdfg, NodeId, VariableKind};
use impact_rtl::{FuId, MuxSite, MuxSource, RegId, RtlDesign, SignalKey};

use crate::activity::sequence_activity;

/// View over one behavioral [`ExecutionTrace`] through the lens of one
/// RT-level design: per-unit merged traces, register value sequences and
/// multiplexer statistics.
#[derive(Clone, Copy, Debug)]
pub struct RtTraces<'a> {
    cdfg: &'a Cdfg,
    design: &'a RtlDesign,
    trace: &'a ExecutionTrace,
}

/// Activity statistics of one functional unit, derived from a single merge of
/// its trace (cheaper than querying each metric separately, which re-merges
/// the event streams every time).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FuStats {
    /// Mean input switching activity along the merged trace.
    pub input_activity: f64,
    /// Mean output switching activity along the merged trace.
    pub output_activity: f64,
    /// Average activations per input pass.
    pub activations_per_pass: f64,
}

/// Activity statistics of one register, derived from a single reconstruction
/// of its value sequence.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegStats {
    /// Mean per-write switching activity.
    pub activity: f64,
    /// Average writes per input pass.
    pub writes_per_pass: f64,
}

impl<'a> RtTraces<'a> {
    /// Creates the view. The trace must have been recorded on the same CDFG
    /// the design binds.
    pub fn new(cdfg: &'a Cdfg, design: &'a RtlDesign, trace: &'a ExecutionTrace) -> Self {
        Self {
            cdfg,
            design,
            trace,
        }
    }

    /// The underlying behavioral trace.
    pub fn execution(&self) -> &ExecutionTrace {
        self.trace
    }

    // ------------------------------------------------------------ functional units

    /// The merged trace of a functional unit: the events of every operation
    /// bound to it, in dynamic execution order (the paper's `TR(Du)`).
    pub fn merged_fu_events(&self, fu: FuId) -> Vec<&OpEvent> {
        let ops = self.design.ops_on(fu);
        let mut events: Vec<&OpEvent> = ops
            .iter()
            .flat_map(|&op| self.trace.events_for(op))
            .collect();
        events.sort_by_key(|e| e.sequence);
        events
    }

    /// Average number of activations of the unit per input pass.
    pub fn fu_activations_per_pass(&self, fu: FuId) -> f64 {
        self.merged_fu_events(fu).len() as f64 / f64::from(self.trace.passes().max(1))
    }

    /// Mean input switching activity of the unit: the per-bit toggle rate of
    /// each input port along the merged trace, averaged over ports.
    pub fn fu_input_activity(&self, fu: FuId) -> f64 {
        self.input_activity_of(fu, &self.merged_fu_events(fu))
    }

    /// Mean output switching activity of the unit along its merged trace.
    pub fn fu_output_activity(&self, fu: FuId) -> f64 {
        self.output_activity_of(fu, &self.merged_fu_events(fu))
    }

    /// Every per-unit statistic from one merge of the unit's event streams.
    pub fn fu_stats(&self, fu: FuId) -> FuStats {
        let events = self.merged_fu_events(fu);
        FuStats {
            input_activity: self.input_activity_of(fu, &events),
            output_activity: self.output_activity_of(fu, &events),
            activations_per_pass: events.len() as f64 / f64::from(self.trace.passes().max(1)),
        }
    }

    fn fu_width(&self, fu: FuId) -> u8 {
        self.design
            .functional_unit(fu)
            .map(|f| f.width)
            .unwrap_or(8)
    }

    fn input_activity_of(&self, fu: FuId, events: &[&OpEvent]) -> f64 {
        if events.len() < 2 {
            return 0.0;
        }
        let width = self.fu_width(fu);
        let ports = events.iter().map(|e| e.inputs.len()).max().unwrap_or(0);
        if ports == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for port in 0..ports {
            let values: Vec<i64> = events
                .iter()
                .map(|e| e.inputs.get(port).copied().unwrap_or(0))
                .collect();
            total += sequence_activity(&values, width);
        }
        total / ports as f64
    }

    fn output_activity_of(&self, fu: FuId, events: &[&OpEvent]) -> f64 {
        let values: Vec<i64> = events.iter().map(|e| e.output).collect();
        sequence_activity(&values, self.fu_width(fu))
    }

    // ------------------------------------------------------------ registers

    /// Value sequence seen by a register: every write performed by operations
    /// defining one of its variables, in dynamic order. Primary-input
    /// variables contribute their per-pass values.
    pub fn register_values(&self, reg: RegId) -> Vec<i64> {
        let Ok(register) = self.design.register(reg) else {
            return Vec::new();
        };
        // Writes carry unique global sequence numbers, so gathering them per
        // variable (through the graph's definer index) instead of scanning
        // every node leaves the sorted sequence unchanged.
        let mut writes: Vec<(u32, i64)> = Vec::new();
        for &var in &register.variables {
            for &node_id in self.cdfg.definers_of(var) {
                for event in self.trace.events_for(node_id) {
                    writes.push((event.sequence, event.output));
                }
            }
        }
        // Primary inputs are loaded at the start of each pass, before any
        // recorded event of that pass.
        let first_seqs = self.trace.first_sequences();
        for &var in &register.variables {
            if self.cdfg.variable(var).kind == VariableKind::Input {
                let values = self.trace.variable_writes(var);
                // Interleave them at the beginning of each pass by giving
                // them the sequence number of the pass's first event.
                for (pass, &value) in values.iter().enumerate() {
                    let first_seq = first_seqs.get(pass).copied().unwrap_or(0);
                    writes.push((first_seq.saturating_sub(1), value));
                }
            }
        }
        writes.sort_by_key(|&(seq, _)| seq);
        writes.into_iter().map(|(_, v)| v).collect()
    }

    /// Mean per-write switching activity of a register.
    pub fn register_activity(&self, reg: RegId) -> f64 {
        let width = self.design.register(reg).map(|r| r.width).unwrap_or(8);
        sequence_activity(&self.register_values(reg), width)
    }

    /// Average number of writes into the register per input pass.
    pub fn register_writes_per_pass(&self, reg: RegId) -> f64 {
        self.register_values(reg).len() as f64 / f64::from(self.trace.passes().max(1))
    }

    /// Every per-register statistic from one reconstruction of the register's
    /// value sequence.
    pub fn register_stats(&self, reg: RegId) -> RegStats {
        let width = self.design.register(reg).map(|r| r.width).unwrap_or(8);
        let values = self.register_values(reg);
        RegStats {
            activity: sequence_activity(&values, width),
            writes_per_pass: values.len() as f64 / f64::from(self.trace.passes().max(1)),
        }
    }

    // ------------------------------------------------------------ multiplexers

    /// Activity of a physical signal (register output, functional-unit output
    /// or constant).
    pub fn signal_activity(&self, key: SignalKey) -> f64 {
        match key {
            SignalKey::Register(reg) => self.register_activity(reg),
            SignalKey::FuOutput(fu) => self.fu_output_activity(fu),
            SignalKey::Constant(_) => 0.0,
        }
    }

    /// Per-source statistics of a multiplexer site: the transition activity
    /// `a_i` of each source signal and its probability of propagation `p_i`
    /// (the fraction of the site's traffic routed through it), ready for
    /// [`impact_rtl::MuxTree`] construction.
    pub fn mux_source_stats(&self, site: &MuxSite) -> Vec<MuxSource> {
        let counts: Vec<f64> = site
            .sources
            .iter()
            .map(|src| {
                src.ops
                    .iter()
                    .map(|&op| self.trace.execution_count(op) as f64)
                    .sum::<f64>()
            })
            .collect();
        let total: f64 = counts.iter().sum();
        site.sources
            .iter()
            .zip(counts)
            .map(|(src, count)| {
                let probability = if total > 0.0 {
                    count / total
                } else {
                    1.0 / site.sources.len() as f64
                };
                MuxSource::new(
                    &signal_label(src.key),
                    self.signal_activity(src.key),
                    probability,
                )
            })
            .collect()
    }

    /// Average number of times the site selects a value per input pass.
    pub fn mux_selections_per_pass(&self, site: &MuxSite) -> f64 {
        let total: usize = site
            .sources
            .iter()
            .flat_map(|s| s.ops.iter())
            .map(|&op| self.trace.execution_count(op))
            .sum();
        total as f64 / f64::from(self.trace.passes().max(1))
    }

    // ------------------------------------------------------------ re-simulation

    /// Operations that the recorded inputs never exercised.
    pub fn unexercised_nodes(&self) -> Vec<NodeId> {
        self.cdfg
            .nodes()
            .filter(|(id, node)| {
                node.operation.needs_functional_unit() && self.trace.execution_count(*id) == 0
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns `true` when some operation was never exercised, in which case
    /// statistics derived for it are extrapolations and a re-simulation with
    /// richer inputs is advisable (the paper's "re-simulation is done on an
    /// as-needed basis").
    pub fn needs_resimulation(&self) -> bool {
        !self.unexercised_nodes().is_empty()
    }
}

fn signal_label(key: SignalKey) -> String {
    match key {
        SignalKey::Register(r) => r.to_string(),
        SignalKey::FuOutput(f) => f.to_string(),
        SignalKey::Constant(c) => c.to_string(),
    }
}

// ---------------------------------------------------------------- snapshot codec

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Version tag of [`FuStats`]'s wire layout.
const TAG_FU_STATS: u8 = 0x30;
/// Version tag of [`RegStats`]'s wire layout.
const TAG_REG_STATS: u8 = 0x31;

impl Encode for FuStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_FU_STATS);
        w.put_f64(self.input_activity);
        w.put_f64(self.output_activity);
        w.put_f64(self.activations_per_pass);
    }
}

impl Decode for FuStats {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_FU_STATS)?;
        Ok(Self {
            input_activity: r.take_f64()?,
            output_activity: r.take_f64()?,
            activations_per_pass: r.take_f64()?,
        })
    }
}

impl Encode for RegStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_REG_STATS);
        w.put_f64(self.activity);
        w.put_f64(self.writes_per_pass);
    }
}

impl Decode for RegStats {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_REG_STATS)?;
        Ok(Self {
            activity: r.take_f64()?,
            writes_per_pass: r.take_f64()?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_behsim::simulate;
    use impact_cdfg::{OpClass, Operation};
    use impact_hdl::compile;
    use impact_modlib::ModuleLibrary;

    /// The three-addition CDFG of Figure 3 of the paper:
    /// `t = b + c; if (a < 8) { out = t + d; } else { out = a + t; }`
    /// (variable names chosen so the three additions mirror +1, +3, +2).
    fn three_addition() -> (Cdfg, ExecutionTrace) {
        let cdfg = compile(
            "design fig3 { input a: 8, b: 8, c: 8, d: 8; output o: 8; var t: 8;
               t = b + c;
               if (a < 8) { o = t + d; } else { o = a + t; }
             }",
        )
        .unwrap();
        // Four passes with condition outcomes [T, T, F, T] as in the paper.
        let inputs = vec![
            vec![1, 10, 20, 3],
            vec![2, 11, 21, 4],
            vec![100, 12, 22, 5],
            vec![3, 13, 23, 6],
        ];
        let trace = simulate(&cdfg, &inputs).unwrap();
        (cdfg, trace)
    }

    #[test]
    fn merged_trace_reproduces_the_paper_sharing_example() {
        let (cdfg, trace) = three_addition();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        // Share all three additions on one adder (the paper's single-adder
        // implementation of Figure 5).
        let adders = design.units_of_class(OpClass::AddSub);
        assert_eq!(adders.len(), 3);
        design.share_fus(adders[0], adders[1]).unwrap();
        design.share_fus(adders[0], adders[2]).unwrap();

        let rt = RtTraces::new(&cdfg, &design, &trace);
        let merged = rt.merged_fu_events(adders[0]);
        // Two additions execute per pass (the unconditional one plus the
        // taken branch's addition): 8 events over 4 passes.
        assert_eq!(merged.len(), 8);
        // Dynamic order is monotonically increasing in sequence numbers.
        assert!(merged.windows(2).all(|w| w[0].sequence < w[1].sequence));
        // Condition outcomes [T, T, F, T] select +then, +then, +else, +then
        // as the second addition of each pass.
        let then_add = cdfg
            .nodes()
            .find(|(_, n)| {
                n.operation == Operation::Add
                    && n.defines == cdfg.variable_by_name("o")
                    && n.control.polarity == impact_cdfg::Polarity::ActiveHigh
            })
            .map(|(id, _)| id)
            .unwrap();
        let else_add = cdfg
            .nodes()
            .find(|(_, n)| {
                n.operation == Operation::Add
                    && n.defines == cdfg.variable_by_name("o")
                    && n.control.polarity == impact_cdfg::Polarity::ActiveLow
            })
            .map(|(id, _)| id)
            .unwrap();
        let second_adds: Vec<NodeId> = merged.iter().skip(1).step_by(2).map(|e| e.node).collect();
        assert_eq!(second_adds, vec![then_add, then_add, else_add, then_add]);
    }

    #[test]
    fn sharing_preserves_total_event_count() {
        let (cdfg, trace) = three_addition();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        let parallel_total: usize = adders
            .iter()
            .map(|&f| {
                RtTraces::new(&cdfg, &design, &trace)
                    .merged_fu_events(f)
                    .len()
            })
            .sum();
        design.share_fus(adders[0], adders[1]).unwrap();
        design.share_fus(adders[0], adders[2]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        assert_eq!(rt.merged_fu_events(adders[0]).len(), parallel_total);
    }

    #[test]
    fn sharing_unrelated_operations_raises_input_activity() {
        // Two adders fed with very different operand streams: merging them
        // onto one unit makes consecutive input vectors jump around, which is
        // exactly the power cost of over-sharing the paper describes.
        let cdfg = compile(
            "design d { input a: 8, b: 8; output y: 8, z: 8;
               y = a + 1; z = b + 200; }",
        )
        .unwrap();
        let inputs: Vec<Vec<i64>> = (0..16).map(|i| vec![i % 4, 190 + (i % 3)]).collect();
        let trace = simulate(&cdfg, &inputs).unwrap();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        let rt_parallel_activity = {
            let rt = RtTraces::new(&cdfg, &design, &trace);
            (rt.fu_input_activity(adders[0]) + rt.fu_input_activity(adders[1])) / 2.0
        };
        design.share_fus(adders[0], adders[1]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let shared_activity = rt.fu_input_activity(adders[0]);
        assert!(
            shared_activity > rt_parallel_activity,
            "sharing increases per-activation switching ({rt_parallel_activity:.3} -> {shared_activity:.3})"
        );
    }

    #[test]
    fn register_values_follow_program_order() {
        let cdfg = compile(
            "design d { output s: 8; var acc: 8 = 0; var i: 8;
               for (i = 0; i < 4; i = i + 1) { acc = acc + 1; }
               s = acc; }",
        )
        .unwrap();
        let trace = simulate(&cdfg, &[vec![]]).unwrap();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let acc = cdfg.variable_by_name("acc").unwrap();
        let values = rt.register_values(design.register_of(acc));
        assert_eq!(values, vec![1, 2, 3, 4]);
        assert!(rt.register_activity(design.register_of(acc)) > 0.0);
        assert!((rt.register_writes_per_pass(design.register_of(acc)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mux_source_probabilities_follow_branch_statistics() {
        let (cdfg, trace) = three_addition();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        design.share_fus(adders[0], adders[2]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        let sites = design.mux_sites(&cdfg);
        let site = sites
            .iter()
            .find(|s| matches!(s.sink, impact_rtl::MuxSink::FuInput { fu, port: 0 } if fu == adders[0]))
            .expect("shared adder has a mux on its first input");
        let stats = rt.mux_source_stats(site);
        assert_eq!(stats.len(), site.fan_in());
        let total_p: f64 = stats.iter().map(|s| s.probability).sum();
        assert!((total_p - 1.0).abs() < 1e-9, "probabilities sum to one");
        assert!(rt.mux_selections_per_pass(site) > 0.0);
    }

    #[test]
    fn unexercised_operations_trigger_resimulation_advice() {
        let cdfg = compile(
            "design d { input x: 8; output y: 8;
               if (x > 50) { y = x * 3; } else { y = x + 1; } }",
        )
        .unwrap();
        // Only the else path is ever exercised.
        let trace = simulate(&cdfg, &[vec![1], vec![2]]).unwrap();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        assert!(rt.needs_resimulation());
        assert_eq!(rt.unexercised_nodes().len(), 1);
        // Exercising both paths clears the flag.
        let trace2 = simulate(&cdfg, &[vec![1], vec![99]]).unwrap();
        let rt2 = RtTraces::new(&cdfg, &design, &trace2);
        assert!(!rt2.needs_resimulation());
    }

    #[test]
    fn combined_stats_match_the_individual_metrics_exactly() {
        let (cdfg, trace) = three_addition();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adders = design.units_of_class(OpClass::AddSub);
        design.share_fus(adders[0], adders[1]).unwrap();
        let rt = RtTraces::new(&cdfg, &design, &trace);
        for (fu, _) in design.functional_units() {
            let stats = rt.fu_stats(fu);
            assert_eq!(stats.input_activity, rt.fu_input_activity(fu));
            assert_eq!(stats.output_activity, rt.fu_output_activity(fu));
            assert_eq!(stats.activations_per_pass, rt.fu_activations_per_pass(fu));
        }
        for (reg, _) in design.registers() {
            let stats = rt.register_stats(reg);
            assert_eq!(stats.activity, rt.register_activity(reg));
            assert_eq!(stats.writes_per_pass, rt.register_writes_per_pass(reg));
        }
    }

    #[test]
    fn constants_have_zero_activity() {
        let (cdfg, trace) = three_addition();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let rt = RtTraces::new(&cdfg, &design, &trace);
        assert_eq!(rt.signal_activity(SignalKey::Constant(42)), 0.0);
    }
}
