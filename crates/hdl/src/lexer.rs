//! Tokenizer for the behavioral language.

use std::fmt;

use crate::error::HdlError;

/// Kind of a lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier (design names, variables).
    Ident(String),
    /// Unsigned integer literal.
    Int(i64),
    /// `design` keyword.
    Design,
    /// `input` keyword.
    Input,
    /// `output` keyword.
    Output,
    /// `var` keyword.
    Var,
    /// `if` keyword.
    If,
    /// `else` keyword.
    Else,
    /// `while` keyword.
    While,
    /// `for` keyword.
    For,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let text = match other {
                    TokenKind::Design => "design",
                    TokenKind::Input => "input",
                    TokenKind::Output => "output",
                    TokenKind::Var => "var",
                    TokenKind::If => "if",
                    TokenKind::Else => "else",
                    TokenKind::While => "while",
                    TokenKind::For => "for",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::Semicolon => ";",
                    TokenKind::Colon => ":",
                    TokenKind::Comma => ",",
                    TokenKind::Assign => "=",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::AndAnd => "&&",
                    TokenKind::OrOr => "||",
                    TokenKind::Amp => "&",
                    TokenKind::Pipe => "|",
                    TokenKind::Caret => "^",
                    TokenKind::Bang => "!",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    _ => unreachable!(),
                };
                write!(f, "`{text}`")
            }
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

/// Streaming tokenizer over behavioral source text.
#[derive(Debug)]
pub struct Lexer<'src> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    _source: std::marker::PhantomData<&'src str>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'src str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            _source: std::marker::PhantomData,
        }
    }

    /// Tokenizes the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::Lex`] on the first unexpected character.
    pub fn tokenize(mut self) -> Result<Vec<Token>, HdlError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let done = token.kind == TokenKind::Eof;
            tokens.push(token);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, HdlError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.column;
        let make = |kind| Token { kind, line, column };

        let Some(c) = self.peek() else {
            return Ok(make(TokenKind::Eof));
        };

        if c.is_ascii_digit() {
            let mut value: i64 = 0;
            while let Some(d) = self.peek() {
                if !d.is_ascii_digit() {
                    break;
                }
                value = value * 10 + i64::from(d as u8 - b'0');
                self.bump();
            }
            return Ok(make(TokenKind::Int(value)));
        }

        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(d) = self.peek() {
                if !(d.is_ascii_alphanumeric() || d == '_') {
                    break;
                }
                ident.push(d);
                self.bump();
            }
            let kind = match ident.as_str() {
                "design" => TokenKind::Design,
                "input" => TokenKind::Input,
                "output" => TokenKind::Output,
                "var" => TokenKind::Var,
                "if" => TokenKind::If,
                "else" => TokenKind::Else,
                "while" => TokenKind::While,
                "for" => TokenKind::For,
                _ => TokenKind::Ident(ident),
            };
            return Ok(make(kind));
        }

        self.bump();
        let two = |lexer: &mut Self, next: char, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            ';' => TokenKind::Semicolon,
            ':' => TokenKind::Colon,
            ',' => TokenKind::Comma,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Bang),
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, '=', TokenKind::Le, TokenKind::Lt)
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, '=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            '&' => two(self, '&', TokenKind::AndAnd, TokenKind::Amp),
            '|' => two(self, '|', TokenKind::OrOr, TokenKind::Pipe),
            other => {
                return Err(HdlError::Lex {
                    line,
                    column,
                    found: other,
                })
            }
        };
        Ok(make(kind))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("design foo var iff"),
            vec![
                TokenKind::Design,
                TokenKind::Ident("foo".to_string()),
                TokenKind::Var,
                TokenKind::Ident("iff".to_string()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integers_and_operators() {
        assert_eq!(
            kinds("x = 42 + 7;"),
            vec![
                TokenKind::Ident("x".to_string()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Plus,
                TokenKind::Int(7),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_character_operators() {
        assert_eq!(
            kinds("== != <= >= && || << >> < >"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // whole line ignored\n b"),
            vec![
                TokenKind::Ident("a".to_string()),
                TokenKind::Ident("b".to_string()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let tokens = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].column), (2, 3));
    }

    #[test]
    fn unexpected_character_is_reported_with_position() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        match err {
            HdlError::Lex {
                line,
                column,
                found,
            } => {
                assert_eq!((line, column, found), (1, 3, '@'));
            }
            other => panic!("expected lex error, found {other:?}"),
        }
    }

    #[test]
    fn token_kind_display_is_human_readable() {
        assert_eq!(TokenKind::Assign.to_string(), "`=`");
        assert_eq!(
            TokenKind::Ident("x".to_string()).to_string(),
            "identifier `x`"
        );
        assert_eq!(TokenKind::Int(3).to_string(), "integer `3`");
    }
}
