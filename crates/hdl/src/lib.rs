//! Behavioral HDL frontend for the IMPACT high-level synthesis system.
//!
//! The paper starts from "an input specification described in a hardware
//! description language that has been compiled into a CDFG". This crate is
//! that compiler: a small C-like behavioral language with designs, typed
//! ports, local variables, `if`/`else`, `while` and `for` statements is
//! lexed, parsed and lowered onto the [`impact_cdfg`] builder.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     design gcd {
//!         input a: 8, b: 8;
//!         output result: 8;
//!         var x: 8 = 0;
//!         var y: 8 = 0;
//!         x = a;
//!         y = b;
//!         while (x != y) {
//!             if (x > y) { x = x - y; } else { y = y - x; }
//!         }
//!         result = x;
//!     }
//! "#;
//! let cdfg = impact_hdl::compile(source)?;
//! assert_eq!(cdfg.name(), "gcd");
//! assert!(cdfg.validate().is_ok());
//! # Ok::<(), impact_hdl::HdlError>(())
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinaryOp, Design, Expr, PortDecl, Stmt, UnaryOp, VarDecl};
pub use error::HdlError;
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower;
pub use parser::parse;

use impact_cdfg::Cdfg;

/// Compiles behavioral source text into a CDFG.
///
/// This is the `parse` + `lower` convenience entry point.
///
/// # Errors
///
/// Returns an [`HdlError`] describing the first lexical, syntactic, semantic
/// or lowering problem encountered.
pub fn compile(source: &str) -> Result<Cdfg, HdlError> {
    let design = parse(source)?;
    lower(&design)
}
