//! Abstract syntax tree for the behavioral language.

use std::fmt;

/// A complete behavioral design: ports, local variables and a statement body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Primary inputs.
    pub inputs: Vec<PortDecl>,
    /// Primary outputs.
    pub outputs: Vec<PortDecl>,
    /// Local variable declarations.
    pub variables: Vec<VarDecl>,
    /// Statement body, in program order.
    pub body: Vec<Stmt>,
}

/// A primary input or output declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Bit width.
    pub width: u8,
}

/// A local variable declaration with an optional initializer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Bit width.
    pub width: u8,
    /// Constant initial value.
    pub initial: Option<i64>,
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Assignment target.
        target: String,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Branch condition.
        condition: Expr,
        /// Statements executed when the condition is true.
        then_body: Vec<Stmt>,
        /// Statements executed when the condition is false.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition, tested before each iteration.
        condition: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) { … }`
    For {
        /// Initialization statement (an assignment).
        init: Box<Stmt>,
        /// Loop condition, tested before each iteration.
        condition: Expr,
        /// Update statement (an assignment), executed after the body.
        update: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Integer literal.
    Literal(i64),
    /// Variable or port reference.
    Variable(String),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    /// Arithmetic negation (`-x`).
    Neg,
    /// Logical not (`!x`).
    Not,
}

/// Binary operators, from lowest to highest precedence tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Variable(name.to_string())
    }

    /// Number of operation nodes this expression lowers to.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Literal(_) | Expr::Variable(_) => 0,
            Expr::Unary { operand, .. } => 1 + operand.op_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.op_count() + rhs.op_count(),
        }
    }
}

impl Stmt {
    /// Number of statements in this statement, counting nested bodies.
    pub fn statement_count(&self) -> usize {
        match self {
            Stmt::Assign { .. } => 1,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                1 + then_body.iter().map(Stmt::statement_count).sum::<usize>()
                    + else_body.iter().map(Stmt::statement_count).sum::<usize>()
            }
            Stmt::While { body, .. } => 1 + body.iter().map(Stmt::statement_count).sum::<usize>(),
            Stmt::For {
                init, update, body, ..
            } => {
                1 + init.statement_count()
                    + update.statement_count()
                    + body.iter().map(Stmt::statement_count).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "||",
            BinaryOp::And => "&&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitAnd => "&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_counts_nested_operations() {
        // (a + b) * (c - 1) has three operations.
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::binary(BinaryOp::Sub, Expr::var("c"), Expr::Literal(1)),
        );
        assert_eq!(e.op_count(), 3);
        assert_eq!(Expr::Literal(5).op_count(), 0);
    }

    #[test]
    fn statement_count_includes_nested_bodies() {
        let inner = Stmt::Assign {
            target: "x".to_string(),
            value: Expr::Literal(1),
        };
        let loop_stmt = Stmt::While {
            condition: Expr::var("c"),
            body: vec![inner.clone(), inner],
        };
        assert_eq!(loop_stmt.statement_count(), 3);
    }

    #[test]
    fn binary_op_display() {
        assert_eq!(BinaryOp::Add.to_string(), "+");
        assert_eq!(BinaryOp::Ne.to_string(), "!=");
    }
}
