//! Recursive-descent parser for the behavioral language.
//!
//! Grammar (EBNF, whitespace and `//` comments ignored):
//!
//! ```text
//! design      := "design" IDENT "{" decl* stmt* "}"
//! decl        := ("input" | "output") port ("," port)* ";"
//!              | "var" IDENT ":" INT ("=" INT)? ";"
//! port        := IDENT ":" INT
//! stmt        := IDENT "=" expr ";"
//!              | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!              | "while" "(" expr ")" block
//!              | "for" "(" assign ";" expr ";" assign ")" block
//! block       := "{" stmt* "}"
//! expr        := or-expr (binary operators with C-like precedence)
//! ```

use crate::ast::{BinaryOp, Design, Expr, PortDecl, Stmt, UnaryOp, VarDecl};
use crate::error::HdlError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses behavioral source text into an AST.
///
/// # Errors
///
/// Returns [`HdlError::Lex`] or [`HdlError::Parse`] on malformed input.
pub fn parse(source: &str) -> Result<Design, HdlError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, pos: 0 }.design()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, expected: &str) -> Result<T, HdlError> {
        let t = self.peek();
        Err(HdlError::Parse {
            line: t.line,
            column: t.column,
            expected: expected.to_string(),
            found: t.kind.to_string(),
        })
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, HdlError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.error(what)
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, HdlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => self.error(what),
        }
    }

    fn integer(&mut self, what: &str) -> Result<i64, HdlError> {
        // Allow a leading minus for negative constants in initializers.
        let negative = self.eat(&TokenKind::Minus);
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if negative { -v } else { v })
            }
            _ => self.error(what),
        }
    }

    fn design(&mut self) -> Result<Design, HdlError> {
        self.expect(TokenKind::Design, "`design`")?;
        let name = self.ident("design name")?;
        self.expect(TokenKind::LBrace, "`{`")?;

        let mut design = Design {
            name,
            inputs: Vec::new(),
            outputs: Vec::new(),
            variables: Vec::new(),
            body: Vec::new(),
        };

        loop {
            match self.peek().kind {
                TokenKind::Input => {
                    self.bump();
                    design.inputs.extend(self.port_list()?);
                }
                TokenKind::Output => {
                    self.bump();
                    design.outputs.extend(self.port_list()?);
                }
                TokenKind::Var => {
                    self.bump();
                    design.variables.push(self.var_decl()?);
                }
                _ => break,
            }
        }

        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return self.error("`}` closing the design");
            }
            design.body.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(design)
    }

    fn port_list(&mut self) -> Result<Vec<PortDecl>, HdlError> {
        let mut ports = Vec::new();
        loop {
            let name = self.ident("port name")?;
            self.expect(TokenKind::Colon, "`:` before the port width")?;
            let width = self.integer("port width")?;
            ports.push(PortDecl {
                name,
                width: clamp_width(width),
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semicolon, "`;` after the port list")?;
        Ok(ports)
    }

    fn var_decl(&mut self) -> Result<VarDecl, HdlError> {
        let name = self.ident("variable name")?;
        self.expect(TokenKind::Colon, "`:` before the variable width")?;
        let width = self.integer("variable width")?;
        let initial = if self.eat(&TokenKind::Assign) {
            Some(self.integer("initial value")?)
        } else {
            None
        };
        self.expect(TokenKind::Semicolon, "`;` after the variable declaration")?;
        Ok(VarDecl {
            name,
            width: clamp_width(width),
            initial,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, HdlError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return self.error("`}` closing the block");
            }
            body.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(body)
    }

    fn statement(&mut self) -> Result<Stmt, HdlError> {
        match self.peek().kind.clone() {
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let condition = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if self.peek().kind == TokenKind::If {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    condition,
                    then_body,
                    else_body,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let condition = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { condition, body })
            }
            TokenKind::For => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let init = self.assignment()?;
                self.expect(TokenKind::Semicolon, "`;` after the for-initializer")?;
                let condition = self.expression()?;
                self.expect(TokenKind::Semicolon, "`;` after the for-condition")?;
                let update = self.assignment()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    condition,
                    update: Box::new(update),
                    body,
                })
            }
            TokenKind::Ident(_) => {
                let stmt = self.assignment()?;
                self.expect(TokenKind::Semicolon, "`;` after the assignment")?;
                Ok(stmt)
            }
            _ => self.error("a statement"),
        }
    }

    fn assignment(&mut self) -> Result<Stmt, HdlError> {
        let target = self.ident("assignment target")?;
        self.expect(TokenKind::Assign, "`=`")?;
        let value = self.expression()?;
        Ok(Stmt::Assign { target, value })
    }

    // Expression parsing with C-like precedence (lowest first).
    fn expression(&mut self) -> Result<Expr, HdlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.bitor_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bitor_expr()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.bitxor_expr()?;
            lhs = Expr::binary(BinaryOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.bitand_expr()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bitand_expr()?;
            lhs = Expr::binary(BinaryOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.equality_expr()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality_expr()?;
            lhs = Expr::binary(BinaryOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::EqEq => BinaryOp::Eq,
                TokenKind::NotEq => BinaryOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.shift_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Lt => BinaryOp::Lt,
                TokenKind::Le => BinaryOp::Le,
                TokenKind::Gt => BinaryOp::Gt,
                TokenKind::Ge => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Shl => BinaryOp::Shl,
                TokenKind::Shr => BinaryOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.additive_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, HdlError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, HdlError> {
        if self.eat(&TokenKind::Minus) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat(&TokenKind::Bang) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, HdlError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Variable(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => self.error("an expression"),
        }
    }
}

fn clamp_width(width: i64) -> u8 {
    width.clamp(1, 64) as u8
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_body() {
        let d = parse(
            "design demo {
                input a: 8, b: 4;
                output y: 8;
                var t: 8 = 3;
                y = a + b * t;
            }",
        )
        .unwrap();
        assert_eq!(d.name, "demo");
        assert_eq!(d.inputs.len(), 2);
        assert_eq!(d.inputs[1].width, 4);
        assert_eq!(d.outputs.len(), 1);
        assert_eq!(d.variables[0].initial, Some(3));
        assert_eq!(d.body.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let d = parse("design p { input a: 8; var x: 8; x = a + 2 * 3; }").unwrap();
        match &d.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary {
                    op: BinaryOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(
                        **rhs,
                        Expr::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("expected addition at the top, found {other:?}"),
            },
            other => panic!("expected assignment, found {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let d = parse(
            "design p { input x: 8; var z: 8;
               if (x > 5) { z = 1; } else if (x > 2) { z = 2; } else { z = 3; }
             }",
        )
        .unwrap();
        match &d.body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, found {other:?}"),
        }
    }

    #[test]
    fn parses_for_loops() {
        let d = parse(
            "design p { var i: 8; var s: 8 = 0;
               for (i = 0; i < 10; i = i + 1) { s = s + i; }
             }",
        )
        .unwrap();
        assert!(matches!(d.body[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_while_loops_and_parentheses() {
        let d = parse(
            "design p { input a: 8, b: 8; var x: 8;
               while ((a + b) > x) { x = x + 1; }
             }",
        )
        .unwrap();
        assert!(matches!(d.body[0], Stmt::While { .. }));
    }

    #[test]
    fn negative_initializers_are_allowed() {
        let d = parse("design p { var x: 8 = -5; x = 0; }").unwrap();
        assert_eq!(d.variables[0].initial, Some(-5));
    }

    #[test]
    fn missing_semicolon_is_a_parse_error() {
        let err = parse("design p { var x: 8; x = 1 }").unwrap_err();
        match err {
            HdlError::Parse { expected, .. } => assert!(expected.contains(';')),
            other => panic!("expected parse error, found {other:?}"),
        }
    }

    #[test]
    fn unexpected_eof_is_reported() {
        assert!(parse("design p { input a: 8;").is_err());
    }

    #[test]
    fn width_is_clamped_to_valid_range() {
        let d = parse("design p { input a: 200; var x: 0; x = a; }").unwrap();
        assert_eq!(d.inputs[0].width, 64);
        assert_eq!(d.variables[0].width, 1);
    }

    #[test]
    fn unary_operators_parse() {
        let d = parse("design p { input a: 8; var x: 8; x = -a + !a; }").unwrap();
        match &d.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(value.op_count(), 3),
            other => panic!("expected assignment, found {other:?}"),
        }
    }
}
