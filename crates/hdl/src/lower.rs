//! Lowering from the behavioral AST onto the CDFG builder.

use std::collections::HashSet;

use impact_cdfg::{Cdfg, CdfgBuilder, Operation, ValueRef};

use crate::ast::{BinaryOp, Design, Expr, Stmt, UnaryOp};
use crate::error::HdlError;

/// Lowers a parsed [`Design`] into a validated [`Cdfg`].
///
/// # Errors
///
/// Returns [`HdlError::Semantic`] for undeclared or misused names and
/// [`HdlError::Lowering`] if the resulting graph fails validation.
pub fn lower(design: &Design) -> Result<Cdfg, HdlError> {
    Lowering::new(design)?.run()
}

struct Lowering<'a> {
    design: &'a Design,
    builder: CdfgBuilder,
    inputs: HashSet<String>,
    declared: HashSet<String>,
    temp_counter: usize,
    loop_counter: usize,
}

impl<'a> Lowering<'a> {
    fn new(design: &'a Design) -> Result<Self, HdlError> {
        let mut builder = CdfgBuilder::new(&design.name);
        let mut inputs = HashSet::new();
        let mut declared = HashSet::new();

        for port in &design.inputs {
            if !declared.insert(port.name.clone()) {
                return Err(duplicate(&port.name));
            }
            inputs.insert(port.name.clone());
            builder.input(&port.name, port.width);
        }
        for port in &design.outputs {
            if !declared.insert(port.name.clone()) {
                return Err(duplicate(&port.name));
            }
            builder.output(&port.name, port.width);
        }
        for var in &design.variables {
            if !declared.insert(var.name.clone()) {
                return Err(duplicate(&var.name));
            }
            builder.local(&var.name, var.width, var.initial)?;
        }

        Ok(Self {
            design,
            builder,
            inputs,
            declared,
            temp_counter: 0,
            loop_counter: 0,
        })
    }

    fn run(mut self) -> Result<Cdfg, HdlError> {
        for stmt in &self.design.body {
            self.lower_stmt(stmt)?;
        }
        // Commit every primary output once, reading its final value.
        for port in &self.design.outputs {
            let var = self
                .builder
                .variable(&port.name)
                .expect("output declared above");
            self.builder.emit_output(ValueRef::Var(var), var);
        }
        self.builder.finish().map_err(HdlError::from)
    }

    fn fresh_temp(&mut self) -> String {
        let name = format!("%e{}", self.temp_counter);
        self.temp_counter += 1;
        name
    }

    fn lookup(&self, name: &str) -> Result<ValueRef, HdlError> {
        if !self.declared.contains(name) {
            return Err(HdlError::Semantic {
                message: format!("variable `{name}` used before declaration"),
            });
        }
        let var = self
            .builder
            .variable(name)
            .expect("declared names exist in the builder");
        Ok(ValueRef::Var(var))
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), HdlError> {
        match stmt {
            Stmt::Assign { target, value } => self.lower_assign(target, value),
            Stmt::If {
                condition,
                then_body,
                else_body,
            } => {
                let cond = self.lower_expr(condition)?;
                self.builder.begin_branch(cond);
                for s in then_body {
                    self.lower_stmt(s)?;
                }
                if !else_body.is_empty() {
                    self.builder.begin_else();
                    for s in else_body {
                        self.lower_stmt(s)?;
                    }
                }
                self.builder.end_branch();
                Ok(())
            }
            Stmt::While { condition, body } => {
                let label = self.fresh_loop_label();
                self.builder.begin_loop(&label);
                let cond = self.lower_expr(condition)?;
                self.builder.end_loop_header(cond);
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.builder.end_loop();
                Ok(())
            }
            Stmt::For {
                init,
                condition,
                update,
                body,
            } => {
                self.lower_stmt(init)?;
                let label = self.fresh_loop_label();
                self.builder.begin_loop(&label);
                let cond = self.lower_expr(condition)?;
                self.builder.end_loop_header(cond);
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.lower_stmt(update)?;
                self.builder.end_loop();
                Ok(())
            }
        }
    }

    fn fresh_loop_label(&mut self) -> String {
        let label = format!("loop{}", self.loop_counter);
        self.loop_counter += 1;
        label
    }

    fn lower_assign(&mut self, target: &str, value: &Expr) -> Result<(), HdlError> {
        if !self.declared.contains(target) {
            return Err(HdlError::Semantic {
                message: format!("assignment to undeclared variable `{target}`"),
            });
        }
        if self.inputs.contains(target) {
            return Err(HdlError::Semantic {
                message: format!("primary input `{target}` cannot be assigned"),
            });
        }
        match value {
            Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                self.builder.binary(map_binary(*op), l, r, target)?;
            }
            Expr::Unary { op, operand } => {
                let v = self.lower_expr(operand)?;
                self.builder.unary(map_unary(*op), v, target)?;
            }
            Expr::Literal(_) | Expr::Variable(_) => {
                let v = self.lower_expr(value)?;
                self.builder.assign(v, target)?;
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<ValueRef, HdlError> {
        match expr {
            Expr::Literal(v) => Ok(ValueRef::Const(*v)),
            Expr::Variable(name) => self.lookup(name),
            Expr::Unary { op, operand } => {
                let v = self.lower_expr(operand)?;
                let temp = self.fresh_temp();
                let var = self.builder.unary(map_unary(*op), v, &temp)?;
                Ok(ValueRef::Var(var))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let temp = self.fresh_temp();
                let var = self.builder.binary(map_binary(*op), l, r, &temp)?;
                Ok(ValueRef::Var(var))
            }
        }
    }
}

fn duplicate(name: &str) -> HdlError {
    HdlError::Semantic {
        message: format!("name `{name}` declared more than once"),
    }
}

fn map_binary(op: BinaryOp) -> Operation {
    match op {
        BinaryOp::Or => Operation::Or,
        BinaryOp::And => Operation::And,
        BinaryOp::BitOr => Operation::Or,
        BinaryOp::BitXor => Operation::Xor,
        BinaryOp::BitAnd => Operation::And,
        BinaryOp::Eq => Operation::Eq,
        BinaryOp::Ne => Operation::Ne,
        BinaryOp::Lt => Operation::Lt,
        BinaryOp::Le => Operation::Le,
        BinaryOp::Gt => Operation::Gt,
        BinaryOp::Ge => Operation::Ge,
        BinaryOp::Shl => Operation::Shl,
        BinaryOp::Shr => Operation::Shr,
        BinaryOp::Add => Operation::Add,
        BinaryOp::Sub => Operation::Sub,
        BinaryOp::Mul => Operation::Mul,
        BinaryOp::Div => Operation::Div,
        BinaryOp::Rem => Operation::Rem,
    }
}

fn map_unary(op: UnaryOp) -> Operation {
    match op {
        UnaryOp::Neg => Operation::Neg,
        UnaryOp::Not => Operation::Not,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use impact_cdfg::Region;

    fn compile(src: &str) -> Cdfg {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_assignment_lowers_to_operations() {
        let g = compile("design d { input a: 8, b: 8; output y: 8; y = a + b * 3; }");
        // One Mul (temp), one Add (into y), one Output node.
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Mul)
                .count(),
            1
        );
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Add)
                .count(),
            1
        );
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Output)
                .count(),
            1
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn if_statements_become_branch_regions_with_selects() {
        let g = compile(
            "design d { input x: 8; output z: 8;
               if (x > 5) { z = 1; } else { z = 2; }
             }",
        );
        let has_branch = g
            .regions()
            .iter()
            .any(|r| matches!(r, Region::Branch { .. }));
        assert!(has_branch);
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Select)
                .count(),
            1
        );
    }

    #[test]
    fn for_loops_become_loop_regions() {
        let g = compile(
            "design d { output s: 8; var i: 8; var acc: 8 = 0;
               for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
               s = acc;
             }",
        );
        let loops = g
            .regions()
            .iter()
            .filter(|r| matches!(r, Region::Loop(_)))
            .count();
        assert_eq!(loops, 1);
        assert!(g.edges().any(|(_, e)| e.loop_carried));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn while_loops_lower_with_condition_in_header() {
        let g = compile(
            "design d { input a: 8, b: 8; output r: 8; var x: 8; var y: 8;
               x = a; y = b;
               while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
               r = x;
             }",
        );
        match g
            .regions()
            .iter()
            .find(|r| matches!(r, Region::Loop(_)))
            .unwrap()
        {
            Region::Loop(info) => {
                assert!(!info.header.is_empty(), "condition computed in the header");
                assert!(!info.body.is_empty());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn undeclared_variable_use_is_a_semantic_error() {
        let err = lower(&parse("design d { output y: 8; y = missing + 1; }").unwrap()).unwrap_err();
        assert!(matches!(err, HdlError::Semantic { .. }));
    }

    #[test]
    fn assigning_to_an_input_is_rejected() {
        let err = lower(&parse("design d { input a: 8; output y: 8; a = 3; y = a; }").unwrap())
            .unwrap_err();
        assert!(matches!(err, HdlError::Semantic { .. }));
    }

    #[test]
    fn duplicate_declarations_are_rejected() {
        let err = lower(&parse("design d { input a: 8; var a: 8; output y: 8; y = a; }").unwrap())
            .unwrap_err();
        assert!(matches!(err, HdlError::Semantic { .. }));
    }

    #[test]
    fn every_output_gets_an_output_node() {
        let g = compile("design d { input a: 8; output y: 8, z: 8; y = a; z = a + 1; }");
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Output)
                .count(),
            2
        );
    }

    #[test]
    fn logical_and_bitwise_operators_map_to_logic_nodes() {
        let g = compile("design d { input a: 8, b: 8; output y: 8; y = (a && b) | (a ^ b); }");
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::And)
                .count(),
            1
        );
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Or)
                .count(),
            1
        );
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.operation == Operation::Xor)
                .count(),
            1
        );
    }

    #[test]
    fn nested_loops_and_branches_validate() {
        let g = compile(
            "design d { input a: 8, b: 8, dd: 8; output zz: 8;
               var z: 8 = 0; var i: 8; var j: 8; var h: 8 = 0; var m: 8 = 0; var k: 8 = 0;
               var c: 1; var e: 8; var g: 8;
               for (i = 0; i < 10; i = i + 1) {
                 c = a && b;
                 e = dd * i;
                 z = z + e;
                 if (c == 1) {
                   z = 0;
                 } else {
                   for (j = 0; j < 8; j = j + 1) {
                     g = i - h;
                     h = g + 5;
                     m = m + k;
                     k = dd * j;
                   }
                   z = h - m;
                   h = 8;
                   m = 0;
                 }
               }
               zz = z;
             }",
        );
        assert!(g.validate().is_ok());
        assert!(g.node_count() > 15);
    }
}
