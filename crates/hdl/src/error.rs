//! Error type for the behavioral frontend.

use std::error::Error;
use std::fmt;

use impact_cdfg::CdfgError;

/// Errors produced while compiling behavioral source text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HdlError {
    /// An unexpected character was encountered while tokenizing.
    Lex {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        column: u32,
        /// The offending character.
        found: char,
    },
    /// The token stream did not match the grammar.
    Parse {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        column: u32,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A name was used before being declared, declared twice, or misused
    /// (e.g. assigning to a primary input).
    Semantic {
        /// Explanation of the problem.
        message: String,
    },
    /// The CDFG builder rejected the lowered graph.
    Lowering(CdfgError),
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::Lex {
                line,
                column,
                found,
            } => write!(f, "line {line}:{column}: unexpected character `{found}`"),
            HdlError::Parse {
                line,
                column,
                expected,
                found,
            } => write!(
                f,
                "line {line}:{column}: expected {expected}, found {found}"
            ),
            HdlError::Semantic { message } => write!(f, "semantic error: {message}"),
            HdlError::Lowering(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl Error for HdlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HdlError::Lowering(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdfgError> for HdlError {
    fn from(e: CdfgError) -> Self {
        HdlError::Lowering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = HdlError::Parse {
            line: 3,
            column: 9,
            expected: "`;`".to_string(),
            found: "`}`".to_string(),
        };
        assert_eq!(e.to_string(), "line 3:9: expected `;`, found `}`");
    }

    #[test]
    fn lowering_errors_chain_their_source() {
        let e = HdlError::from(CdfgError::EmptyGraph);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("lowering error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<HdlError>();
    }
}
