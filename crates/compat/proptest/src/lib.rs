//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the API
//! subset this workspace's property tests use: range/tuple/`any`/`vec`
//! strategies, `prop_map`, the `proptest!` macro (with optional
//! `#![proptest_config]`), and the `prop_assert!`/`prop_assert_eq!` macros.
//! The container this repository builds in has no registry access; swap this
//! path dependency for the real crate when online.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! inputs are sampled from a generator seeded deterministically per test
//! name, so failures reproduce run-to-run. Each reported failure prints the
//! case number; re-running the test replays the identical sequence.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values (sampling subset of `proptest::Strategy`).
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    // Sampling itself lives in the sibling `rand` stub (real proptest also
    // builds on rand); these impls only adapt ranges to the Strategy trait.
    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`] (subset of `proptest::collection::SizeRange`).
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 96 }
        }
    }

    /// Deterministic generator (the `rand` stub's [`rand::StdRng`]), seeded
    /// from the test name so every run of a given test replays the same
    /// input sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::StdRng,
    }

    impl rand::Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            rand::Rng::next_u64(&mut self.inner)
        }
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: rand::SeedableRng::seed_from_u64(h),
            }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::Rng::next_u64(&mut self.inner)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            rand::Rng::random_range(self, 0..bound)
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds for the current case (panics on failure, unlike
/// real proptest's error return — adequate without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest: property {} failed at case {}/{}",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges_sample_in_bounds");
        for _ in 0..500 {
            assert!((2..9usize).contains(&(2usize..9).sample(&mut rng)));
            assert!((1..=64u8).contains(&(1u8..=64).sample(&mut rng)));
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_and_map() {
        let mut rng = TestRng::from_name("vec_strategy_respects_size_and_map");
        let strat = prop::collection::vec(0i64..10, 2..5).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.sample(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end, including doc attributes,
        /// multiple arguments and trailing commas.
        #[test]
        fn macro_end_to_end(x in -10i64..10, flag in any::<bool>(),) {
            prop_assert!((-10..10).contains(&x));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
