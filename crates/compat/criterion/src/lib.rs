//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! providing the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. The container this repository
//! builds in has no registry access; swap this path dependency for the real
//! crate when online.
//!
//! Measurement is deliberately simple — a short calibrated loop reporting the
//! mean wall-clock time per iteration — adequate for spotting order-of-
//! magnitude regressions, without criterion's statistics or HTML reports.

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark function.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(300);

/// Re-export of [`std::hint::black_box`], like the real crate.
pub use std::hint::black_box;

/// The benchmark manager (API subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness sizes its own sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this harness uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures `f` and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group (no-op; all results are printed as they are measured).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`]
/// with the code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    // Calibrate: time one iteration, then choose a count filling the budget.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    // The cap only guards against pathological calibration (per_iter ≈ 0);
    // ordinary fast routines should still fill the whole budget.
    let iters = (MEASUREMENT_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    println!(
        "{label:<60} {:>12} /iter ({iters} iters)",
        format_time(mean)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, like the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut counter = 0u64;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_function("count", |b| b.iter(|| counter += 1));
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
