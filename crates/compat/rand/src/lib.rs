//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API subset this workspace uses: a seedable
//! [`StdRng`] and uniform [`Rng::random_range`] sampling over integer and
//! float ranges. The container this repository builds in has no registry
//! access; swap this path dependency for the real crate when online.
//!
//! The generator is SplitMix64 — deterministic per seed, statistically fine
//! for generating "typical input sequences", and obviously **not**
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// Trait for random-number generators (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Deprecated pre-0.9 spelling of [`Rng::random_range`].
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Trait for seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator (SplitMix64 here).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand::distr::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value from the range with `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform sample from `[0, bound)` without modulo bias worth worrying about
/// for test-input generation (uses 128-bit multiply-shift reduction).
fn bounded(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        // `start + unit*(end-start)` can round up to exactly `end` when the
        // span is small relative to the magnitude; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, SampleRange, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5i64..=17);
            assert!((-5..=17).contains(&v));
            let u: usize = rng.random_range(3usize..9);
            assert!((3..9).contains(&u));
            let f: f64 = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
