//! Per-peer key tracking for delta exchange.
//!
//! A naive exchange would re-send the whole cache after every job; the
//! receiver would then have to re-verify megabytes of entries it already
//! audited, and the audit — schedule legality per design point — would
//! quickly dominate the sweep. Instead each side of a link remembers which
//! keys the peer already holds ([`KnownKeys`]) and sends only the
//! complement. Values are `Arc`-shared inside [`CacheSnapshot`], so a
//! filtered delta clones pointers, not payloads, and the audit cost of an
//! exchange is proportional to the *new* work it carries.

use std::collections::HashSet;

use impact_core::{
    BlockKey, CacheSnapshot, ContextKey, FuStatsKey, MuxStatsKey, PointKey, RegStatsKey, ScaledKey,
    ScheduleKey,
};

/// The cache keys one peer is known to hold, layer by layer.
///
/// Updated in both directions: keys the peer sent us and keys we sent the
/// peer are equally *known* — either way, re-sending them would be a
/// duplicate the receiver skips.
#[derive(Debug, Default)]
pub struct KnownKeys {
    points: HashSet<PointKey>,
    scaled: HashSet<ScaledKey>,
    contexts: HashSet<ContextKey>,
    schedules: HashSet<ScheduleKey>,
    block_schedules: HashSet<BlockKey>,
    fu_stats: HashSet<FuStatsKey>,
    reg_stats: HashSet<RegStatsKey>,
    mux_stats: HashSet<MuxStatsKey>,
}

macro_rules! each_layer {
    ($macro:ident) => {
        $macro!(points);
        $macro!(scaled);
        $macro!(contexts);
        $macro!(schedules);
        $macro!(block_schedules);
        $macro!(fu_stats);
        $macro!(reg_stats);
        $macro!(mux_stats);
    };
}

impl KnownKeys {
    /// An empty tracker: the peer is assumed to hold nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of keys known across every layer.
    pub fn len(&self) -> usize {
        let mut total = 0;
        macro_rules! add {
            ($field:ident) => {
                total += self.$field.len();
            };
        }
        each_layer!(add);
        total
    }

    /// Whether no key is known yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks every key of `snapshot` as known (the peer sent it, or it was
    /// just sent to the peer).
    pub fn note(&mut self, snapshot: &CacheSnapshot) {
        macro_rules! note {
            ($field:ident) => {
                self.$field.extend(snapshot.$field.keys().copied());
            };
        }
        each_layer!(note);
    }

    /// The entries of `snapshot` the peer does not hold yet. Values are
    /// cloned by `Arc`, so the delta is cheap regardless of entry size.
    pub fn delta_from(&self, snapshot: &CacheSnapshot) -> CacheSnapshot {
        let mut delta = CacheSnapshot::default();
        macro_rules! filter {
            ($field:ident) => {
                for (key, value) in &snapshot.$field {
                    if !self.$field.contains(key) {
                        delta.$field.insert(*key, value.clone());
                    }
                }
            };
        }
        each_layer!(filter);
        delta
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_core::{Impact, SweepSession, SynthesisConfig};

    fn populated_snapshot() -> CacheSnapshot {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(6, 11)).unwrap();
        let session = SweepSession::new();
        Impact::new(SynthesisConfig::power_optimized(2.0).with_effort(2, 3))
            .synthesize_with_session(&cdfg, &trace, &session)
            .unwrap();
        session.backend().export()
    }

    #[test]
    fn deltas_shrink_to_nothing_once_noted() {
        let snapshot = populated_snapshot();
        let mut known = KnownKeys::new();
        assert!(known.is_empty());

        // Nothing known: the delta is the whole snapshot.
        let delta = known.delta_from(&snapshot);
        assert_eq!(delta.len(), snapshot.len());
        assert!(!delta.is_empty(), "a real run populated the cache");

        // Everything noted: the delta is empty.
        known.note(&snapshot);
        assert_eq!(known.len(), snapshot.len());
        assert!(known.delta_from(&snapshot).is_empty());
    }

    #[test]
    fn deltas_carry_exactly_the_unknown_entries() {
        let snapshot = populated_snapshot();
        let mut known = KnownKeys::new();
        // Mark a proper subset (one layer) as known.
        let subset = CacheSnapshot {
            points: snapshot.points.clone(),
            ..Default::default()
        };
        known.note(&subset);

        let delta = known.delta_from(&snapshot);
        assert!(delta.points.is_empty(), "known entries are filtered out");
        assert_eq!(delta.len(), snapshot.len() - snapshot.points.len());
        assert_eq!(delta.contexts.len(), snapshot.contexts.len());
    }
}
