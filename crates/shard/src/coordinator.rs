//! The coordinator: one job queue, N worker links, work stealing and a
//! deterministic merge.
//!
//! # Scheduling
//!
//! Jobs are not partitioned up front. The coordinator hands every worker
//! one job, then hands each worker its next job the moment its previous
//! `Outcome` arrives — dynamic self-scheduling, the multi-process analog of
//! the atomic-claim loop in `impact_bench::run_batch`. A worker stuck on an
//! expensive job (a `paulin` synthesis costs roughly 7× a `gcd` one per
//! pass) simply claims fewer jobs while the others drain the queue, so the
//! wall-clock tracks the total work, not `shards × slowest shard`.
//!
//! # Cache exchange
//!
//! The coordinator keeps a *hub* session. Worker deltas are verified
//! (decode + cache audit) and absorbed into the hub; right before each
//! `Assign`, the hub's delta against that worker's [`KnownKeys`] is sent
//! down, so work one shard did reaches the others one round-trip later.
//! Rejected exchanges are counted and skipped — the hub is never poisoned,
//! the affected worker just runs colder.
//!
//! # Determinism
//!
//! Results land in their job's submission slot, so the returned list is in
//! submission order no matter which worker finished first or how the cache
//! exchange interleaved. Synthesis itself is deterministic and cache
//! sharing never changes results, so the merged list is bit-identical to a
//! single-process run of the same jobs.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use impact_core::{write_snapshot_bytes, SweepSession};

use crate::delta::KnownKeys;
use crate::exchange::{export_delta, gate_and_absorb, ExchangeStats};
use crate::protocol::{self, Message, PROTOCOL_VERSION};

/// One job to distribute: a label for reports plus the opaque payload the
/// worker application decodes.
#[derive(Clone, Debug)]
pub struct ShardJob {
    /// Label carried into the result (e.g. `gcd/power@1.4`).
    pub label: String,
    /// Application-defined job description.
    pub payload: Vec<u8>,
}

/// One job's result, back in submission order.
#[derive(Clone, Debug)]
pub struct ShardResult {
    /// The job's label.
    pub label: String,
    /// Application-defined result payload.
    pub payload: Vec<u8>,
    /// Wall-clock of the job on its worker, in milliseconds.
    pub wall_ms: f64,
    /// Id of the worker that ran the job.
    pub worker: u32,
}

/// What a coordinated run produced.
#[derive(Debug)]
pub struct CoordinatorOutcome {
    /// Every job's result, in submission order (slot-merged).
    pub results: Vec<ShardResult>,
    /// Jobs completed per link, in link order — the work-stealing balance.
    pub jobs_per_link: Vec<u64>,
    /// Snapshot exchange counters summed over every link.
    pub exchange: ExchangeStats,
}

/// One worker connection: its id and the byte streams to reach it. The
/// streams can be a spawned process's stdin/stdout or an in-memory pipe.
pub struct WorkerLink {
    /// The worker's id (shown in results and mailbox file names).
    pub id: u32,
    /// Stream carrying the worker's messages to the coordinator.
    pub reader: Box<dyn Read + Send>,
    /// Stream carrying the coordinator's messages to the worker.
    pub writer: Box<dyn Write + Send>,
}

/// Per-link coordinator state.
struct LinkState {
    id: u32,
    /// `None` once the run is over — dropping the writer closes the
    /// worker's inbound stream, so workers (and then the reader threads)
    /// unblock even when the run ends in an error.
    writer: Option<Box<dyn Write + Send>>,
    /// Keys this worker is known to hold (sent to it or received from it).
    known: KnownKeys,
    jobs_done: u64,
    /// The slot currently running on this worker, if any.
    running: Option<u64>,
    /// The worker acknowledged `Shutdown` (or closed cleanly).
    finished: bool,
}

enum Event {
    Message(usize, Message),
    Closed(usize, Option<io::Error>),
}

/// Persists exchanged snapshots for post-hoc audit (`impact-verify
/// --snapshot-dir`).
struct Mailbox {
    dir: PathBuf,
    seq: u64,
}

impl Mailbox {
    fn persist(&mut self, worker: u32, direction: &str, bytes: &[u8]) -> io::Result<()> {
        let name = format!("exchange_{:04}_w{worker}_{direction}.impactcache", self.seq);
        self.seq += 1;
        write_snapshot_bytes(&self.dir.join(name), bytes)
    }
}

/// Distributes `jobs` over the linked workers and merges the results
/// deterministically. The `hub` session accumulates every verified worker
/// delta (pre-warm it to give every worker a head start; export it after
/// for a snapshot of the whole fleet's work). With a `mailbox` directory,
/// every exchanged snapshot — inbound worker deltas and outbound hub deltas
/// — is persisted as a `.impactcache` file for post-hoc verification.
///
/// # Errors
///
/// I/O errors on any link, a worker speaking a different protocol version,
/// protocol violations (wrong message direction, unknown or duplicate
/// slots), and links that close while their job — or the queue — is
/// unfinished. Exchange *rejections* are not errors; they are counted in
/// the outcome's [`ExchangeStats`].
pub fn coordinate(
    hub: &SweepSession,
    links: Vec<WorkerLink>,
    jobs: Vec<ShardJob>,
    mailbox: Option<&Path>,
) -> io::Result<CoordinatorOutcome> {
    assert!(!links.is_empty(), "coordinating zero workers is a bug");
    let mut mailbox = mailbox.map(|dir| Mailbox {
        dir: dir.to_path_buf(),
        seq: 0,
    });

    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let mut states = Vec::with_capacity(links.len());
    std::thread::scope(|scope| {
        for (index, link) in links.into_iter().enumerate() {
            states.push(LinkState {
                id: link.id,
                writer: Some(link.writer),
                known: KnownKeys::new(),
                jobs_done: 0,
                running: None,
                finished: false,
            });
            let tx = event_tx.clone();
            let mut reader = link.reader;
            scope.spawn(move || loop {
                match protocol::receive(&mut reader) {
                    Ok(Some(message)) => {
                        if tx.send(Event::Message(index, message)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(Event::Closed(index, None));
                        break;
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Closed(index, Some(error)));
                        break;
                    }
                }
            });
        }
        drop(event_tx);
        let outcome = event_loop(hub, &mut states, &jobs, mailbox.as_mut(), &event_rx);
        // Close every link before the scope joins the reader threads: after
        // an early error other workers are still waiting for a message, and
        // a reader blocked on a healthy worker would deadlock the join. EOF
        // makes the workers exit, which closes their side of each pipe.
        for state in &mut states {
            state.writer = None;
        }
        outcome
    })
    .map(|(results, exchange)| CoordinatorOutcome {
        results,
        jobs_per_link: states.iter().map(|s| s.jobs_done).collect(),
        exchange,
    })
}

/// Sends a worker the hub delta it is missing and its next job (or the
/// shutdown once the queue is empty).
fn dispatch(
    hub: &SweepSession,
    state: &mut LinkState,
    jobs: &[ShardJob],
    next_job: &mut usize,
    exchange: &mut ExchangeStats,
    mailbox: Option<&mut Mailbox>,
) -> io::Result<()> {
    if let Some(bytes) = export_delta(hub, &mut state.known, exchange) {
        if let Some(mailbox) = mailbox {
            mailbox.persist(state.id, "out", &bytes)?;
        }
        let writer = state.writer.as_mut().expect("link is open during the run");
        protocol::send(writer, &Message::Sync { bytes })?;
    }
    let writer = state.writer.as_mut().expect("link is open during the run");
    if *next_job < jobs.len() {
        let slot = *next_job as u64;
        state.running = Some(slot);
        protocol::send(
            writer,
            &Message::Assign {
                slot,
                payload: jobs[*next_job].payload.clone(),
            },
        )?;
        *next_job += 1;
    } else {
        protocol::send(writer, &Message::Shutdown)?;
    }
    Ok(())
}

fn protocol_error(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn event_loop(
    hub: &SweepSession,
    states: &mut [LinkState],
    jobs: &[ShardJob],
    mut mailbox: Option<&mut Mailbox>,
    events: &mpsc::Receiver<Event>,
) -> io::Result<(Vec<ShardResult>, ExchangeStats)> {
    let mut results: Vec<Option<ShardResult>> = jobs.iter().map(|_| None).collect();
    let mut collected = 0usize;
    let mut next_job = 0usize;
    let mut exchange = ExchangeStats::default();
    let mut active = states.len();

    while active > 0 {
        let event = events
            .recv()
            .map_err(|_| protocol_error("every link closed before the run completed"))?;
        match event {
            Event::Message(index, Message::Hello { worker, protocol }) => {
                if protocol != PROTOCOL_VERSION {
                    return Err(protocol_error(format!(
                        "worker {worker} speaks protocol v{protocol}, coordinator v{PROTOCOL_VERSION}"
                    )));
                }
                if states[index].id != worker {
                    return Err(protocol_error(format!(
                        "link {} answered as worker {worker}",
                        states[index].id
                    )));
                }
                dispatch(
                    hub,
                    &mut states[index],
                    jobs,
                    &mut next_job,
                    &mut exchange,
                    mailbox.as_deref_mut(),
                )?;
            }
            Event::Message(index, Message::Sync { bytes }) => {
                let state = &mut states[index];
                let outcome = gate_and_absorb(hub, &mut state.known, &bytes, &mut exchange);
                if outcome.accepted() {
                    if let Some(mailbox) = mailbox.as_deref_mut() {
                        mailbox.persist(state.id, "in", &bytes)?;
                    }
                }
            }
            Event::Message(
                index,
                Message::Outcome {
                    slot,
                    payload,
                    wall_ms,
                },
            ) => {
                let state = &mut states[index];
                if state.running.take() != Some(slot) {
                    return Err(protocol_error(format!(
                        "worker {} reported slot {slot} it was not running",
                        state.id
                    )));
                }
                let slot_index = usize::try_from(slot)
                    .ok()
                    .filter(|&i| i < results.len())
                    .ok_or_else(|| protocol_error(format!("result for unknown slot {slot}")))?;
                results[slot_index] = Some(ShardResult {
                    label: jobs[slot_index].label.clone(),
                    payload,
                    wall_ms,
                    worker: state.id,
                });
                collected += 1;
                state.jobs_done += 1;
                dispatch(
                    hub,
                    &mut states[index],
                    jobs,
                    &mut next_job,
                    &mut exchange,
                    mailbox.as_deref_mut(),
                )?;
            }
            Event::Message(index, Message::Bye) => {
                states[index].finished = true;
            }
            Event::Message(index, Message::Assign { .. } | Message::Shutdown) => {
                return Err(protocol_error(format!(
                    "worker {} sent a coordinator-only message",
                    states[index].id
                )));
            }
            Event::Closed(index, error) => {
                active -= 1;
                let state = &states[index];
                if let Some(error) = error {
                    return Err(error);
                }
                if !state.finished || state.running.is_some() {
                    return Err(protocol_error(format!(
                        "worker {} closed its link mid-run",
                        state.id
                    )));
                }
            }
        }
    }

    if collected != jobs.len() {
        return Err(protocol_error(format!(
            "every worker exited but only {collected} of {} jobs completed",
            jobs.len()
        )));
    }
    let results = results
        .into_iter()
        .map(|slot| slot.expect("collected == jobs.len() implies every slot is filled"))
        .collect();
    Ok((results, exchange))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::wire::pipe;
    use crate::worker::{serve, ShardApp};

    /// A worker app that reverses the job payload — enough to check slots,
    /// labels and payload routing without running real synthesis.
    struct Reverser {
        session: SweepSession,
    }

    impl ShardApp for Reverser {
        fn session(&self) -> &SweepSession {
            &self.session
        }

        fn run(&mut self, payload: &[u8]) -> Vec<u8> {
            payload.iter().rev().copied().collect()
        }
    }

    fn spawn_workers(count: u32) -> (Vec<WorkerLink>, Vec<std::thread::JoinHandle<()>>) {
        let mut links = Vec::new();
        let mut handles = Vec::new();
        for id in 0..count {
            let (to_worker, worker_reads) = pipe();
            let (worker_writes, from_worker) = pipe();
            links.push(WorkerLink {
                id,
                reader: Box::new(from_worker),
                writer: Box::new(to_worker),
            });
            handles.push(std::thread::spawn(move || {
                let mut app = Reverser {
                    session: SweepSession::new(),
                };
                serve(&mut app, id, worker_reads, worker_writes).unwrap();
            }));
        }
        (links, handles)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<ShardJob> = (0..17)
            .map(|i| ShardJob {
                label: format!("job-{i}"),
                payload: format!("payload-{i}").into_bytes(),
            })
            .collect();
        let hub = SweepSession::new();
        let (links, handles) = spawn_workers(3);
        let outcome = coordinate(&hub, links, jobs, None).unwrap();
        for handle in handles {
            handle.join().unwrap();
        }

        assert_eq!(outcome.results.len(), 17);
        for (i, result) in outcome.results.iter().enumerate() {
            assert_eq!(result.label, format!("job-{i}"));
            let expected: Vec<u8> = format!("payload-{i}")
                .into_bytes()
                .iter()
                .rev()
                .copied()
                .collect();
            assert_eq!(result.payload, expected);
        }
        // Every job was done exactly once, spread over the links.
        assert_eq!(outcome.jobs_per_link.iter().sum::<u64>(), 17);
        assert_eq!(outcome.jobs_per_link.len(), 3);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![ShardJob {
            label: "only".into(),
            payload: b"x".to_vec(),
        }];
        let hub = SweepSession::new();
        let (links, handles) = spawn_workers(4);
        let outcome = coordinate(&hub, links, jobs, None).unwrap();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.jobs_per_link.iter().sum::<u64>(), 1);
    }

    #[test]
    fn a_link_that_dies_mid_run_is_an_error() {
        let jobs = vec![ShardJob {
            label: "job".into(),
            payload: b"x".to_vec(),
        }];
        let hub = SweepSession::new();
        // A link whose worker never answers: drop the worker-side handles
        // immediately so the coordinator sees a closed stream.
        let (to_worker, worker_reads) = pipe();
        let (worker_writes, from_worker) = pipe();
        drop(worker_reads);
        drop(worker_writes);
        let links = vec![WorkerLink {
            id: 0,
            reader: Box::new(from_worker),
            writer: Box::new(to_worker),
        }];
        let error = coordinate(&hub, links, jobs, None).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn a_version_mismatch_is_an_error() {
        let hub = SweepSession::new();
        let (mut to_coord, from_worker) = pipe();
        let (to_worker, worker_reads) = pipe();
        protocol::send(
            &mut to_coord,
            &Message::Hello {
                worker: 0,
                protocol: PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        // Close the fake worker's sending side: the coordinator's reader
        // thread must see EOF after the bad hello, or the scope join would
        // wait on it forever.
        drop(to_coord);
        let links = vec![WorkerLink {
            id: 0,
            reader: Box::new(from_worker),
            writer: Box::new(to_worker),
        }];
        let error = coordinate(
            &hub,
            links,
            vec![ShardJob {
                label: "job".into(),
                payload: Vec::new(),
            }],
            None,
        )
        .unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(error.to_string().contains("protocol"));
        drop(worker_reads);
    }
}
