//! Sharded multi-process search: one coordinator process driving N worker
//! processes, each owning a [`SweepSession`](impact_core::SweepSession),
//! exchanging cache entries as snapshot deltas and merging ranked results
//! bit-identically to a single-process run.
//!
//! The paper's experiments sweep a laxity grid per benchmark; every job of a
//! sweep is an independent synthesis whose result is a pure function of its
//! configuration, and the shared evaluation cache changes wall-clock, never
//! results. That makes the sweep embarrassingly parallel *across processes*
//! too — what this crate adds over the in-process worker pool of
//! `impact_bench::run_batch` is the plumbing to do it safely:
//!
//! * **Framing** ([`wire`]): length-prefixed frames over any byte stream —
//!   the stdin/stdout pipes of spawned workers, or an in-memory pipe for
//!   tests.
//! * **Protocol** ([`protocol`]): a small tagged message set (`Hello`,
//!   `Sync`, `Assign`, `Outcome`, `Shutdown`, `Bye`) encoded with
//!   `impact_codec`. Job and result payloads are opaque bytes, so the
//!   protocol layer stays independent of what a job computes.
//! * **Delta exchange** ([`delta`], [`exchange`]): peers track which cache
//!   keys the other side already holds ([`KnownKeys`]) and send only the
//!   difference, encoded with the PR 6 snapshot codec. Every *inbound*
//!   snapshot is untrusted input: it must decode (magic, version, digests)
//!   and pass the `impact_verify` cache audit before it is absorbed — a
//!   rejected exchange is counted and skipped, degrading that peer to a
//!   cold start instead of poisoning the merge.
//! * **Work stealing** ([`coordinator`]): the coordinator owns one job
//!   queue and hands each worker its next job the moment the previous one
//!   finishes (dynamic self-scheduling). Shards with uneven per-job cost —
//!   `paulin` jobs cost roughly 7× `gcd` jobs — therefore balance
//!   automatically instead of serializing on the slowest static partition.
//! * **Deterministic merge**: every result lands in the slot of its job's
//!   submission index, so the merged result list is in submission order
//!   regardless of which worker finished first — the same slot discipline
//!   `run_batch` uses, and the reason merged reports are bit-identical to a
//!   single-process run.
//!
//! The crate is transport-agnostic and job-agnostic: `impact_bench`'s
//! `shard_bench` binary supplies the job payloads (benchmark + laxity +
//! effort) and spawns real worker processes; tests drive the same
//! coordinator and worker loops over in-memory pipes.

pub mod coordinator;
pub mod delta;
pub mod exchange;
pub mod protocol;
pub mod wire;
pub mod worker;

pub use coordinator::{coordinate, CoordinatorOutcome, ShardJob, ShardResult, WorkerLink};
pub use delta::KnownKeys;
pub use exchange::{export_delta, gate_and_absorb, ExchangeOutcome, ExchangeStats};
pub use protocol::{Message, PROTOCOL_VERSION};
pub use worker::{serve, ShardApp, WorkerStats};
