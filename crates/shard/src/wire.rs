//! Length-prefixed framing over arbitrary byte streams, plus an in-memory
//! pipe for tests.
//!
//! A frame is a little-endian `u64` payload length followed by the payload.
//! The length is sanity-capped: a corrupt or adversarial peer cannot make
//! the reader attempt a multi-gigabyte allocation. End-of-stream *between*
//! frames is a clean close ([`read_frame`] returns `None`); end-of-stream
//! *inside* a frame is an error — the peer died mid-message.

use std::io::{self, Read, Write};
use std::sync::mpsc;

/// Upper bound on one frame's payload. Full-mode cache snapshots of the
/// largest example design are tens of megabytes; a frame claiming more than
/// this is corruption, not data.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// Writes one frame and flushes, so the peer can react to the message
/// without waiting for more output.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame. Returns `None` when the stream closed cleanly at a
/// frame boundary.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends inside a frame and
/// [`io::ErrorKind::InvalidData`] when the length prefix exceeds
/// [`MAX_FRAME_BYTES`]; other errors come from the underlying stream.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 8];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame's length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u64::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write half of an in-memory pipe (see [`pipe`]).
#[derive(Debug)]
pub struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

/// Read half of an in-memory pipe (see [`pipe`]).
#[derive(Debug)]
pub struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
}

/// An in-memory unidirectional byte pipe: everything written to the
/// [`PipeWriter`] comes out of the [`PipeReader`], and dropping the writer
/// closes the reader (EOF after the buffered bytes drain). Lets tests run
/// the worker loop on a thread against the real coordinator without
/// spawning processes.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            pending: Vec::new(),
            pos: 0,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.pos == self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                // Writer dropped: the remaining bytes (none) are EOF.
                Err(mpsc::RecvError) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len() - self.pos);
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let (mut writer, mut reader) = pipe();
        write_frame(&mut writer, b"hello").unwrap();
        write_frame(&mut writer, b"").unwrap();
        write_frame(&mut writer, &[0xAB; 100_000]).unwrap();
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            vec![0xAB; 100_000]
        );
        drop(writer);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let (mut writer, mut reader) = pipe();
        // A length prefix promising 100 bytes, then the writer dies.
        writer.write_all(&100u64.to_le_bytes()).unwrap();
        writer.write_all(b"short").unwrap();
        drop(writer);
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // EOF inside the length prefix itself.
        let (mut writer, mut reader) = pipe();
        writer.write_all(&[1, 2, 3]).unwrap();
        drop(writer);
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let (mut writer, mut reader) = pipe();
        writer.write_all(&u64::MAX.to_le_bytes()).unwrap();
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn writing_to_a_dropped_reader_reports_broken_pipe() {
        let (mut writer, reader) = pipe();
        drop(reader);
        let err = write_frame(&mut writer, b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
