//! The coordinator ↔ worker message set, encoded with `impact_codec` and
//! carried in [`wire`](crate::wire) frames.
//!
//! The conversation is strictly alternating from the worker's point of
//! view: it sends `Hello`, then for every `Assign` it receives it replies
//! with an optional `Sync` (its cache delta) followed by the `Outcome`, and
//! a `Shutdown` is answered with `Bye`. The coordinator writes to a worker
//! only right after that worker spoke (`Hello` or `Outcome`), which is when
//! the worker is guaranteed to be reading — the protocol cannot deadlock on
//! full pipes.
//!
//! Job and result payloads are opaque byte strings: the application layer
//! (e.g. `shard_bench`) defines what a job is and what it returns. Snapshot
//! payloads are the PR 6 cache-snapshot wire format and are *always*
//! verified by the receiver before use (see [`exchange`](crate::exchange)).

use std::io::{self, Read, Write};

use impact_codec::{
    decode_from_slice, encode_to_vec, Decode, DecodeError, Decoder, Encode, Encoder,
};

use crate::wire;

/// Version of the message layout. Peers with different versions refuse to
/// talk (the coordinator checks the version in `Hello`).
pub const PROTOCOL_VERSION: u32 = 1;

const TAG_MESSAGE: u8 = 0x70;

const MSG_HELLO: u8 = 1;
const MSG_SYNC: u8 = 2;
const MSG_ASSIGN: u8 = 3;
const MSG_OUTCOME: u8 = 4;
const MSG_SHUTDOWN: u8 = 5;
const MSG_BYE: u8 = 6;

/// One coordinator ↔ worker message.
#[derive(Clone, PartialEq, Debug)]
pub enum Message {
    /// Worker → coordinator, once at startup: the worker's id and protocol
    /// version.
    Hello {
        /// The worker's id (its shard index).
        worker: u32,
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Either direction: encoded cache-snapshot bytes (a delta — only the
    /// entries the receiver has not seen). Untrusted until verified.
    Sync {
        /// The PR 6 snapshot wire format.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: run one job.
    Assign {
        /// The job's submission index; the result lands in this slot.
        slot: u64,
        /// Application-defined job description.
        payload: Vec<u8>,
    },
    /// Worker → coordinator: a finished job.
    Outcome {
        /// The `Assign` slot this result belongs to.
        slot: u64,
        /// Application-defined result.
        payload: Vec<u8>,
        /// Wall-clock of the job on the worker, in milliseconds.
        wall_ms: f64,
    },
    /// Coordinator → worker: no more jobs; answer `Bye` and exit.
    Shutdown,
    /// Worker → coordinator: acknowledges `Shutdown`; the worker is gone.
    Bye,
}

impl Encode for Message {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_MESSAGE);
        match self {
            Message::Hello { worker, protocol } => {
                w.put_u8(MSG_HELLO);
                w.put_u32(*worker);
                w.put_u32(*protocol);
            }
            Message::Sync { bytes } => {
                w.put_u8(MSG_SYNC);
                w.put_bytes(bytes);
            }
            Message::Assign { slot, payload } => {
                w.put_u8(MSG_ASSIGN);
                w.put_u64(*slot);
                w.put_bytes(payload);
            }
            Message::Outcome {
                slot,
                payload,
                wall_ms,
            } => {
                w.put_u8(MSG_OUTCOME);
                w.put_u64(*slot);
                w.put_bytes(payload);
                w.put_f64(*wall_ms);
            }
            Message::Shutdown => w.put_u8(MSG_SHUTDOWN),
            Message::Bye => w.put_u8(MSG_BYE),
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_MESSAGE)?;
        match r.take_u8()? {
            MSG_HELLO => Ok(Message::Hello {
                worker: r.take_u32()?,
                protocol: r.take_u32()?,
            }),
            MSG_SYNC => Ok(Message::Sync {
                bytes: r.take_bytes()?.to_vec(),
            }),
            MSG_ASSIGN => Ok(Message::Assign {
                slot: r.take_u64()?,
                payload: r.take_bytes()?.to_vec(),
            }),
            MSG_OUTCOME => Ok(Message::Outcome {
                slot: r.take_u64()?,
                payload: r.take_bytes()?.to_vec(),
                wall_ms: r.take_f64()?,
            }),
            MSG_SHUTDOWN => Ok(Message::Shutdown),
            MSG_BYE => Ok(Message::Bye),
            _ => Err(DecodeError::Invalid("unknown shard message discriminant")),
        }
    }
}

/// Writes one message as a frame.
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn send(writer: &mut impl Write, message: &Message) -> io::Result<()> {
    wire::write_frame(writer, &encode_to_vec(message))
}

/// Reads one message; `None` on a clean end of stream.
///
/// # Errors
///
/// I/O errors from the stream, plus [`io::ErrorKind::InvalidData`] for a
/// frame that is not a well-formed message.
pub fn receive(reader: &mut impl Read) -> io::Result<Option<Message>> {
    let Some(frame) = wire::read_frame(reader)? else {
        return Ok(None);
    };
    decode_from_slice(&frame).map(Some).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad shard message: {e}"),
        )
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::wire::pipe;

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Hello {
                worker: 3,
                protocol: PROTOCOL_VERSION,
            },
            Message::Sync {
                bytes: vec![1, 2, 3],
            },
            Message::Assign {
                slot: 7,
                payload: b"job".to_vec(),
            },
            Message::Outcome {
                slot: 7,
                payload: b"report".to_vec(),
                wall_ms: 12.5,
            },
            Message::Shutdown,
            Message::Bye,
        ];
        let (mut writer, mut reader) = pipe();
        for message in &messages {
            send(&mut writer, message).unwrap();
        }
        for message in &messages {
            assert_eq!(receive(&mut reader).unwrap().unwrap(), *message);
        }
        drop(writer);
        assert!(receive(&mut reader).unwrap().is_none());
    }

    #[test]
    fn garbage_frames_are_invalid_data() {
        let (mut writer, mut reader) = pipe();
        wire::write_frame(&mut writer, b"not a message").unwrap();
        let err = receive(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
