//! The worker side of a shard link: a serve loop around an application
//! callback.
//!
//! A worker owns one [`SweepSession`] and answers the coordinator's
//! messages: `Sync` merges the hub's delta into the local cache (gated by
//! the full verification stack — see [`exchange`](crate::exchange)),
//! `Assign` runs one job and replies with the worker's own cache delta
//! followed by the result, `Shutdown` is acknowledged with `Bye`. Sending
//! the delta *before* the `Outcome` matters: the coordinator processes the
//! messages in order, so the worker's new entries are in the hub before the
//! hub computes the delta it sends back with the next job — entries never
//! echo back to their producer.

use std::io::{self, Read, Write};
use std::time::Instant;

use impact_core::SweepSession;

use crate::delta::KnownKeys;
use crate::exchange::{export_delta, gate_and_absorb, ExchangeStats};
use crate::protocol::{self, Message, PROTOCOL_VERSION};

/// The application half of a worker: the session whose cache is exchanged,
/// and the job runner.
pub trait ShardApp {
    /// The session every job of this worker runs against.
    fn session(&self) -> &SweepSession;

    /// Runs one job. Must be deterministic — the merged results are
    /// compared bit-for-bit against a single-process run. Payload formats
    /// are the application's own (the shard layer never looks inside).
    fn run(&mut self, payload: &[u8]) -> Vec<u8>;
}

/// What a worker did over its lifetime, for operator-facing logs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkerStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Snapshot exchange counters of the link.
    pub exchange: ExchangeStats,
}

/// Runs the worker loop until the coordinator says `Shutdown` (or closes
/// the stream). Every inbound `Sync` is verified before it is absorbed; a
/// rejected one is skipped and the worker simply keeps computing from its
/// current (possibly cold) cache.
///
/// # Errors
///
/// I/O errors on the link, plus [`io::ErrorKind::InvalidData`] for
/// malformed or protocol-violating messages.
pub fn serve(
    app: &mut dyn ShardApp,
    worker: u32,
    mut reader: impl Read,
    mut writer: impl Write,
) -> io::Result<WorkerStats> {
    let mut known = KnownKeys::new();
    let mut stats = WorkerStats::default();
    protocol::send(
        &mut writer,
        &Message::Hello {
            worker,
            protocol: PROTOCOL_VERSION,
        },
    )?;
    // A closed stream means the coordinator is gone; treat it like a
    // shutdown so a dying coordinator never strands worker processes.
    while let Some(message) = protocol::receive(&mut reader)? {
        match message {
            Message::Sync { bytes } => {
                // Rejection is deliberately not fatal: the worker degrades
                // to recomputing what the snapshot would have carried.
                let _ = gate_and_absorb(app.session(), &mut known, &bytes, &mut stats.exchange);
            }
            Message::Assign { slot, payload } => {
                let started = Instant::now();
                let result = app.run(&payload);
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                stats.jobs += 1;
                if let Some(bytes) = export_delta(app.session(), &mut known, &mut stats.exchange) {
                    protocol::send(&mut writer, &Message::Sync { bytes })?;
                }
                protocol::send(
                    &mut writer,
                    &Message::Outcome {
                        slot,
                        payload: result,
                        wall_ms,
                    },
                )?;
            }
            Message::Shutdown => {
                protocol::send(&mut writer, &Message::Bye)?;
                break;
            }
            Message::Hello { .. } | Message::Outcome { .. } | Message::Bye => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "coordinator sent a worker-only message",
                ));
            }
        }
    }
    Ok(stats)
}
