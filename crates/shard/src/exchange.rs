//! Gated snapshot exchange: every inbound snapshot is untrusted input.
//!
//! Inbound bytes crossed a process boundary — a worker could have been
//! corrupted, the pipe garbled, or (with a snapshot-directory mailbox) a
//! stale file substituted. [`gate_and_absorb`] therefore runs the full
//! defense stack before any entry reaches the receiver's cache:
//!
//! 1. the PR 6 snapshot decoder (magic, version, per-section and whole-file
//!    digests, truncation checks), then
//! 2. the `impact_verify` cache audit (every design point, context and
//!    schedule re-verified against its key and against the other layers).
//!
//! A rejection at either stage is *counted and skipped*: the receiver keeps
//! its cache as-is and the sender's entries are simply recomputed on demand
//! — that peer degrades to a cold start, the merge is never poisoned.

use impact_core::verify::{audit_snapshot, has_errors};
use impact_core::{
    decode_snapshot, encode_snapshot, AbsorbStats, SnapshotRejection, SnapshotScope, SweepSession,
};

use crate::delta::KnownKeys;

/// Counters of one link's snapshot traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExchangeStats {
    /// Inbound snapshots that decoded, passed the audit and were absorbed.
    pub accepted: u64,
    /// Inbound snapshots rejected by the decoder (bad magic, version,
    /// digest or truncation).
    pub rejected_decode: u64,
    /// Inbound snapshots that decoded but failed the cache audit.
    pub rejected_audit: u64,
    /// Outbound deltas sent.
    pub sent: u64,
    /// Total inbound snapshot bytes offered (accepted or not).
    pub bytes_in: u64,
    /// Total outbound delta bytes sent.
    pub bytes_out: u64,
    /// Cumulative merge counters of the accepted snapshots.
    pub merge: AbsorbStats,
}

impl ExchangeStats {
    /// Total rejected inbound snapshots.
    pub fn rejected(&self) -> u64 {
        self.rejected_decode + self.rejected_audit
    }

    /// Accumulates another link's counters (for fleet-wide reporting).
    pub fn accumulate(&mut self, other: &ExchangeStats) {
        self.accepted += other.accepted;
        self.rejected_decode += other.rejected_decode;
        self.rejected_audit += other.rejected_audit;
        self.sent += other.sent;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.merge.accumulate(other.merge);
    }
}

/// What happened to one inbound snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExchangeOutcome {
    /// Verified and absorbed; the merge counters of this snapshot.
    Accepted(AbsorbStats),
    /// The decoder rejected the bytes; nothing was absorbed.
    RejectedDecode(SnapshotRejection),
    /// The bytes decoded but the cache audit found this many violations;
    /// nothing was absorbed.
    RejectedAudit(usize),
}

impl ExchangeOutcome {
    /// Whether the snapshot was absorbed.
    pub fn accepted(&self) -> bool {
        matches!(self, ExchangeOutcome::Accepted(_))
    }
}

/// Verifies inbound snapshot bytes and, if they pass, absorbs them into
/// `session` and marks their keys as known to the peer (it sent them — no
/// need to echo them back). Rejections leave the session untouched.
pub fn gate_and_absorb(
    session: &SweepSession,
    known: &mut KnownKeys,
    bytes: &[u8],
    stats: &mut ExchangeStats,
) -> ExchangeOutcome {
    stats.bytes_in += bytes.len() as u64;
    let snapshot = match decode_snapshot(bytes, SnapshotScope::Any) {
        Ok(snapshot) => snapshot,
        Err(rejection) => {
            stats.rejected_decode += 1;
            return ExchangeOutcome::RejectedDecode(rejection);
        }
    };
    let violations = audit_snapshot(&snapshot);
    if has_errors(&violations) {
        stats.rejected_audit += 1;
        return ExchangeOutcome::RejectedAudit(violations.len());
    }
    known.note(&snapshot);
    let merge = session.backend().absorb(snapshot);
    stats.accepted += 1;
    stats.merge.accumulate(merge);
    ExchangeOutcome::Accepted(merge)
}

/// Encodes the entries of `session` the peer has not seen yet, marking them
/// as known. Returns `None` when the peer is already up to date (nothing is
/// sent — an empty snapshot would still cost a frame and an audit).
pub fn export_delta(
    session: &SweepSession,
    known: &mut KnownKeys,
    stats: &mut ExchangeStats,
) -> Option<Vec<u8>> {
    let delta = known.delta_from(&session.backend().export());
    if delta.is_empty() {
        return None;
    }
    known.note(&delta);
    let bytes = encode_snapshot(&delta);
    stats.sent += 1;
    stats.bytes_out += bytes.len() as u64;
    Some(bytes)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_core::{Impact, SynthesisConfig};

    fn populated_session(laxity: f64) -> SweepSession {
        let bench = impact_benchmarks::gcd();
        let cdfg = bench.compile().unwrap();
        let trace = impact_behsim::simulate(&cdfg, &bench.input_sequences(6, 11)).unwrap();
        let session = SweepSession::new();
        Impact::new(SynthesisConfig::power_optimized(laxity).with_effort(2, 3))
            .synthesize_with_session(&cdfg, &trace, &session)
            .unwrap();
        session
    }

    #[test]
    fn clean_deltas_are_absorbed_and_not_echoed() {
        let sender = populated_session(2.0);
        let receiver = SweepSession::new();
        let mut sender_known = KnownKeys::new();
        let mut receiver_known = KnownKeys::new();
        let mut stats = ExchangeStats::default();

        let bytes = export_delta(&sender, &mut sender_known, &mut stats).unwrap();
        let outcome = gate_and_absorb(&receiver, &mut receiver_known, &bytes, &mut stats);
        assert!(outcome.accepted());
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.sent, 1);
        assert!(stats.merge.absorbed > 0);
        assert_eq!(stats.merge.duplicates, 0);

        // The receiver now knows everything it absorbed: its next delta back
        // to the sender is empty, and so is the sender's next delta forward.
        assert!(export_delta(&receiver, &mut receiver_known, &mut stats).is_none());
        assert!(export_delta(&sender, &mut sender_known, &mut stats).is_none());

        // The receiver's cache now byte-matches the sender's.
        assert_eq!(receiver.save_snapshot(), sender.save_snapshot());
    }

    #[test]
    fn corrupt_bytes_are_rejected_and_leave_the_session_cold() {
        let sender = populated_session(2.0);
        let receiver = SweepSession::new();
        let mut known = KnownKeys::new();
        let mut stats = ExchangeStats::default();

        let mut bytes = sender.save_snapshot();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let outcome = gate_and_absorb(&receiver, &mut known, &bytes, &mut stats);
        assert_eq!(
            outcome,
            ExchangeOutcome::RejectedDecode(SnapshotRejection::Digest)
        );
        assert_eq!(stats.rejected(), 1);
        assert!(known.is_empty(), "rejected keys are not marked known");
        assert_eq!(receiver.stats().points, 0, "the session stays cold");
    }

    #[test]
    fn incoherent_snapshots_fail_the_audit_gate() {
        let sender = populated_session(2.0);
        let receiver = SweepSession::new();
        let mut known = KnownKeys::new();
        let mut stats = ExchangeStats::default();

        // Swap the values of two point entries: the container re-encodes
        // with valid digests (digests cover the bytes, not the semantics)
        // but the audit catches the key ↔ content mismatch.
        let mut snapshot = sender.backend().export();
        let keys: Vec<_> = snapshot.points.keys().copied().collect();
        assert!(keys.len() >= 2, "a real run caches more than one point");
        let (a, b) = (keys[0], keys[1]);
        let value_a = snapshot.points[&a].clone();
        let value_b = snapshot.points[&b].clone();
        snapshot.points.insert(a, value_b);
        snapshot.points.insert(b, value_a);
        let bytes = encode_snapshot(&snapshot);

        let outcome = gate_and_absorb(&receiver, &mut known, &bytes, &mut stats);
        assert!(matches!(outcome, ExchangeOutcome::RejectedAudit(_)));
        assert_eq!(stats.rejected_audit, 1);
        assert_eq!(receiver.stats().points, 0, "nothing was absorbed");
    }
}
