//! Allocation, binding and module selection: the mutable RT-level design the
//! IMPACT moves operate on.

use std::collections::{BTreeMap, HashSet};
use std::error::Error;
use std::fmt;

use impact_cdfg::{Cdfg, NodeId, OpClass, Operation, ValueRef, VarId};
use impact_modlib::{ModuleId, ModuleLibrary};

use crate::delta::{
    fingerprint_seed, fu_component, op_binding_component, reg_component, restructured_component,
    var_binding_component, DesignDelta, FuSlotChange, RegSlotChange,
};

/// Identifier of a functional-unit instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuId(usize);

impl FuId {
    /// Raw index of the unit.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// Identifier of a register instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegId(usize);

impl RegId {
    /// Raw index of the register.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One functional-unit instance.
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionalUnit {
    /// Functional class of the operations it executes.
    pub class: OpClass,
    /// Selected module-library variant.
    pub module: ModuleId,
    /// Bit width of the instance (the widest operation bound to it).
    pub width: u8,
}

/// One register instance, possibly shared by several variables.
#[derive(Clone, PartialEq, Debug)]
pub struct Register {
    /// Variables stored in this register.
    pub variables: Vec<VarId>,
    /// Bit width (the widest variable stored).
    pub width: u8,
}

/// A physical signal source feeding a multiplexer site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SignalKey {
    /// Output of a register.
    Register(RegId),
    /// Output of a functional unit.
    FuOutput(FuId),
    /// A hard-wired constant.
    Constant(i64),
}

/// Where a multiplexer tree sits in the datapath.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MuxSink {
    /// In front of data input port `port` of a functional unit.
    FuInput {
        /// The functional unit.
        fu: FuId,
        /// The data port index.
        port: u8,
    },
    /// In front of a register's data input.
    RegisterInput {
        /// The register.
        reg: RegId,
    },
}

impl fmt::Display for MuxSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuxSink::FuInput { fu, port } => write!(f, "{fu}.in{port}"),
            MuxSink::RegisterInput { reg } => write!(f, "{reg}.d"),
        }
    }
}

/// One source of a multiplexer site together with the operations whose values
/// are routed through it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignalSource {
    /// The physical source.
    pub key: SignalKey,
    /// CDFG nodes routed through this source at this site.
    pub ops: Vec<NodeId>,
}

/// A multiplexer site: a sink plus every source that can reach it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MuxSite {
    /// Where the tree sits.
    pub sink: MuxSink,
    /// The signals it selects between.
    pub sources: Vec<SignalSource>,
    /// Bit width of the routed data.
    pub width: u8,
}

impl MuxSite {
    /// Number of selectable sources (1 means no mux is needed).
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }

    /// Number of 2-to-1 multiplexers the site needs.
    pub fn mux_count(&self) -> usize {
        self.fan_in().saturating_sub(1)
    }
}

/// Errors reported by [`RtlDesign`] mutations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtlError {
    /// A functional unit or register id is unknown or was removed by an
    /// earlier sharing move.
    UnknownResource {
        /// Description of the missing resource.
        what: String,
    },
    /// Two units of different functional classes cannot be shared.
    ClassMismatch {
        /// Class of the unit kept.
        keep: OpClass,
        /// Class of the unit removed.
        remove: OpClass,
    },
    /// A module variant of the wrong class was requested for a unit.
    WrongModuleClass {
        /// Class of the unit.
        unit: OpClass,
        /// Class of the requested variant.
        variant: OpClass,
    },
    /// A split was requested that would leave one side empty.
    EmptySplit,
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnknownResource { what } => write!(f, "unknown resource: {what}"),
            RtlError::ClassMismatch { keep, remove } => {
                write!(f, "cannot share a {remove} unit into a {keep} unit")
            }
            RtlError::WrongModuleClass { unit, variant } => {
                write!(f, "cannot put a {variant} module on a {unit} unit")
            }
            RtlError::EmptySplit => {
                write!(f, "a split must move at least one operation or variable")
            }
        }
    }
}

impl Error for RtlError {}

/// The RT-level design: allocation, binding, module selection and mux-tree
/// shape annotations.
#[derive(Clone, PartialEq, Debug)]
pub struct RtlDesign {
    fus: Vec<Option<FunctionalUnit>>,
    registers: Vec<Option<Register>>,
    op_binding: Vec<Option<FuId>>,
    var_binding: Vec<RegId>,
    restructured: HashSet<MuxSink>,
}

impl RtlDesign {
    /// Builds the paper's initial architecture: "a parallel architecture, in
    /// which each node is assigned to a separate functional unit, each
    /// functional unit is chosen to be the fastest module available in the
    /// library, and each variable is assigned to a separate register".
    pub fn initial_parallel(cdfg: &Cdfg, library: &ModuleLibrary) -> Self {
        let mut fus = Vec::new();
        let mut op_binding = vec![None; cdfg.node_count()];
        for (id, node) in cdfg.nodes() {
            let class = node.operation.class();
            if class == OpClass::None {
                continue;
            }
            let module = library
                .fastest_id(class)
                .expect("library covers every functional class");
            let width = node
                .defines
                .map(|v| cdfg.variable(v).width)
                .unwrap_or(impact_modlib::REFERENCE_WIDTH);
            op_binding[id.index()] = Some(FuId(fus.len()));
            fus.push(Some(FunctionalUnit {
                class,
                module,
                width,
            }));
        }
        let mut registers = Vec::new();
        let mut var_binding = Vec::with_capacity(cdfg.variable_count());
        for (_, var) in cdfg.variables() {
            var_binding.push(RegId(registers.len()));
            registers.push(Some(Register {
                variables: vec![VarId::new(var_binding.len() - 1)],
                width: var.width,
            }));
        }
        Self {
            fus,
            registers,
            op_binding,
            var_binding,
            restructured: HashSet::new(),
        }
    }

    // ------------------------------------------------------------ accessors

    /// Active functional units as `(id, unit)` pairs.
    pub fn functional_units(&self) -> impl Iterator<Item = (FuId, &FunctionalUnit)> {
        self.fus
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (FuId(i), f)))
    }

    /// Number of active functional units.
    pub fn fu_count(&self) -> usize {
        self.functional_units().count()
    }

    /// Returns an active functional unit.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownResource`] for removed or out-of-range ids.
    pub fn functional_unit(&self, id: FuId) -> Result<&FunctionalUnit, RtlError> {
        self.fus
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or_else(|| RtlError::UnknownResource {
                what: id.to_string(),
            })
    }

    /// Active registers as `(id, register)` pairs.
    pub fn registers(&self) -> impl Iterator<Item = (RegId, &Register)> {
        self.registers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (RegId(i), r)))
    }

    /// Number of active registers.
    pub fn register_count(&self) -> usize {
        self.registers().count()
    }

    /// Returns an active register.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownResource`] for removed or out-of-range ids.
    pub fn register(&self, id: RegId) -> Result<&Register, RtlError> {
        self.registers
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or_else(|| RtlError::UnknownResource {
                what: id.to_string(),
            })
    }

    /// Functional unit executing `node`, if it needs one.
    pub fn fu_of(&self, node: NodeId) -> Option<FuId> {
        self.op_binding.get(node.index()).copied().flatten()
    }

    /// Register holding `var`.
    pub fn register_of(&self, var: VarId) -> RegId {
        self.var_binding[var.index()]
    }

    /// Operations bound to a functional unit.
    pub fn ops_on(&self, fu: FuId) -> Vec<NodeId> {
        self.ops_on_iter(fu).collect()
    }

    /// Operations bound to a functional unit, in node order, without
    /// materializing the list (cache-key hashing iterates these thousands of
    /// times per run).
    pub fn ops_on_iter(&self, fu: FuId) -> impl Iterator<Item = NodeId> + '_ {
        self.op_binding
            .iter()
            .enumerate()
            .filter(move |&(_, b)| *b == Some(fu))
            .map(|(i, _)| NodeId::new(i))
    }

    /// Active units of a given class.
    pub fn units_of_class(&self, class: OpClass) -> Vec<FuId> {
        self.functional_units()
            .filter(|(_, f)| f.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// Per-node functional-unit binding in the form the schedulers expect.
    pub fn scheduler_binding(&self) -> Vec<Option<usize>> {
        self.op_binding.iter().map(|b| b.map(|f| f.0)).collect()
    }

    /// Marks or unmarks a mux site as restructured (activity-probability
    /// ordered instead of balanced).
    pub fn set_restructured(&mut self, sink: MuxSink, restructured: bool) {
        let _ = self.set_restructured_delta(sink, restructured);
    }

    /// [`Self::set_restructured`] returning the transactional change-set
    /// (empty when the annotation already had the requested value).
    pub fn set_restructured_delta(&mut self, sink: MuxSink, restructured: bool) -> DesignDelta {
        let mut delta = self.empty_delta();
        let before = self.restructured.contains(&sink);
        if before != restructured {
            delta.restructured.push((sink, before, restructured));
        }
        self.apply_delta(&delta);
        delta
    }

    /// Returns `true` if the site was restructured.
    pub fn is_restructured(&self, sink: MuxSink) -> bool {
        self.restructured.contains(&sink)
    }

    /// All sites currently marked as restructured.
    pub fn restructured_sites(&self) -> impl Iterator<Item = MuxSink> + '_ {
        self.restructured.iter().copied()
    }

    // ------------------------------------------------------------ mutations
    //
    // Every mutation is transactional: it computes its exact change-set as a
    // [`DesignDelta`] first, applies it via [`Self::apply_delta`], and
    // returns it, so callers can patch fingerprints and evaluation contexts
    // (or revert the move) without diffing whole designs.

    /// An empty delta anchored to this design's current slot-vector lengths.
    fn empty_delta(&self) -> DesignDelta {
        DesignDelta::new(self.fus.len(), self.registers.len())
    }

    /// Restructured-mux annotations that become stale when `remove` leaves
    /// the allocation, as delta drop entries.
    fn stale_fu_sinks(&self, remove: FuId) -> Vec<(MuxSink, bool, bool)> {
        self.restructured
            .iter()
            .filter(|sink| matches!(sink, MuxSink::FuInput { fu, .. } if *fu == remove))
            .map(|&sink| (sink, true, false))
            .collect()
    }

    /// Restructured-mux annotations that become stale when `remove` leaves
    /// the register allocation.
    fn stale_register_sinks(&self, remove: RegId) -> Vec<(MuxSink, bool, bool)> {
        self.restructured
            .iter()
            .filter(|sink| matches!(sink, MuxSink::RegisterInput { reg } if *reg == remove))
            .map(|&sink| (sink, true, false))
            .collect()
    }

    /// Resource sharing: every operation of `remove` is rebound onto `keep`
    /// and `remove` disappears from the allocation.
    ///
    /// # Errors
    ///
    /// Fails if either unit is unknown, the units are the same, or their
    /// classes differ.
    pub fn share_fus(&mut self, keep: FuId, remove: FuId) -> Result<DesignDelta, RtlError> {
        if keep == remove {
            return Err(RtlError::UnknownResource {
                what: format!("sharing {keep} with itself"),
            });
        }
        let keep_unit = self.functional_unit(keep)?.clone();
        let remove_unit = self.functional_unit(remove)?.clone();
        if keep_unit.class != remove_unit.class {
            return Err(RtlError::ClassMismatch {
                keep: keep_unit.class,
                remove: remove_unit.class,
            });
        }
        let mut delta = self.empty_delta();
        for (index, binding) in self.op_binding.iter().enumerate() {
            if *binding == Some(remove) {
                delta
                    .op_bindings
                    .push((NodeId::new(index), Some(remove), Some(keep)));
            }
        }
        let widened = FunctionalUnit {
            width: keep_unit.width.max(remove_unit.width),
            ..keep_unit.clone()
        };
        delta.fus.push(FuSlotChange {
            id: keep,
            before: Some(keep_unit),
            after: Some(widened),
        });
        delta.fus.push(FuSlotChange {
            id: remove,
            before: Some(remove_unit),
            after: None,
        });
        delta.restructured = self.stale_fu_sinks(remove);
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Resource splitting: the listed operations move from `fu` onto a new
    /// unit of the same class and module variant.
    ///
    /// # Errors
    ///
    /// Fails if `fu` is unknown, the list is empty, no listed operation is
    /// bound to `fu`, or every operation of `fu` would move (which would just
    /// rename the unit).
    pub fn split_fu(
        &mut self,
        cdfg: &Cdfg,
        fu: FuId,
        ops: &[NodeId],
    ) -> Result<DesignDelta, RtlError> {
        let unit = self.functional_unit(fu)?.clone();
        let moving: Vec<NodeId> = ops
            .iter()
            .copied()
            .filter(|&n| self.fu_of(n) == Some(fu))
            .collect();
        let staying = self.ops_on(fu).len() - moving.len();
        if moving.is_empty() || staying == 0 {
            return Err(RtlError::EmptySplit);
        }
        let width = moving
            .iter()
            .map(|&n| {
                cdfg.node(n)
                    .defines
                    .map(|v| cdfg.variable(v).width)
                    .unwrap_or(unit.width)
            })
            .max()
            .unwrap_or(unit.width);
        let mut delta = self.empty_delta();
        let new_id = FuId(self.fus.len());
        delta.fus.push(FuSlotChange {
            id: new_id,
            before: None,
            after: Some(FunctionalUnit {
                class: unit.class,
                module: unit.module,
                width,
            }),
        });
        for node in moving {
            delta.op_bindings.push((node, Some(fu), Some(new_id)));
        }
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Module substitution: `fu` switches to a different library variant of
    /// the same class.
    ///
    /// # Errors
    ///
    /// Fails if the unit is unknown or the variant implements another class.
    pub fn substitute_module(
        &mut self,
        library: &ModuleLibrary,
        fu: FuId,
        module: ModuleId,
    ) -> Result<DesignDelta, RtlError> {
        let unit = self.functional_unit(fu)?.clone();
        let variant_class = library.variant(module).class;
        if unit.class != variant_class {
            return Err(RtlError::WrongModuleClass {
                unit: unit.class,
                variant: variant_class,
            });
        }
        let mut delta = self.empty_delta();
        if unit.module != module {
            let substituted = FunctionalUnit {
                module,
                ..unit.clone()
            };
            delta.fus.push(FuSlotChange {
                id: fu,
                before: Some(unit),
                after: Some(substituted),
            });
        }
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Register sharing: the variables of `remove` move into `keep`.
    ///
    /// # Errors
    ///
    /// Fails if either register is unknown or they are the same register.
    pub fn share_registers(&mut self, keep: RegId, remove: RegId) -> Result<DesignDelta, RtlError> {
        if keep == remove {
            return Err(RtlError::UnknownResource {
                what: format!("sharing {keep} with itself"),
            });
        }
        let removed = self.register(remove)?.clone();
        let kept = self.register(keep)?.clone();
        let mut delta = self.empty_delta();
        for (index, binding) in self.var_binding.iter().enumerate() {
            if *binding == remove {
                delta.var_bindings.push((VarId::new(index), remove, keep));
            }
        }
        let mut merged = kept.clone();
        merged.variables.extend(removed.variables.iter().copied());
        merged.width = merged.width.max(removed.width);
        delta.registers.push(RegSlotChange {
            id: keep,
            before: Some(kept),
            after: Some(merged),
        });
        delta.registers.push(RegSlotChange {
            id: remove,
            before: Some(removed),
            after: None,
        });
        delta.restructured = self.stale_register_sinks(remove);
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Register splitting: the listed variables move out of `reg` into a new
    /// register.
    ///
    /// # Errors
    ///
    /// Fails if `reg` is unknown, no listed variable lives in it, or all of
    /// them would move.
    pub fn split_register(
        &mut self,
        cdfg: &Cdfg,
        reg: RegId,
        vars: &[VarId],
    ) -> Result<DesignDelta, RtlError> {
        let current = self.register(reg)?.clone();
        let moving: Vec<VarId> = vars
            .iter()
            .copied()
            .filter(|&v| self.register_of(v) == reg)
            .collect();
        if moving.is_empty() || moving.len() == current.variables.len() {
            return Err(RtlError::EmptySplit);
        }
        let width = moving
            .iter()
            .map(|&v| cdfg.variable(v).width)
            .max()
            .unwrap_or(current.width);
        let mut delta = self.empty_delta();
        let new_id = RegId(self.registers.len());
        for &v in &moving {
            delta.var_bindings.push((v, reg, new_id));
        }
        let mut remaining = current.clone();
        remaining.variables.retain(|v| !moving.contains(v));
        delta.registers.push(RegSlotChange {
            id: reg,
            before: Some(current),
            after: Some(remaining),
        });
        delta.registers.push(RegSlotChange {
            id: new_id,
            before: None,
            after: Some(Register {
                variables: moving,
                width,
            }),
        });
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Replays a delta onto a design in the delta's pre-move state: slot
    /// vectors grow as needed and every touched entry takes its `after`
    /// value. Applying a delta produced by one of the mutation methods above
    /// reproduces that mutation exactly.
    pub fn apply_delta(&mut self, delta: &DesignDelta) {
        #[cfg(debug_assertions)]
        let patched = delta.patched_fingerprint(self.fingerprint());
        for change in &delta.fus {
            if self.fus.len() <= change.id.0 {
                self.fus.resize(change.id.0 + 1, None);
            }
            self.fus[change.id.0] = change.after.clone();
        }
        for change in &delta.registers {
            if self.registers.len() <= change.id.0 {
                self.registers.resize(change.id.0 + 1, None);
            }
            self.registers[change.id.0] = change.after.clone();
        }
        for &(node, _, after) in &delta.op_bindings {
            self.op_binding[node.index()] = after;
        }
        for &(var, _, after) in &delta.var_bindings {
            self.var_binding[var.index()] = after;
        }
        for &(sink, _, after) in &delta.restructured {
            if after {
                self.restructured.insert(sink);
            } else {
                self.restructured.remove(&sink);
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.fingerprint(),
            patched,
            "apply_delta: the XOR-patched fingerprint must equal a recompute of the mutated design"
        );
    }

    /// Undoes a delta: every touched entry takes its `before` value and slot
    /// vectors are truncated back to their pre-move lengths, restoring the
    /// *exact* pre-move design (field-for-field equality, not just
    /// structural equivalence).
    pub fn revert_delta(&mut self, delta: &DesignDelta) {
        // The XOR patch is an involution, so patching the post-move
        // fingerprint yields the pre-move one the revert must restore.
        #[cfg(debug_assertions)]
        let pre_move = delta.patched_fingerprint(self.fingerprint());
        debug_assert!(
            self.fus.len() >= delta.fu_slots_before
                && self.registers.len() >= delta.reg_slots_before,
            "revert_delta: the design must be in the delta's post-move state"
        );
        for change in &delta.fus {
            if change.id.0 < delta.fu_slots_before {
                self.fus[change.id.0] = change.before.clone();
            }
        }
        self.fus.truncate(delta.fu_slots_before);
        for change in &delta.registers {
            if change.id.0 < delta.reg_slots_before {
                self.registers[change.id.0] = change.before.clone();
            }
        }
        self.registers.truncate(delta.reg_slots_before);
        for &(node, before, _) in &delta.op_bindings {
            self.op_binding[node.index()] = before;
        }
        for &(var, before, _) in &delta.var_bindings {
            self.var_binding[var.index()] = before;
        }
        for &(sink, before, _) in &delta.restructured {
            if before {
                self.restructured.insert(sink);
            } else {
                self.restructured.remove(&sink);
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.fingerprint(),
            pre_move,
            "revert_delta: reverting must restore the exact pre-move fingerprint"
        );
    }

    // ------------------------------------------------------------ analyses

    /// Structural fingerprint of the design: a deterministic digest of the
    /// allocation, binding, module selection and mux-shape annotations. Two
    /// designs with equal fingerprints evaluate identically, which is what
    /// lets the engine memoize scheduling and power results by design.
    ///
    /// The digest is the XOR of one independent component digest per
    /// occupied slot, binding entry and annotation (each embedding its
    /// position and a section tag), which is what makes it *incrementally
    /// updatable*: [`Self::fingerprint_update`] patches a parent's digest
    /// from a [`DesignDelta`] instead of re-hashing the whole design.
    pub fn fingerprint(&self) -> crate::DesignFingerprint {
        let mut bits = fingerprint_seed();
        for (index, slot) in self.fus.iter().enumerate() {
            if let Some(unit) = slot {
                bits ^= fu_component(index, unit);
            }
        }
        for (index, slot) in self.registers.iter().enumerate() {
            if let Some(reg) = slot {
                bits ^= reg_component(index, reg);
            }
        }
        for (index, binding) in self.op_binding.iter().enumerate() {
            bits ^= op_binding_component(index, *binding);
        }
        for (index, &reg) in self.var_binding.iter().enumerate() {
            bits ^= var_binding_component(index, reg);
        }
        for &sink in &self.restructured {
            bits ^= restructured_component(sink);
        }
        crate::DesignFingerprint::from_u128(bits)
    }

    /// Patches a parent design's fingerprint into the fingerprint of the
    /// design obtained by applying `delta` — only the touched components are
    /// hashed. Bit-identical to [`Self::fingerprint`] on the mutated design.
    pub fn fingerprint_update(
        base: crate::DesignFingerprint,
        delta: &DesignDelta,
    ) -> crate::DesignFingerprint {
        delta.patched_fingerprint(base)
    }

    /// Per-node module delays (no interconnect), in nanoseconds, at the
    /// reference supply. Structural nodes cost one mux delay, `EndLoop` is
    /// free.
    pub fn node_module_delays(&self, cdfg: &Cdfg, library: &ModuleLibrary) -> Vec<f64> {
        cdfg.nodes()
            .map(|(id, _)| self.node_module_delay(cdfg, library, id))
            .collect()
    }

    /// Module delay of one node (the per-node piece of
    /// [`Self::node_module_delays`], used by delta-patched evaluation to
    /// refresh only the nodes a move touched).
    pub fn node_module_delay(&self, cdfg: &Cdfg, library: &ModuleLibrary, node: NodeId) -> f64 {
        match self.fu_of(node) {
            Some(fu) => {
                let unit = self
                    .functional_unit(fu)
                    .expect("binding references active units");
                library.variant(unit.module).delay_for_width(unit.width)
            }
            None => {
                if cdfg.node(node).operation == Operation::EndLoop {
                    0.0
                } else {
                    library.mux2().delay_ns
                }
            }
        }
    }

    /// Enumerates every multiplexer site of the datapath: one per
    /// functional-unit data input port and one per register written from more
    /// than one distinct source.
    pub fn mux_sites(&self, cdfg: &Cdfg) -> Vec<MuxSite> {
        let mut sites = Vec::new();

        // Group the bindings once: the per-unit (and per-register) scans over
        // the whole design were quadratic, and site enumeration runs once per
        // evaluated candidate. Grouping in node order reproduces the scans'
        // enumeration order exactly.
        let mut ops_per_fu: Vec<Vec<NodeId>> = vec![Vec::new(); self.fus.len()];
        for (index, binding) in self.op_binding.iter().enumerate() {
            if let Some(fu) = binding {
                ops_per_fu[fu.index()].push(NodeId::new(index));
            }
        }
        let mut writers_per_reg: Vec<Vec<NodeId>> = vec![Vec::new(); self.registers.len()];
        for (node_id, node) in cdfg.nodes() {
            if let Some(defined) = node.defines {
                writers_per_reg[self.register_of(defined).index()].push(node_id);
            }
        }

        // Functional-unit input ports.
        for (fu_id, unit) in self.functional_units() {
            let ops = &ops_per_fu[fu_id.index()];
            let max_ports = ops
                .iter()
                .map(|&n| cdfg.node(n).operation.arity())
                .max()
                .unwrap_or(0);
            for port in 0..max_ports {
                let mut by_key: BTreeMap<SignalKey, Vec<NodeId>> = BTreeMap::new();
                for &op in ops {
                    let node = cdfg.node(op);
                    let Some(&edge_id) = node.inputs.get(port) else {
                        continue;
                    };
                    let key = self.signal_key(cdfg, cdfg.edge(edge_id).value);
                    by_key.entry(key).or_default().push(op);
                }
                if by_key.is_empty() {
                    continue;
                }
                sites.push(MuxSite {
                    sink: MuxSink::FuInput {
                        fu: fu_id,
                        port: port as u8,
                    },
                    sources: by_key
                        .into_iter()
                        .map(|(key, ops)| SignalSource { key, ops })
                        .collect(),
                    width: unit.width,
                });
            }
        }

        // Register inputs.
        for (reg_id, reg) in self.registers() {
            let mut by_key: BTreeMap<SignalKey, Vec<NodeId>> = BTreeMap::new();
            for &node_id in &writers_per_reg[reg_id.index()] {
                let node = cdfg.node(node_id);
                match self.fu_of(node_id) {
                    Some(fu) => {
                        by_key
                            .entry(SignalKey::FuOutput(fu))
                            .or_default()
                            .push(node_id);
                    }
                    None => {
                        // Structural writers route existing signals: take the
                        // source(s) of their data inputs.
                        for &edge in &node.inputs {
                            let key = self.signal_key(cdfg, cdfg.edge(edge).value);
                            by_key.entry(key).or_default().push(node_id);
                        }
                    }
                }
            }
            if by_key.len() < 2 {
                continue;
            }
            sites.push(MuxSite {
                sink: MuxSink::RegisterInput { reg: reg_id },
                sources: by_key
                    .into_iter()
                    .map(|(key, ops)| SignalSource { key, ops })
                    .collect(),
                width: reg.width,
            });
        }
        sites
    }

    fn signal_key(&self, _cdfg: &Cdfg, value: ValueRef) -> SignalKey {
        match value {
            ValueRef::Const(c) => SignalKey::Constant(c),
            ValueRef::Var(v) => SignalKey::Register(self.register_of(v)),
        }
    }

    /// Datapath area in equivalent gates: functional units, registers and
    /// 2-to-1 multiplexers (the controller is modelled separately, on top of
    /// the STG).
    pub fn datapath_area(&self, cdfg: &Cdfg, library: &ModuleLibrary) -> f64 {
        self.datapath_area_with_sites(library, &self.mux_sites(cdfg))
    }

    /// [`Self::datapath_area`] over a caller-provided mux-site list, so
    /// evaluation paths that already enumerated the sites (context building,
    /// delta patching) do not enumerate them again. Sites with fan-in below
    /// two contribute zero mux area, so passing a list filtered to fan-in ≥ 2
    /// yields a bit-identical total.
    pub fn datapath_area_with_sites(&self, library: &ModuleLibrary, sites: &[MuxSite]) -> f64 {
        let fu_area: f64 = self
            .functional_units()
            .map(|(_, f)| library.variant(f.module).area_for_width(f.width))
            .sum();
        let reg_area: f64 = self
            .registers()
            .map(|(_, r)| library.register().area_for_width(r.width))
            .sum();
        let mux_area: f64 = sites
            .iter()
            .map(|site| site.mux_count() as f64 * library.mux2().area_for_width(site.width))
            .sum();
        fu_area + reg_area + mux_area
    }
}

// ---------------------------------------------------------------- snapshot codec
//
// Persistent cache snapshots serialize whole designs (inside cached
// `DesignPoint`s). Composites carry an explicit one-byte version tag — bump
// it when a layout changes so old snapshots fail decoding (degrading to a
// cache miss) instead of being misinterpreted. Identifier wrappers encode as
// bare indices; the enclosing composite's tag versions them.

use impact_codec::{Decode, DecodeError, Decoder, Encode, Encoder};

impl Encode for FuId {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.0);
    }
}

impl Decode for FuId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self(r.take_usize()?))
    }
}

impl Encode for RegId {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.0);
    }
}

impl Decode for RegId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self(r.take_usize()?))
    }
}

/// Version tag of [`FunctionalUnit`]'s wire layout.
const TAG_FUNCTIONAL_UNIT: u8 = 0x12;
/// Version tag of [`Register`]'s wire layout.
const TAG_REGISTER: u8 = 0x13;
/// Version tag of [`SignalKey`]'s wire layout.
const TAG_SIGNAL_KEY: u8 = 0x14;
/// Version tag of [`MuxSink`]'s wire layout.
const TAG_MUX_SINK: u8 = 0x15;
/// Version tag of [`SignalSource`]'s wire layout.
const TAG_SIGNAL_SOURCE: u8 = 0x16;
/// Version tag of [`MuxSite`]'s wire layout.
const TAG_MUX_SITE: u8 = 0x17;
/// Version tag of [`RtlDesign`]'s wire layout.
const TAG_RTL_DESIGN: u8 = 0x18;

impl Encode for FunctionalUnit {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_FUNCTIONAL_UNIT);
        self.class.encode(w);
        self.module.encode(w);
        w.put_u8(self.width);
    }
}

impl Decode for FunctionalUnit {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_FUNCTIONAL_UNIT)?;
        Ok(Self {
            class: Decode::decode(r)?,
            module: Decode::decode(r)?,
            width: r.take_u8()?,
        })
    }
}

impl Encode for Register {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_REGISTER);
        self.variables.encode(w);
        w.put_u8(self.width);
    }
}

impl Decode for Register {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_REGISTER)?;
        Ok(Self {
            variables: Decode::decode(r)?,
            width: r.take_u8()?,
        })
    }
}

impl Encode for SignalKey {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SIGNAL_KEY);
        match self {
            SignalKey::Register(reg) => {
                w.put_u8(0);
                reg.encode(w);
            }
            SignalKey::FuOutput(fu) => {
                w.put_u8(1);
                fu.encode(w);
            }
            SignalKey::Constant(value) => {
                w.put_u8(2);
                w.put_i64(*value);
            }
        }
    }
}

impl Decode for SignalKey {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SIGNAL_KEY)?;
        Ok(match r.take_u8()? {
            0 => SignalKey::Register(Decode::decode(r)?),
            1 => SignalKey::FuOutput(Decode::decode(r)?),
            2 => SignalKey::Constant(r.take_i64()?),
            _ => return Err(DecodeError::Invalid("unknown SignalKey discriminant")),
        })
    }
}

impl Encode for MuxSink {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_MUX_SINK);
        match self {
            MuxSink::FuInput { fu, port } => {
                w.put_u8(0);
                fu.encode(w);
                w.put_u8(*port);
            }
            MuxSink::RegisterInput { reg } => {
                w.put_u8(1);
                reg.encode(w);
            }
        }
    }
}

impl Decode for MuxSink {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_MUX_SINK)?;
        Ok(match r.take_u8()? {
            0 => MuxSink::FuInput {
                fu: Decode::decode(r)?,
                port: r.take_u8()?,
            },
            1 => MuxSink::RegisterInput {
                reg: Decode::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("unknown MuxSink discriminant")),
        })
    }
}

impl Encode for SignalSource {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_SIGNAL_SOURCE);
        self.key.encode(w);
        self.ops.encode(w);
    }
}

impl Decode for SignalSource {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_SIGNAL_SOURCE)?;
        Ok(Self {
            key: Decode::decode(r)?,
            ops: Decode::decode(r)?,
        })
    }
}

impl Encode for MuxSite {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_MUX_SITE);
        self.sink.encode(w);
        self.sources.encode(w);
        w.put_u8(self.width);
    }
}

impl Decode for MuxSite {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_MUX_SITE)?;
        Ok(Self {
            sink: Decode::decode(r)?,
            sources: Decode::decode(r)?,
            width: r.take_u8()?,
        })
    }
}

impl Encode for RtlDesign {
    fn encode(&self, w: &mut Encoder) {
        w.put_tag(TAG_RTL_DESIGN);
        self.fus.encode(w);
        self.registers.encode(w);
        self.op_binding.encode(w);
        self.var_binding.encode(w);
        // The restructured set iterates in hash order; sort for a
        // deterministic encoding (same design -> same bytes).
        let mut restructured: Vec<MuxSink> = self.restructured.iter().copied().collect();
        restructured.sort_unstable();
        restructured.encode(w);
    }
}

impl Decode for RtlDesign {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.expect_tag(TAG_RTL_DESIGN)?;
        Ok(Self {
            fus: Decode::decode(r)?,
            registers: Decode::decode(r)?,
            op_binding: Decode::decode(r)?,
            var_binding: Decode::decode(r)?,
            restructured: Vec::<MuxSink>::decode(r)?.into_iter().collect(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_hdl::compile;

    fn gcd() -> Cdfg {
        compile(
            "design gcd { input a: 8, b: 8; output r: 8; var x: 8; var y: 8;
               x = a; y = b;
               while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
               r = x; }",
        )
        .unwrap()
    }

    fn adders(design: &RtlDesign) -> Vec<FuId> {
        design.units_of_class(OpClass::AddSub)
    }

    #[test]
    fn initial_parallel_gives_one_unit_per_operation_and_register_per_variable() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let fu_ops = cdfg
            .nodes()
            .filter(|(_, n)| n.operation.needs_functional_unit())
            .count();
        assert_eq!(design.fu_count(), fu_ops);
        assert_eq!(design.register_count(), cdfg.variable_count());
        // Every unit uses the fastest variant for its class.
        for (_, unit) in design.functional_units() {
            assert_eq!(
                lib.variant(unit.module).name,
                lib.fastest(unit.class).unwrap().name
            );
        }
    }

    #[test]
    fn sharing_units_rebinds_operations_and_shrinks_the_allocation() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adds = adders(&design);
        assert!(adds.len() >= 2, "GCD has two subtractions");
        let before_area = design.datapath_area(&cdfg, &lib);
        design.share_fus(adds[0], adds[1]).unwrap();
        assert_eq!(
            design.fu_count(),
            cdfg.nodes()
                .filter(|(_, n)| n.operation.needs_functional_unit())
                .count()
                - 1
        );
        assert_eq!(design.ops_on(adds[0]).len(), 2);
        assert!(design.functional_unit(adds[1]).is_err());
        let after_area = design.datapath_area(&cdfg, &lib);
        assert!(after_area < before_area, "one fewer adder means less area");
    }

    #[test]
    fn sharing_different_classes_is_rejected() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let add = adders(&design)[0];
        let cmp = design.units_of_class(OpClass::Compare)[0];
        assert!(matches!(
            design.share_fus(add, cmp),
            Err(RtlError::ClassMismatch { .. })
        ));
        assert!(matches!(
            design.share_fus(add, add),
            Err(RtlError::UnknownResource { .. })
        ));
    }

    #[test]
    fn splitting_reverses_sharing() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adds = adders(&design);
        design.share_fus(adds[0], adds[1]).unwrap();
        let shared_ops = design.ops_on(adds[0]);
        assert_eq!(shared_ops.len(), 2);
        let delta = design.split_fu(&cdfg, adds[0], &shared_ops[1..]).unwrap();
        let new_fu = delta.created_fu().expect("the split created a unit");
        assert_eq!(design.ops_on(adds[0]).len(), 1);
        assert_eq!(design.ops_on(new_fu).len(), 1);
        assert!(matches!(
            design.split_fu(&cdfg, adds[0], &[]),
            Err(RtlError::EmptySplit)
        ));
    }

    #[test]
    fn module_substitution_swaps_variants_of_the_same_class_only() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let add = adders(&design)[0];
        let ripple = lib.variant_by_name("ripple_adder").unwrap();
        design.substitute_module(&lib, add, ripple).unwrap();
        assert_eq!(design.functional_unit(add).unwrap().module, ripple);
        let wallace = lib.variant_by_name("wallace_multiplier").unwrap();
        assert!(matches!(
            design.substitute_module(&lib, add, wallace),
            Err(RtlError::WrongModuleClass { .. })
        ));
    }

    #[test]
    fn register_sharing_and_splitting_track_variables() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let x = cdfg.variable_by_name("x").unwrap();
        let y = cdfg.variable_by_name("y").unwrap();
        let rx = design.register_of(x);
        let ry = design.register_of(y);
        design.share_registers(rx, ry).unwrap();
        assert_eq!(design.register_of(y), rx);
        assert_eq!(design.register(rx).unwrap().variables.len(), 2);
        assert!(design.register(ry).is_err());
        let delta = design.split_register(&cdfg, rx, &[y]).unwrap();
        let new_reg = delta
            .created_register()
            .expect("the split created a register");
        assert_eq!(design.register_of(y), new_reg);
        assert_eq!(design.register(rx).unwrap().variables, vec![x]);
    }

    #[test]
    fn sharing_units_increases_mux_fan_in() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adds = adders(&design);
        let fan_in_before: usize = design
            .mux_sites(&cdfg)
            .iter()
            .filter(|s| matches!(s.sink, MuxSink::FuInput { fu, .. } if fu == adds[0]))
            .map(MuxSite::fan_in)
            .sum();
        design.share_fus(adds[0], adds[1]).unwrap();
        let fan_in_after: usize = design
            .mux_sites(&cdfg)
            .iter()
            .filter(|s| matches!(s.sink, MuxSink::FuInput { fu, .. } if fu == adds[0]))
            .map(MuxSite::fan_in)
            .sum();
        assert!(
            fan_in_after > fan_in_before,
            "sharing routes more signals into the kept unit ({fan_in_before} -> {fan_in_after})"
        );
    }

    #[test]
    fn register_mux_sites_appear_for_multiply_written_registers() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        // x is written by the initial move, the subtraction and the Sel, so
        // its register needs a mux.
        let x = cdfg.variable_by_name("x").unwrap();
        let rx = design.register_of(x);
        let sites = design.mux_sites(&cdfg);
        assert!(sites
            .iter()
            .any(|s| s.sink == MuxSink::RegisterInput { reg: rx } && s.fan_in() >= 2));
    }

    #[test]
    fn restructure_annotations_follow_their_sites() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let adds = adders(&design);
        let sink = MuxSink::FuInput {
            fu: adds[1],
            port: 0,
        };
        design.set_restructured(sink, true);
        assert!(design.is_restructured(sink));
        // Sharing away the unit drops the stale annotation.
        design.share_fus(adds[0], adds[1]).unwrap();
        assert!(!design.is_restructured(sink));
        assert_eq!(design.restructured_sites().count(), 0);
    }

    #[test]
    fn scheduler_binding_matches_fu_assignment() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        let binding = design.scheduler_binding();
        for (id, node) in cdfg.nodes() {
            assert_eq!(
                binding[id.index()].is_some(),
                node.operation.needs_functional_unit()
            );
        }
    }

    #[test]
    fn fingerprints_identify_structural_identity() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let design = RtlDesign::initial_parallel(&cdfg, &lib);
        // Identical construction gives identical fingerprints.
        assert_eq!(
            design.fingerprint(),
            RtlDesign::initial_parallel(&cdfg, &lib).fingerprint()
        );
        // Every mutation kind changes the digest.
        let base = design.fingerprint();
        let mut shared = design.clone();
        let adds = adders(&shared);
        shared.share_fus(adds[0], adds[1]).unwrap();
        assert_ne!(shared.fingerprint(), base);
        let mut substituted = design.clone();
        substituted
            .substitute_module(&lib, adds[0], lib.variant_by_name("ripple_adder").unwrap())
            .unwrap();
        assert_ne!(substituted.fingerprint(), base);
        let mut restructured = design.clone();
        restructured.set_restructured(
            MuxSink::FuInput {
                fu: adds[0],
                port: 0,
            },
            true,
        );
        assert_ne!(restructured.fingerprint(), base);
        // Undoing the annotation restores the original digest.
        restructured.set_restructured(
            MuxSink::FuInput {
                fu: adds[0],
                port: 0,
            },
            false,
        );
        assert_eq!(restructured.fingerprint(), base);
    }

    /// Every mutation kind applied once, as `(description, delta)` pairs,
    /// leaving `design` in the final state.
    fn apply_all_move_kinds(
        cdfg: &Cdfg,
        design: &mut RtlDesign,
    ) -> Vec<(&'static str, super::DesignDelta)> {
        let lib = ModuleLibrary::standard();
        let mut deltas = Vec::new();
        let adds = adders(design);
        deltas.push(("share_fus", design.share_fus(adds[0], adds[1]).unwrap()));
        deltas.push((
            "substitute_module",
            design
                .substitute_module(&lib, adds[0], lib.variant_by_name("ripple_adder").unwrap())
                .unwrap(),
        ));
        let sink = MuxSink::FuInput {
            fu: adds[0],
            port: 0,
        };
        deltas.push(("restructure", design.set_restructured_delta(sink, true)));
        let x = cdfg.variable_by_name("x").unwrap();
        let y = cdfg.variable_by_name("y").unwrap();
        let rx = design.register_of(x);
        let ry = design.register_of(y);
        deltas.push(("share_registers", design.share_registers(rx, ry).unwrap()));
        deltas.push((
            "split_register",
            design.split_register(cdfg, rx, &[y]).unwrap(),
        ));
        let shared_ops = design.ops_on(adds[0]);
        deltas.push((
            "split_fu",
            design.split_fu(cdfg, adds[0], &shared_ops[1..]).unwrap(),
        ));
        deltas
    }

    #[test]
    fn deltas_revert_to_the_exact_pre_move_design() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let original = design.clone();
        let deltas = apply_all_move_kinds(&cdfg, &mut design);
        assert_ne!(design, original);
        for (kind, delta) in deltas.iter().rev() {
            assert!(!delta.is_empty(), "{kind} must record its changes");
            design.revert_delta(delta);
        }
        assert_eq!(design, original, "reverting in reverse order is exact");
        assert_eq!(design.fingerprint(), original.fingerprint());
    }

    #[test]
    fn applying_a_delta_reproduces_the_mutation() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let twin = design.clone();
        let deltas = apply_all_move_kinds(&cdfg, &mut design);
        let mut replayed = twin;
        for (_, delta) in &deltas {
            replayed.apply_delta(delta);
        }
        assert_eq!(replayed, design);
    }

    #[test]
    fn incremental_fingerprints_match_full_recomputation() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let mut running = design.fingerprint();
        let before = design.clone();
        let deltas = apply_all_move_kinds(&cdfg, &mut design);
        for (kind, delta) in &deltas {
            running = RtlDesign::fingerprint_update(running, delta);
            let _ = kind;
        }
        assert_eq!(running, design.fingerprint());
        // Reverting patches backwards too (XOR is self-inverse).
        for (_, delta) in deltas.iter().rev() {
            design.revert_delta(delta);
            // Recompute via patching the other way: patch with a delta whose
            // roles are swapped is equivalent to XOR-ing the same components,
            // so patching twice with the same delta round-trips.
            running = RtlDesign::fingerprint_update(running, delta);
        }
        assert_eq!(design, before);
        assert_eq!(running, before.fingerprint());
    }

    #[test]
    fn node_module_delays_reflect_module_choice() {
        let cdfg = gcd();
        let lib = ModuleLibrary::standard();
        let mut design = RtlDesign::initial_parallel(&cdfg, &lib);
        let add = adders(&design)[0];
        let fast = design.node_module_delays(&cdfg, &lib);
        design
            .substitute_module(&lib, add, lib.variant_by_name("ripple_adder").unwrap())
            .unwrap();
        let slow = design.node_module_delays(&cdfg, &lib);
        let op = design.ops_on(add)[0];
        assert!(slow[op.index()] > fast[op.index()]);
    }
}
