//! RT-level architecture model: allocation, binding, multiplexer trees and
//! the datapath area model.
//!
//! An RT-level design in IMPACT consists of
//!
//! * **functional units** (instances of module-library variants) executing the
//!   CDFG operations bound to them,
//! * **registers** holding the design's variables (several variables may share
//!   one register),
//! * **multiplexer trees** in front of every functional-unit input port and
//!   every register that is written from more than one source — the
//!   interconnect whose power the paper's mux-restructuring move attacks,
//! * a **controller** derived from the STG (modelled in `impact-power`).
//!
//! The [`RtlDesign`] type stores allocation, binding and module selection and
//! offers the mutations used by the IMPACT moves (sharing/splitting of units
//! and registers, module substitution, mux restructuring). [`MuxTree`]
//! implements the switching-activity equations (1)–(7) of the paper together
//! with the balanced and Huffman (activity-probability ordered) constructions.
//!
//! # Example: the paper's mux example (Section 3.2.1)
//!
//! ```
//! use impact_rtl::{MuxSource, MuxTree};
//!
//! let sources = vec![
//!     MuxSource::new("e1", 0.6, 0.7),
//!     MuxSource::new("e2", 0.1, 0.2),
//!     MuxSource::new("e3", 0.2, 0.05),
//!     MuxSource::new("e4", 0.1, 0.05),
//! ];
//! let balanced = MuxTree::balanced(sources.clone());
//! let restructured = MuxTree::huffman(sources);
//! assert!((balanced.switching_activity() - 1.09).abs() < 0.01);
//! assert!((restructured.switching_activity() - 0.72).abs() < 0.01);
//! ```

mod delta;
mod design;
mod mux;

pub use delta::DesignDelta;
pub use design::{
    FuId, FunctionalUnit, MuxSink, MuxSite, RegId, Register, RtlDesign, RtlError, SignalKey,
    SignalSource,
};
/// A design's structural digest is the shared 128-bit content digest of
/// [`impact_cdfg::fingerprint`]; the hasher is re-exported alongside it so
/// downstream crates need only one import path.
pub use impact_cdfg::fingerprint::{Digest128 as DesignFingerprint, FingerprintHasher};
pub use mux::{MuxSource, MuxTree};
