//! Multiplexer trees and their switching activity.
//!
//! An n-to-1 multiplexer is represented as a tree of 2-to-1 multiplexers
//! (Figure 11 of the paper). Every input signal `i` carries a transition
//! activity `a_i` and a probability of propagation `p_i`; the switching
//! activity of an individual 2-to-1 mux is the probability-normalized sum of
//! the activity-probability products of the leaves beneath it (Equations
//! (2)–(6)), and the tree activity is the sum over all muxes (Equation (7)).
//! [`MuxTree::huffman`] implements the `RESTRUCTURE_MUX` heuristic of
//! Figure 12: signals are ranked by increasing `a·p` and combined
//! Huffman-style so high-activity, high-probability signals sit close to the
//! output.

/// One signal entering a multiplexer tree.
#[derive(Clone, PartialEq, Debug)]
pub struct MuxSource {
    /// Human-readable name of the signal (register or constant).
    pub label: String,
    /// Transition activity `a_i` of the signal (mean normalized Hamming
    /// distance between consecutive values).
    pub activity: f64,
    /// Probability of propagation `p_i`: how often this signal is the one
    /// selected at the tree output.
    pub probability: f64,
}

impl MuxSource {
    /// Creates a source description.
    pub fn new(label: &str, activity: f64, probability: f64) -> Self {
        Self {
            label: label.to_string(),
            activity,
            probability,
        }
    }

    /// The activity-probability product used for ordering.
    pub fn ap(&self) -> f64 {
        self.activity * self.probability
    }
}

/// Binary tree of 2-to-1 multiplexers over a set of sources.
#[derive(Clone, PartialEq, Debug)]
pub struct MuxTree {
    sources: Vec<MuxSource>,
    root: Option<Node>,
}

#[derive(Clone, PartialEq, Debug)]
enum Node {
    Leaf(usize),
    Mux(Box<Node>, Box<Node>),
}

impl Node {
    /// Sum of `a·p` and sum of `p` over the leaves below this node.
    fn sums(&self, sources: &[MuxSource]) -> (f64, f64) {
        match self {
            Node::Leaf(i) => (sources[*i].ap(), sources[*i].probability),
            Node::Mux(l, r) => {
                let (lap, lp) = l.sums(sources);
                let (rap, rp) = r.sums(sources);
                (lap + rap, lp + rp)
            }
        }
    }

    /// Total switching activity of the muxes in this subtree (Equation (7)).
    fn activity(&self, sources: &[MuxSource]) -> f64 {
        match self {
            Node::Leaf(_) => 0.0,
            Node::Mux(l, r) => {
                let (ap, p) = self.sums(sources);
                let own = if p > 0.0 { ap / p } else { 0.0 };
                own + l.activity(sources) + r.activity(sources)
            }
        }
    }

    fn depth_of(&self, index: usize, depth: usize) -> Option<usize> {
        match self {
            Node::Leaf(i) => (*i == index).then_some(depth),
            Node::Mux(l, r) => l
                .depth_of(index, depth + 1)
                .or_else(|| r.depth_of(index, depth + 1)),
        }
    }

    fn max_depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Mux(l, r) => 1 + l.max_depth().max(r.max_depth()),
        }
    }

    fn mux_count(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Mux(l, r) => 1 + l.mux_count() + r.mux_count(),
        }
    }
}

impl MuxTree {
    /// Builds a balanced tree over the sources in the given order (the
    /// default structure before restructuring).
    pub fn balanced(sources: Vec<MuxSource>) -> Self {
        let root = if sources.is_empty() {
            None
        } else {
            let mut level: Vec<Node> = (0..sources.len()).map(Node::Leaf).collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut iter = level.into_iter();
                while let Some(left) = iter.next() {
                    match iter.next() {
                        Some(right) => next.push(Node::Mux(Box::new(left), Box::new(right))),
                        None => next.push(left),
                    }
                }
                level = next;
            }
            level.pop()
        };
        Self { sources, root }
    }

    /// Builds the restructured tree of the `RESTRUCTURE_MUX` /
    /// `HUFFMAN_CONSTRUCT` heuristic (Figure 12): signals are ordered by
    /// increasing activity-probability product and repeatedly combined two at
    /// a time; the combined signal's `a·p` is the subtree's accumulated mux
    /// activity weighted by its total probability.
    pub fn huffman(sources: Vec<MuxSource>) -> Self {
        if sources.is_empty() {
            return Self {
                sources,
                root: None,
            };
        }
        // Work list of (node, ordering-ap, total probability).
        struct Item {
            node: Node,
            ap: f64,
            probability: f64,
        }
        let mut items: Vec<Item> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| Item {
                node: Node::Leaf(i),
                ap: s.ap(),
                probability: s.probability,
            })
            .collect();
        while items.len() > 1 {
            items.sort_by(|a, b| a.ap.partial_cmp(&b.ap).expect("ap products are finite"));
            let first = items.remove(0);
            let second = items.remove(0);
            let node = Node::Mux(Box::new(first.node), Box::new(second.node));
            let probability = first.probability + second.probability;
            // Accumulated activity of every mux in the new subtree.
            let subtree_activity = node.activity(&sources);
            items.push(Item {
                node,
                ap: probability * subtree_activity,
                probability,
            });
        }
        let root = items.pop().map(|item| item.node);
        Self { sources, root }
    }

    /// The sources of the tree, in their original order.
    pub fn sources(&self) -> &[MuxSource] {
        &self.sources
    }

    /// Number of input signals.
    pub fn input_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of 2-to-1 multiplexers in the tree (`n − 1`).
    pub fn mux_count(&self) -> usize {
        self.root.as_ref().map(Node::mux_count).unwrap_or(0)
    }

    /// Total switching activity of the tree (Equation (7)).
    pub fn switching_activity(&self) -> f64 {
        self.root
            .as_ref()
            .map(|r| r.activity(&self.sources))
            .unwrap_or(0.0)
    }

    /// Number of 2-to-1 mux stages the given source traverses to reach the
    /// output (its code length in the source-coding analogy).
    pub fn depth_of(&self, source_index: usize) -> Option<usize> {
        self.root.as_ref().and_then(|r| r.depth_of(source_index, 0))
    }

    /// Depth of the deepest source: the worst-case number of mux delays added
    /// to a path through this tree.
    pub fn max_depth(&self) -> usize {
        self.root.as_ref().map(Node::max_depth).unwrap_or(0)
    }

    /// Weighted average depth `Σ aᵢ·pᵢ·lᵢ`, the quantity the Huffman heuristic
    /// minimizes.
    pub fn weighted_path_length(&self) -> f64 {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, s)| s.ap() * self.depth_of(i).unwrap_or(0) as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sources() -> Vec<MuxSource> {
        vec![
            MuxSource::new("e1", 0.6, 0.7),
            MuxSource::new("e2", 0.1, 0.2),
            MuxSource::new("e3", 0.2, 0.05),
            MuxSource::new("e4", 0.1, 0.05),
        ]
    }

    #[test]
    fn paper_balanced_tree_activity_is_1_09() {
        let tree = MuxTree::balanced(paper_sources());
        assert!((tree.switching_activity() - 1.09).abs() < 0.01);
        assert_eq!(tree.mux_count(), 3);
        assert_eq!(tree.max_depth(), 2);
    }

    #[test]
    fn paper_restructured_tree_activity_is_0_72() {
        let tree = MuxTree::huffman(paper_sources());
        let activity = tree.switching_activity();
        assert!((activity - 0.72).abs() < 0.01, "activity was {activity}");
        // 34% reduction quoted in the paper.
        let balanced = MuxTree::balanced(paper_sources()).switching_activity();
        let reduction = 1.0 - activity / balanced;
        assert!((reduction - 0.34).abs() < 0.02, "reduction was {reduction}");
    }

    #[test]
    fn huffman_places_the_hottest_signal_closest_to_the_output() {
        let tree = MuxTree::huffman(paper_sources());
        // e1 has by far the largest a·p product, so it must sit at depth 1.
        assert_eq!(tree.depth_of(0), Some(1));
        // The two coldest signals sit deepest.
        assert_eq!(tree.depth_of(2), Some(3));
        assert_eq!(tree.depth_of(3), Some(3));
    }

    #[test]
    fn huffman_never_exceeds_balanced_weighted_path_length() {
        let cases = vec![
            paper_sources(),
            vec![
                MuxSource::new("a", 0.5, 0.25),
                MuxSource::new("b", 0.5, 0.25),
                MuxSource::new("c", 0.5, 0.25),
                MuxSource::new("d", 0.5, 0.25),
            ],
            vec![
                MuxSource::new("a", 0.9, 0.6),
                MuxSource::new("b", 0.1, 0.1),
                MuxSource::new("c", 0.2, 0.1),
                MuxSource::new("d", 0.3, 0.1),
                MuxSource::new("e", 0.4, 0.1),
            ],
        ];
        for sources in cases {
            let balanced = MuxTree::balanced(sources.clone());
            let huffman = MuxTree::huffman(sources);
            assert!(huffman.weighted_path_length() <= balanced.weighted_path_length() + 1e-9);
        }
    }

    #[test]
    fn single_source_needs_no_mux() {
        let tree = MuxTree::balanced(vec![MuxSource::new("only", 0.4, 1.0)]);
        assert_eq!(tree.mux_count(), 0);
        assert_eq!(tree.switching_activity(), 0.0);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.depth_of(0), Some(0));
    }

    #[test]
    fn empty_tree_is_harmless() {
        let tree = MuxTree::huffman(vec![]);
        assert_eq!(tree.mux_count(), 0);
        assert_eq!(tree.switching_activity(), 0.0);
        assert_eq!(tree.input_count(), 0);
        assert_eq!(tree.depth_of(0), None);
    }

    #[test]
    fn two_sources_give_one_mux_with_normalized_activity() {
        let tree = MuxTree::balanced(vec![
            MuxSource::new("x", 0.8, 0.5),
            MuxSource::new("y", 0.2, 0.5),
        ]);
        assert_eq!(tree.mux_count(), 1);
        assert!((tree.switching_activity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_sources_make_balanced_and_huffman_equivalent() {
        let sources: Vec<MuxSource> = (0..8)
            .map(|i| MuxSource::new(&format!("s{i}"), 0.5, 0.125))
            .collect();
        let balanced = MuxTree::balanced(sources.clone()).switching_activity();
        let huffman = MuxTree::huffman(sources).switching_activity();
        assert!((balanced - huffman).abs() < 1e-9);
    }
}
