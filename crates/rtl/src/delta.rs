//! Transactional design deltas: the exact change-set of one move.
//!
//! Every [`RtlDesign`](crate::RtlDesign) mutation returns a [`DesignDelta`]
//! recording the before/after value of every allocation slot, binding entry
//! and mux-shape annotation it touched. A delta is three things at once:
//!
//! * a **transaction log** — [`RtlDesign::apply_delta`] replays it onto a
//!   design in the pre-move state and [`RtlDesign::revert_delta`] restores
//!   the exact pre-move design (including allocation-vector lengths),
//! * a **touched-set** — evaluators patch per-design caches by cloning only
//!   the entries of the functional units, registers and mux sites a move
//!   actually changed instead of rebuilding whole contexts,
//! * a **fingerprint patch** — the structural digest is an XOR of independent
//!   per-component digests, so [`DesignDelta::patched_fingerprint`] turns a
//!   parent's digest into the candidate's by XOR-ing the changed components
//!   out and in, without re-hashing the rest of the design.
//!
//! [`RtlDesign::apply_delta`]: crate::RtlDesign::apply_delta
//! [`RtlDesign::revert_delta`]: crate::RtlDesign::revert_delta

use impact_cdfg::{NodeId, VarId};

use crate::design::{FuId, FunctionalUnit, MuxSink, RegId, Register};
use crate::{DesignFingerprint, FingerprintHasher};

/// Before/after value of one functional-unit allocation slot (`None` means
/// the slot is empty/removed).
#[derive(Clone, PartialEq, Debug)]
pub struct FuSlotChange {
    /// The slot.
    pub id: FuId,
    /// Slot content before the move.
    pub before: Option<FunctionalUnit>,
    /// Slot content after the move.
    pub after: Option<FunctionalUnit>,
}

/// Before/after value of one register allocation slot.
#[derive(Clone, PartialEq, Debug)]
pub struct RegSlotChange {
    /// The slot.
    pub id: RegId,
    /// Slot content before the move.
    pub before: Option<Register>,
    /// Slot content after the move.
    pub after: Option<Register>,
}

/// The exact change-set of one design mutation. See the [module
/// documentation](self) for the three roles a delta plays.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DesignDelta {
    /// Length of the functional-unit slot vector before the move (splits
    /// append slots; revert truncates back to this).
    pub(crate) fu_slots_before: usize,
    /// Length of the register slot vector before the move.
    pub(crate) reg_slots_before: usize,
    /// Touched functional-unit slots.
    pub fus: Vec<FuSlotChange>,
    /// Touched register slots.
    pub registers: Vec<RegSlotChange>,
    /// Touched operation bindings as `(node, before, after)`.
    pub op_bindings: Vec<(NodeId, Option<FuId>, Option<FuId>)>,
    /// Touched variable bindings as `(var, before, after)`.
    pub var_bindings: Vec<(VarId, RegId, RegId)>,
    /// Touched mux-shape annotations as `(sink, before, after)`.
    pub restructured: Vec<(MuxSink, bool, bool)>,
}

impl DesignDelta {
    /// An empty delta anchored to the given slot-vector lengths.
    pub(crate) fn new(fu_slots: usize, reg_slots: usize) -> Self {
        Self {
            fu_slots_before: fu_slots,
            reg_slots_before: reg_slots,
            ..Self::default()
        }
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.fus.is_empty()
            && self.registers.is_empty()
            && self.op_bindings.is_empty()
            && self.var_bindings.is_empty()
            && self.restructured.is_empty()
    }

    /// The functional unit a split created, if the move created one.
    pub fn created_fu(&self) -> Option<FuId> {
        self.fus
            .iter()
            .find(|c| {
                c.before.is_none() && c.after.is_some() && c.id.index() >= self.fu_slots_before
            })
            .map(|c| c.id)
    }

    /// The register a split created, if the move created one.
    pub fn created_register(&self) -> Option<RegId> {
        self.registers
            .iter()
            .find(|c| {
                c.before.is_none() && c.after.is_some() && c.id.index() >= self.reg_slots_before
            })
            .map(|c| c.id)
    }

    /// Ids of every functional unit the move touched (changed, removed or
    /// created).
    pub fn touched_fus(&self) -> impl Iterator<Item = FuId> + '_ {
        self.fus.iter().map(|c| c.id)
    }

    /// Ids of every register the move touched.
    pub fn touched_registers(&self) -> impl Iterator<Item = RegId> + '_ {
        self.registers.iter().map(|c| c.id)
    }

    /// Patches a parent design's structural digest into the post-move
    /// digest: every changed component's contribution is XOR-ed out (its
    /// before value) and in (its after value), leaving the untouched
    /// components' contributions untouched. Bit-identical to recomputing
    /// [`RtlDesign::fingerprint`](crate::RtlDesign::fingerprint) on the
    /// mutated design.
    pub fn patched_fingerprint(&self, base: DesignFingerprint) -> DesignFingerprint {
        let mut bits = base.as_u128();
        for change in &self.fus {
            if let Some(unit) = &change.before {
                bits ^= fu_component(change.id.index(), unit);
            }
            if let Some(unit) = &change.after {
                bits ^= fu_component(change.id.index(), unit);
            }
        }
        for change in &self.registers {
            if let Some(reg) = &change.before {
                bits ^= reg_component(change.id.index(), reg);
            }
            if let Some(reg) = &change.after {
                bits ^= reg_component(change.id.index(), reg);
            }
        }
        for &(node, before, after) in &self.op_bindings {
            bits ^= op_binding_component(node.index(), before);
            bits ^= op_binding_component(node.index(), after);
        }
        for &(var, before, after) in &self.var_bindings {
            bits ^= var_binding_component(var.index(), before);
            bits ^= var_binding_component(var.index(), after);
        }
        for &(sink, before, after) in &self.restructured {
            if before {
                bits ^= restructured_component(sink);
            }
            if after {
                bits ^= restructured_component(sink);
            }
        }
        DesignFingerprint::from_u128(bits)
    }
}

// ---------------------------------------------------------------- components
//
// The structural digest of a design is the XOR of one independent digest per
// component (occupied allocation slot, binding entry, restructured sink).
// XOR makes the combination order-free and self-inverse, which is what lets
// a delta patch the digest; every component embeds its position and a
// domain-separation tag, so equal content at different positions (or in
// different sections) contributes distinct values.

/// Seed digest of the empty design (a tagged hash, so an empty design does
/// not fingerprint to zero).
pub(crate) fn fingerprint_seed() -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(0);
    h.finish().as_u128()
}

/// Component digest of one occupied functional-unit slot.
pub(crate) fn fu_component(index: usize, unit: &FunctionalUnit) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(1);
    h.write_u64(index as u64);
    h.write_u64(unit.class as u64);
    h.write_u64(unit.module.index() as u64);
    h.write_u64(u64::from(unit.width));
    h.finish().as_u128()
}

/// Component digest of one occupied register slot.
pub(crate) fn reg_component(index: usize, reg: &Register) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(2);
    h.write_u64(index as u64);
    h.write_u64(u64::from(reg.width));
    h.write_u64(reg.variables.len() as u64);
    for &var in &reg.variables {
        h.write_u64(var.index() as u64);
    }
    h.finish().as_u128()
}

/// Component digest of one operation-binding entry (`None` included, so
/// bind/unbind transitions patch cleanly).
pub(crate) fn op_binding_component(index: usize, binding: Option<FuId>) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(3);
    h.write_u64(index as u64);
    h.write_u64(binding.map_or(0, |fu| fu.index() as u64 + 1));
    h.finish().as_u128()
}

/// Component digest of one variable-binding entry.
pub(crate) fn var_binding_component(index: usize, reg: RegId) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(4);
    h.write_u64(index as u64);
    h.write_u64(reg.index() as u64);
    h.finish().as_u128()
}

/// Component digest of one restructured mux sink.
pub(crate) fn restructured_component(sink: MuxSink) -> u128 {
    let mut h = FingerprintHasher::new();
    h.write_tag(5);
    match sink {
        MuxSink::FuInput { fu, port } => {
            h.write_u64(1);
            h.write_u64(fu.index() as u64);
            h.write_u64(u64::from(port));
        }
        MuxSink::RegisterInput { reg } => {
            h.write_u64(2);
            h.write_u64(reg.index() as u64);
        }
    }
    h.finish().as_u128()
}
