//! Execution traces: the per-operation signal traces produced by one
//! behavioral simulation.

use std::collections::HashMap;
use std::sync::OnceLock;

use impact_cdfg::fingerprint::FingerprintHasher;
use impact_cdfg::{NodeId, VarId};

use crate::profile::{BranchStats, ControlProfile, LoopStats};

/// One executed operation: the paper's trace row "inputs | output" for one
/// dynamic occurrence of a CDFG node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpEvent {
    /// The executed node.
    pub node: NodeId,
    /// Input operand values, in port order (for `Select` nodes the third
    /// entry is the condition value).
    pub inputs: Vec<i64>,
    /// Result value.
    pub output: i64,
    /// Index of the input pass during which the event occurred.
    pub pass: u32,
    /// Global dynamic order of the event within the whole simulation.
    pub sequence: u32,
}

/// Everything recorded by one behavioral simulation.
///
/// The trace owns the per-operation events in dynamic execution order, the
/// per-variable write sequences, the control-flow profile and the
/// primary-output values of every pass.
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    events: Vec<OpEvent>,
    per_node: HashMap<NodeId, Vec<usize>>,
    var_writes: HashMap<VarId, Vec<i64>>,
    profile: ControlProfile,
    outputs: Vec<HashMap<VarId, i64>>,
    passes: u32,
    /// Lazily computed [`Self::content_digest`]; the trace is immutable, so
    /// the first computation is kept for the trace's lifetime (and carried
    /// by clones).
    digest: OnceLock<u128>,
    /// Lazily computed [`Self::first_sequences`].
    first_seqs: OnceLock<Vec<u32>>,
}

/// Equality over the recorded simulation only — the lazily memoized digest
/// is derived state and deliberately excluded.
impl PartialEq for ExecutionTrace {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.var_writes == other.var_writes
            && self.profile == other.profile
            && self.outputs == other.outputs
            && self.passes == other.passes
    }
}

impl ExecutionTrace {
    pub(crate) fn new(
        events: Vec<OpEvent>,
        var_writes: HashMap<VarId, Vec<i64>>,
        profile: ControlProfile,
        outputs: Vec<HashMap<VarId, i64>>,
        passes: u32,
    ) -> Self {
        let mut per_node: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (index, event) in events.iter().enumerate() {
            per_node.entry(event.node).or_default().push(index);
        }
        Self {
            events,
            per_node,
            var_writes,
            profile,
            outputs,
            passes,
            digest: OnceLock::new(),
            first_seqs: OnceLock::new(),
        }
    }

    /// Sequence number of the first event recorded during each pass (`0` for
    /// passes that recorded none), indexed by pass. Memoized: deriving a
    /// register's write interleaving consults this once per pass, and the
    /// evaluation engine derives thousands of register sequences per run —
    /// scanning the event stream each time would be quadratic.
    pub fn first_sequences(&self) -> &[u32] {
        self.first_seqs.get_or_init(|| {
            let mut first: Vec<Option<u32>> = vec![None; self.passes as usize];
            for event in &self.events {
                if let Some(slot) = first.get_mut(event.pass as usize) {
                    if slot.is_none() {
                        *slot = Some(event.sequence);
                    }
                }
            }
            first.into_iter().map(|s| s.unwrap_or(0)).collect()
        })
    }

    /// Deterministic 128-bit content digest of the trace: the dynamic event
    /// stream, the per-variable write sequences and the pass count.
    /// Memoized — the trace is immutable — so sweeps that scope many
    /// evaluation sessions by workload hash the event stream once instead of
    /// once per run.
    pub fn content_digest(&self) -> u128 {
        *self.digest.get_or_init(|| {
            let mut hasher = FingerprintHasher::new();
            hasher.write_tag(0xE1);
            hasher.write_u64(u64::from(self.passes));
            hasher.write_u64(self.events.len() as u64);
            for event in &self.events {
                hasher.write_u64(event.node.index() as u64);
                hasher.write_u64(event.inputs.len() as u64);
                for &input in &event.inputs {
                    hasher.write_i64(input);
                }
                hasher.write_i64(event.output);
                hasher.write_u64(u64::from(event.pass));
                hasher.write_u64(u64::from(event.sequence));
            }
            // Variable writes in variable-id order (the map iterates in
            // arbitrary order; the digest must be stable across processes).
            hasher.write_tag(0xF2);
            let mut written: Vec<VarId> = self.var_writes.keys().copied().collect();
            written.sort_unstable();
            for var in written {
                hasher.write_u64(var.index() as u64);
                let writes = &self.var_writes[&var];
                hasher.write_u64(writes.len() as u64);
                for &value in writes {
                    hasher.write_i64(value);
                }
            }
            hasher.finish().as_u128()
        })
    }

    /// All events in dynamic execution order.
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Events of one node, in dynamic execution order (the paper's
    /// `TR(op_i)` trace for that operation).
    pub fn events_for(&self, node: NodeId) -> Vec<&OpEvent> {
        self.per_node
            .get(&node)
            .map(|idx| idx.iter().map(|&i| &self.events[i]).collect())
            .unwrap_or_default()
    }

    /// Number of times a node executed across the whole simulation.
    pub fn execution_count(&self, node: NodeId) -> usize {
        self.per_node.get(&node).map(Vec::len).unwrap_or(0)
    }

    /// Average number of executions of a node per input pass.
    pub fn executions_per_pass(&self, node: NodeId) -> f64 {
        self.execution_count(node) as f64 / f64::from(self.passes.max(1))
    }

    /// Sequence of values written to a variable across the simulation
    /// (the register trace of the register holding that variable).
    pub fn variable_writes(&self, var: VarId) -> &[i64] {
        self.var_writes.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Control-flow statistics (branch probabilities, loop trip counts).
    pub fn profile(&self) -> &ControlProfile {
        &self.profile
    }

    /// Statistics of the branch with the given preorder index.
    pub fn branch(&self, index: usize) -> BranchStats {
        self.profile.branch(index)
    }

    /// Statistics of the loop with the given label.
    pub fn loop_stats(&self, label: &str) -> LoopStats {
        self.profile.loop_stats(label)
    }

    /// Number of simulated input passes.
    pub fn passes(&self) -> u32 {
        self.passes
    }

    /// Value committed to primary output `var` during `pass`, if any.
    pub fn output(&self, pass: usize, var: VarId) -> Option<i64> {
        self.outputs.get(pass).and_then(|m| m.get(&var).copied())
    }

    /// All outputs committed during `pass`.
    pub fn outputs(&self, pass: usize) -> Option<&HashMap<VarId, i64>> {
        self.outputs.get(pass)
    }

    /// Total number of recorded operation events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(node: usize, seq: u32, output: i64) -> OpEvent {
        OpEvent {
            node: NodeId::new(node),
            inputs: vec![output - 1, 1],
            output,
            pass: 0,
            sequence: seq,
        }
    }

    #[test]
    fn per_node_indexing_preserves_order() {
        let events = vec![event(0, 0, 1), event(1, 1, 2), event(0, 2, 3)];
        let trace = ExecutionTrace::new(
            events,
            HashMap::new(),
            ControlProfile::default(),
            vec![HashMap::new()],
            1,
        );
        let n0 = trace.events_for(NodeId::new(0));
        assert_eq!(n0.len(), 2);
        assert!(n0[0].sequence < n0[1].sequence);
        assert_eq!(trace.execution_count(NodeId::new(1)), 1);
        assert_eq!(trace.execution_count(NodeId::new(9)), 0);
        assert_eq!(trace.event_count(), 3);
    }

    #[test]
    fn executions_per_pass_divides_by_pass_count() {
        let events = vec![
            event(0, 0, 1),
            event(0, 1, 2),
            event(0, 2, 3),
            event(0, 3, 4),
        ];
        let trace = ExecutionTrace::new(
            events,
            HashMap::new(),
            ControlProfile::default(),
            vec![HashMap::new(), HashMap::new()],
            2,
        );
        assert!((trace.executions_per_pass(NodeId::new(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_variable_has_empty_writes() {
        let trace =
            ExecutionTrace::new(vec![], HashMap::new(), ControlProfile::default(), vec![], 1);
        assert!(trace.variable_writes(VarId::new(0)).is_empty());
        assert!(trace.output(0, VarId::new(0)).is_none());
    }
}
