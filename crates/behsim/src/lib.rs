//! Behavioral (CDFG-level) simulator and execution-trace recorder.
//!
//! Section 2.3 of the paper relies on **one** behavioral simulation of the
//! design over "typical input sequences" to obtain the signal traces and
//! statistics that drive power estimation; later synthesis moves manipulate
//! those traces instead of re-simulating. This crate performs that behavioral
//! simulation: it interprets a [`Cdfg`](impact_cdfg::Cdfg) through its region
//! tree over a sequence of input passes and records
//!
//! * one [`OpEvent`] per executed operation (the per-operation traces
//!   `TR(op_i)` of the paper),
//! * the sequence of values written to every variable (register traces),
//! * branch-taken statistics (the probabilities of propagation `p_i`),
//! * loop iteration statistics (expected trip counts for ENC computation),
//! * primary-output values per pass (used by correctness tests).
//!
//! Values are simulated as unbounded `i64` behavioral quantities; bit widths
//! are used for area/power characterization, not for value truncation.
//!
//! # Example
//!
//! ```
//! let cdfg = impact_hdl::compile(
//!     "design acc { input a: 8; output y: 8; var s: 8 = 0; var i: 8;
//!        for (i = 0; i < 4; i = i + 1) { s = s + a; }
//!        y = s; }",
//! )?;
//! let inputs = vec![vec![3], vec![5]];
//! let trace = impact_behsim::simulate(&cdfg, &inputs)?;
//! assert_eq!(trace.passes(), 2);
//! let y = cdfg.variable_by_name("y").unwrap();
//! assert_eq!(trace.output(0, y), Some(12));
//! assert_eq!(trace.output(1, y), Some(20));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod event;
mod profile;
mod sim;

pub use error::SimError;
pub use event::{ExecutionTrace, OpEvent};
pub use profile::{branch_count, BranchStats, ControlProfile, LoopStats};
pub use sim::{simulate, Simulator};
