//! The region-tree interpreter.

use std::collections::HashMap;

use impact_cdfg::{Cdfg, EdgeId, NodeId, Operation, Region, ValueRef, VarId};

use crate::error::SimError;
use crate::event::{ExecutionTrace, OpEvent};
use crate::profile::ControlProfile;

/// Simulates `cdfg` over `inputs`, where every inner vector provides one value
/// per primary input (in [`Cdfg::primary_inputs`] order) for one execution
/// pass.
///
/// # Errors
///
/// See [`SimError`]: empty input sequences, arity mismatches and runaway
/// loops are rejected.
pub fn simulate(cdfg: &Cdfg, inputs: &[Vec<i64>]) -> Result<ExecutionTrace, SimError> {
    Simulator::new(cdfg).run(inputs)
}

/// Reusable simulator bound to one CDFG.
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    cdfg: &'a Cdfg,
}

struct RunState {
    env: HashMap<VarId, i64>,
    events: Vec<OpEvent>,
    var_writes: HashMap<VarId, Vec<i64>>,
    profile: ControlProfile,
    outputs: Vec<HashMap<VarId, i64>>,
    current_outputs: HashMap<VarId, i64>,
    pass: u32,
    sequence: u32,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `cdfg`.
    pub fn new(cdfg: &'a Cdfg) -> Self {
        Self { cdfg }
    }

    /// Runs the simulation over the given input passes.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&self, inputs: &[Vec<i64>]) -> Result<ExecutionTrace, SimError> {
        if inputs.is_empty() {
            return Err(SimError::NoInputPasses);
        }
        let primary_inputs = self.cdfg.primary_inputs();
        let mut state = RunState {
            env: HashMap::new(),
            events: Vec::new(),
            var_writes: HashMap::new(),
            profile: ControlProfile::with_branches(crate::profile::branch_count(
                self.cdfg.regions(),
            )),
            outputs: Vec::new(),
            current_outputs: HashMap::new(),
            pass: 0,
            sequence: 0,
        };

        for (pass_index, pass_values) in inputs.iter().enumerate() {
            if pass_values.len() != primary_inputs.len() {
                return Err(SimError::InputArityMismatch {
                    pass: pass_index,
                    expected: primary_inputs.len(),
                    found: pass_values.len(),
                });
            }
            state.pass = pass_index as u32;
            state.env.clear();
            state.current_outputs.clear();
            // Primary inputs and declared initial values define the pass state.
            for (&var, &value) in primary_inputs.iter().zip(pass_values.iter()) {
                state.env.insert(var, value);
                state.var_writes.entry(var).or_default().push(value);
            }
            for (var, decl) in self.cdfg.variables() {
                if let Some(init) = decl.initial {
                    state.env.insert(var, init);
                }
            }
            self.exec_regions(self.cdfg.regions(), 0, &mut state)?;
            state
                .outputs
                .push(std::mem::take(&mut state.current_outputs));
        }

        Ok(ExecutionTrace::new(
            state.events,
            state.var_writes,
            state.profile,
            state.outputs,
            inputs.len() as u32,
        ))
    }

    fn resolve(&self, value: ValueRef, env: &HashMap<VarId, i64>) -> i64 {
        match value {
            ValueRef::Const(c) => c,
            ValueRef::Var(v) => env.get(&v).copied().unwrap_or(0),
        }
    }

    fn edge_value(&self, edge: EdgeId, env: &HashMap<VarId, i64>) -> i64 {
        self.resolve(self.cdfg.edge(edge).value, env)
    }

    fn exec_regions(
        &self,
        regions: &[Region],
        mut branch_base: usize,
        state: &mut RunState,
    ) -> Result<(), SimError> {
        for region in regions {
            self.exec_region(region, branch_base, state)?;
            branch_base += crate::profile::branch_count(std::slice::from_ref(region));
        }
        Ok(())
    }

    fn exec_region(
        &self,
        region: &Region,
        branch_base: usize,
        state: &mut RunState,
    ) -> Result<(), SimError> {
        match region {
            Region::Block(nodes) => {
                for &node in nodes {
                    self.exec_node(node, state);
                }
                Ok(())
            }
            Region::Branch {
                condition,
                then_regions,
                else_regions,
                selects,
                ..
            } => {
                let cond_value = self.resolve(*condition, &state.env);
                let taken = cond_value != 0;
                state.profile.record_branch(branch_base, taken);
                let snapshot = state.env.clone();
                let then_branches = crate::profile::branch_count(then_regions);
                if taken {
                    self.exec_regions(then_regions, branch_base + 1, state)?;
                } else {
                    self.exec_regions(else_regions, branch_base + 1 + then_branches, state)?;
                }
                for &sel in selects {
                    self.exec_select(sel, taken, cond_value, &snapshot, state);
                }
                Ok(())
            }
            Region::Loop(info) => {
                let header_branches = crate::profile::branch_count(&info.header);
                let mut iterations: u64 = 0;
                loop {
                    self.exec_regions(&info.header, branch_base, state)?;
                    let cond = self.resolve(info.condition, &state.env);
                    if cond == 0 {
                        break;
                    }
                    self.exec_regions(&info.body, branch_base + header_branches, state)?;
                    iterations += 1;
                    if iterations >= u64::from(info.max_iterations) {
                        return Err(SimError::IterationLimit {
                            label: info.label.clone(),
                            limit: info.max_iterations,
                        });
                    }
                }
                state.profile.record_loop(&info.label, iterations);
                for &end in &info.end_nodes {
                    self.exec_node(end, state);
                }
                Ok(())
            }
        }
    }

    fn exec_select(
        &self,
        node_id: NodeId,
        taken: bool,
        cond_value: i64,
        snapshot: &HashMap<VarId, i64>,
        state: &mut RunState,
    ) {
        let node = self.cdfg.node(node_id);
        debug_assert_eq!(node.operation, Operation::Select);
        let then_ref = self.cdfg.edge(node.inputs[0]).value;
        let else_ref = self.cdfg.edge(node.inputs[1]).value;
        // The taken side's value lives in the current environment, the
        // not-taken side's value is whatever its register held before the
        // branch (the snapshot).
        let (then_value, else_value) = if taken {
            (
                self.resolve(then_ref, &state.env),
                self.resolve(else_ref, snapshot),
            )
        } else {
            (
                self.resolve(then_ref, snapshot),
                self.resolve(else_ref, &state.env),
            )
        };
        let output = if taken { then_value } else { else_value };
        self.record_event(
            node_id,
            vec![then_value, else_value, cond_value],
            output,
            state,
        );
        if let Some(var) = node.defines {
            state.env.insert(var, output);
            state.var_writes.entry(var).or_default().push(output);
        }
    }

    fn exec_node(&self, node_id: NodeId, state: &mut RunState) {
        let node = self.cdfg.node(node_id);
        let inputs: Vec<i64> = node
            .inputs
            .iter()
            .map(|&e| self.edge_value(e, &state.env))
            .collect();
        let output = match node.operation {
            // Structural pass-through nodes simply forward their first input.
            Operation::EndLoop | Operation::Mov | Operation::Output => {
                inputs.first().copied().unwrap_or(0)
            }
            Operation::Select => {
                // Selects outside Branch regions (not produced by the builder)
                // read their condition from the control edge.
                let cond = node
                    .control
                    .condition
                    .map(|e| self.edge_value(e, &state.env))
                    .unwrap_or(0);
                if cond != 0 {
                    inputs.first().copied().unwrap_or(0)
                } else {
                    inputs.get(1).copied().unwrap_or(0)
                }
            }
            op => op.evaluate(&inputs),
        };
        self.record_event(node_id, inputs, output, state);
        if let Some(var) = node.defines {
            state.env.insert(var, output);
            state.var_writes.entry(var).or_default().push(output);
            if node.operation == Operation::Output {
                state.current_outputs.insert(var, output);
            }
        }
    }

    fn record_event(&self, node: NodeId, inputs: Vec<i64>, output: i64, state: &mut RunState) {
        state.events.push(OpEvent {
            node,
            inputs,
            output,
            pass: state.pass,
            sequence: state.sequence,
        });
        state.sequence = state.sequence.wrapping_add(1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use impact_hdl::compile;

    fn out(cdfg: &Cdfg, trace: &ExecutionTrace, pass: usize, name: &str) -> i64 {
        trace
            .output(pass, cdfg.variable_by_name(name).unwrap())
            .unwrap()
    }

    #[test]
    fn straight_line_arithmetic_matches_reference() {
        let g = compile("design d { input a: 8, b: 8; output y: 16; y = a * b + 7; }").unwrap();
        let t = simulate(&g, &[vec![3, 4], vec![5, 6]]).unwrap();
        assert_eq!(out(&g, &t, 0, "y"), 19);
        assert_eq!(out(&g, &t, 1, "y"), 37);
    }

    #[test]
    fn gcd_produces_correct_results_and_loop_stats() {
        let g = compile(
            "design gcd { input a: 8, b: 8; output r: 8; var x: 8; var y: 8;
               x = a; y = b;
               while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
               r = x; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![12, 18], vec![35, 14], vec![9, 9]]).unwrap();
        assert_eq!(out(&g, &t, 0, "r"), 6);
        assert_eq!(out(&g, &t, 1, "r"), 7);
        assert_eq!(out(&g, &t, 2, "r"), 9);
        let stats = t.loop_stats("loop0");
        assert_eq!(stats.entries, 3);
        assert!(stats.iterations > 0);
    }

    #[test]
    fn branch_probabilities_are_measured() {
        let g = compile(
            "design d { input x: 8; output y: 8;
               if (x > 10) { y = 1; } else { y = 0; } }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![20], vec![5], vec![15], vec![3]]).unwrap();
        let stats = t.branch(0);
        assert_eq!(stats.taken, 2);
        assert_eq!(stats.not_taken, 2);
        assert!((stats.probability_taken() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn for_loops_iterate_the_declared_number_of_times() {
        let g = compile(
            "design d { input a: 8; output s: 16; var acc: 16 = 0; var i: 8;
               for (i = 0; i < 10; i = i + 1) { acc = acc + a; }
               s = acc; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![7]]).unwrap();
        assert_eq!(out(&g, &t, 0, "s"), 70);
        assert_eq!(t.loop_stats("loop0").iterations, 10);
    }

    #[test]
    fn nested_loops_multiply_iteration_counts() {
        let g = compile(
            "design d { output s: 16; var acc: 16 = 0; var i: 8; var j: 8;
               for (i = 0; i < 3; i = i + 1) {
                 for (j = 0; j < 4; j = j + 1) { acc = acc + 1; }
               }
               s = acc; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![]]).unwrap();
        assert_eq!(out(&g, &t, 0, "s"), 12);
        // Loop labels are assigned in lowering (program) order: the outer
        // `for` is loop0, the inner one loop1.
        assert_eq!(
            t.loop_stats("loop1").iterations,
            12,
            "inner loop runs 12 times in total"
        );
        assert_eq!(t.loop_stats("loop0").iterations, 3);
    }

    #[test]
    fn select_events_record_both_sides_and_condition() {
        let g = compile(
            "design d { input x: 8; output y: 8; var z: 8 = 5;
               if (x > 0) { z = 1; }
               y = z; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![3], vec![-2]]).unwrap();
        let sel = g
            .nodes()
            .find(|(_, n)| n.operation == Operation::Select)
            .map(|(id, _)| id)
            .unwrap();
        let events = t.events_for(sel);
        assert_eq!(events.len(), 2);
        // Pass 0: condition true, z becomes 1; pass 1: condition false, z stays 5.
        assert_eq!(events[0].output, 1);
        assert_eq!(events[1].output, 5);
        assert_eq!(events[0].inputs.len(), 3);
        assert_eq!(out(&g, &t, 0, "y"), 1);
        assert_eq!(out(&g, &t, 1, "y"), 5);
    }

    #[test]
    fn empty_input_sequence_is_rejected() {
        let g = compile("design d { input a: 8; output y: 8; y = a; }").unwrap();
        assert!(matches!(simulate(&g, &[]), Err(SimError::NoInputPasses)));
    }

    #[test]
    fn arity_mismatch_is_rejected_with_pass_index() {
        let g = compile("design d { input a: 8, b: 8; output y: 8; y = a + b; }").unwrap();
        let err = simulate(&g, &[vec![1, 2], vec![3]]).unwrap_err();
        assert!(matches!(err, SimError::InputArityMismatch { pass: 1, .. }));
    }

    #[test]
    fn runaway_loops_hit_the_iteration_limit() {
        let g = compile(
            "design d { input a: 8; output y: 8; var i: 8 = 0;
               while (i < 100000) { i = i + 0; }
               y = i; }",
        )
        .unwrap();
        assert!(matches!(
            simulate(&g, &[vec![1]]),
            Err(SimError::IterationLimit { .. })
        ));
    }

    #[test]
    fn variable_writes_track_every_update() {
        let g = compile(
            "design d { output s: 8; var acc: 8 = 0; var i: 8;
               for (i = 0; i < 4; i = i + 1) { acc = acc + 1; }
               s = acc; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![]]).unwrap();
        let acc = g.variable_by_name("acc").unwrap();
        assert_eq!(t.variable_writes(acc), &[1, 2, 3, 4]);
    }

    #[test]
    fn executions_per_pass_reflects_loop_trip_count() {
        let g = compile(
            "design d { input a: 8; output s: 16; var acc: 16 = 0; var i: 8;
               for (i = 0; i < 5; i = i + 1) { acc = acc + a; }
               s = acc; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![1], vec![2]]).unwrap();
        let add_acc = g
            .nodes()
            .find(|(_, n)| n.operation == Operation::Add && n.defines == g.variable_by_name("acc"))
            .map(|(id, _)| id)
            .unwrap();
        assert!((t.executions_per_pass(add_acc) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_loops_example_executes_and_profiles_branches() {
        // The Loops benchmark of Figure 1 (structure-equivalent source).
        let g = compile(
            "design loops { input a: 1, b: 1, dd: 8; output zz: 16;
               var z: 16 = 0; var i: 8; var j: 8; var h: 8 = 0; var m: 8 = 0; var k: 8 = 0;
               var c: 1; var e: 16; var gg: 8;
               for (i = 0; i < 10; i = i + 1) {
                 c = a && b;
                 e = dd * i;
                 z = z + e;
                 if (c == 1) {
                   z = 0;
                 } else {
                   for (j = 0; j < 8; j = j + 1) {
                     gg = i - h;
                     h = gg + 5;
                     m = m + k;
                     k = dd * j;
                   }
                   z = h - m;
                   h = 8;
                   m = 0;
                 }
               }
               zz = z; }",
        )
        .unwrap();
        let t = simulate(&g, &[vec![1, 1, 3], vec![0, 1, 5]]).unwrap();
        // When a && b is true, z is reset every iteration, so zz ends at 0.
        assert_eq!(out(&g, &t, 0, "zz"), 0);
        // Outer loop (loop0) runs 10 iterations per pass, 2 passes; the inner
        // loop (loop1) runs 8 iterations for each of the 10 not-taken
        // iterations of pass 1.
        assert_eq!(t.loop_stats("loop0").iterations, 20);
        assert_eq!(t.loop_stats("loop1").iterations, 80);
        // The branch is taken in pass 0 (10 times) and not taken in pass 1.
        let b = t.branch(0);
        assert_eq!(b.taken, 10);
        assert_eq!(b.not_taken, 10);
    }
}
