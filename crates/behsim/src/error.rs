//! Error type for behavioral simulation.

use std::error::Error;
use std::fmt;

/// Errors reported by the behavioral simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The input sequence is empty; at least one pass is required to derive
    /// statistics.
    NoInputPasses,
    /// An input pass does not provide one value per primary input.
    InputArityMismatch {
        /// Index of the offending pass.
        pass: usize,
        /// Number of primary inputs the design declares.
        expected: usize,
        /// Number of values provided.
        found: usize,
    },
    /// A loop exceeded its iteration bound, which usually means the exit
    /// condition can never become false for the given inputs.
    IterationLimit {
        /// Label of the runaway loop.
        label: String,
        /// The bound that was hit.
        limit: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoInputPasses => write!(f, "at least one input pass is required"),
            SimError::InputArityMismatch {
                pass,
                expected,
                found,
            } => write!(
                f,
                "input pass {pass} provides {found} values but the design has {expected} primary inputs"
            ),
            SimError::IterationLimit { label, limit } => write!(
                f,
                "loop `{label}` exceeded the iteration bound of {limit} iterations"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::InputArityMismatch {
            pass: 3,
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("pass 3"));
        assert!(SimError::NoInputPasses.to_string().contains("at least one"));
        let e = SimError::IterationLimit {
            label: "loop0".to_string(),
            limit: 4096,
        };
        assert!(e.to_string().contains("loop0"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
