//! Control-flow statistics gathered during behavioral simulation: branch
//! probabilities and loop trip counts.
//!
//! Branches are identified by their **preorder index**: a depth-first walk of
//! the region tree that visits, for every `Branch` region, the branch itself,
//! then its then-side, then its else-side, and for every `Loop` region its
//! header followed by its body. Both the simulator and the schedulers use the
//! same walk, so the indices agree by construction; [`branch_count`] returns
//! the number of indices a design has.

use std::collections::HashMap;

use impact_cdfg::Region;

/// Taken/not-taken counts for one branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BranchStats {
    /// Times the condition evaluated true.
    pub taken: u64,
    /// Times the condition evaluated false.
    pub not_taken: u64,
}

impl BranchStats {
    /// Probability that the branch is taken; 0.5 when never executed.
    pub fn probability_taken(&self) -> f64 {
        let total = self.taken + self.not_taken;
        if total == 0 {
            0.5
        } else {
            self.taken as f64 / total as f64
        }
    }

    /// Total number of times the branch was evaluated.
    pub fn executions(&self) -> u64 {
        self.taken + self.not_taken
    }
}

/// Entry/iteration counts for one loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoopStats {
    /// Times the loop was entered (its header reached from outside).
    pub entries: u64,
    /// Total body iterations across all entries.
    pub iterations: u64,
}

impl LoopStats {
    /// Average number of body iterations per entry; 0 when never entered.
    pub fn average_iterations(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.entries as f64
        }
    }
}

/// Aggregated control-flow statistics for one simulation run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ControlProfile {
    branches: Vec<BranchStats>,
    loops: HashMap<String, LoopStats>,
}

impl ControlProfile {
    /// Creates a profile with `branch_slots` branch counters.
    pub fn with_branches(branch_slots: usize) -> Self {
        Self {
            branches: vec![BranchStats::default(); branch_slots],
            loops: HashMap::new(),
        }
    }

    /// Records one evaluation of the branch with preorder index `index`.
    pub fn record_branch(&mut self, index: usize, taken: bool) {
        if index >= self.branches.len() {
            self.branches.resize(index + 1, BranchStats::default());
        }
        let stats = &mut self.branches[index];
        if taken {
            stats.taken += 1;
        } else {
            stats.not_taken += 1;
        }
    }

    /// Records one completed execution of the loop labelled `label` that ran
    /// `iterations` body iterations.
    pub fn record_loop(&mut self, label: &str, iterations: u64) {
        let stats = self.loops.entry(label.to_string()).or_default();
        stats.entries += 1;
        stats.iterations += iterations;
    }

    /// Statistics for the branch with preorder index `index`.
    pub fn branch(&self, index: usize) -> BranchStats {
        self.branches.get(index).copied().unwrap_or_default()
    }

    /// Number of branch slots known to this profile.
    pub fn branch_slots(&self) -> usize {
        self.branches.len()
    }

    /// Statistics for the loop labelled `label`.
    pub fn loop_stats(&self, label: &str) -> LoopStats {
        self.loops.get(label).copied().unwrap_or_default()
    }

    /// Iterates over `(label, stats)` for every loop observed.
    pub fn loops(&self) -> impl Iterator<Item = (&str, LoopStats)> {
        self.loops.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Number of `Branch` regions in a region forest, in the preorder used for
/// branch indices.
pub fn branch_count(regions: &[Region]) -> usize {
    fn walk(regions: &[Region]) -> usize {
        let mut count = 0;
        for region in regions {
            match region {
                Region::Block(_) => {}
                Region::Branch {
                    then_regions,
                    else_regions,
                    ..
                } => {
                    count += 1 + walk(then_regions) + walk(else_regions);
                }
                Region::Loop(info) => {
                    count += walk(&info.header) + walk(&info.body);
                }
            }
        }
        count
    }
    walk(regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_probability_defaults_to_half() {
        assert!((BranchStats::default().probability_taken() - 0.5).abs() < 1e-12);
        let s = BranchStats {
            taken: 3,
            not_taken: 1,
        };
        assert!((s.probability_taken() - 0.75).abs() < 1e-12);
        assert_eq!(s.executions(), 4);
    }

    #[test]
    fn loop_average_handles_zero_entries() {
        assert_eq!(LoopStats::default().average_iterations(), 0.0);
        let s = LoopStats {
            entries: 4,
            iterations: 10,
        };
        assert!((s.average_iterations() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn profile_records_and_resizes() {
        let mut p = ControlProfile::with_branches(1);
        p.record_branch(0, true);
        p.record_branch(3, false);
        assert_eq!(p.branch(0).taken, 1);
        assert_eq!(p.branch(3).not_taken, 1);
        assert_eq!(p.branch_slots(), 4);
        p.record_loop("l", 7);
        p.record_loop("l", 3);
        assert!((p.loop_stats("l").average_iterations() - 5.0).abs() < 1e-12);
        assert_eq!(p.loops().count(), 1);
    }

    #[test]
    fn unknown_loop_has_default_stats() {
        let p = ControlProfile::default();
        assert_eq!(p.loop_stats("nope").entries, 0);
    }
}
