//! Supply-voltage scaling model.
//!
//! The paper converts schedule slack (laxity above 1.0) into power savings by
//! lowering the supply voltage: "saving a cycle and hence enabling Vdd
//! scaling". Delay follows the classic alpha-power-law approximation
//! `t_d ∝ Vdd / (Vdd − Vt)²` and dynamic energy scales with `Vdd²`.

use crate::VDD_REFERENCE;

/// Supply-voltage scaling model with a discrete grid of allowed voltages.
#[derive(Clone, PartialEq, Debug)]
pub struct VddScaling {
    reference: f64,
    threshold: f64,
    levels: Vec<f64>,
}

impl VddScaling {
    /// Creates a scaling model.
    ///
    /// # Panics
    ///
    /// Panics if the threshold voltage is not below every allowed level or if
    /// no levels are provided.
    pub fn new(reference: f64, threshold: f64, mut levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "at least one Vdd level is required");
        levels.sort_by(|a, b| a.partial_cmp(b).expect("voltage levels are finite"));
        assert!(
            levels.iter().all(|&v| v > threshold),
            "every Vdd level must exceed the threshold voltage"
        );
        Self {
            reference,
            threshold,
            levels,
        }
    }

    /// The standard grid used in the experiments: 5.0 V reference, 0.8 V
    /// threshold, levels from 1.2 V to 5.0 V in 0.1 V steps.
    pub fn standard() -> Self {
        let levels = (12..=50).map(|tenths| f64::from(tenths) / 10.0).collect();
        Self::new(VDD_REFERENCE, 0.8, levels)
    }

    /// Reference (maximum) supply voltage.
    pub fn reference(&self) -> f64 {
        self.reference
    }

    /// Device threshold voltage.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Allowed supply levels, ascending.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Multiplicative factor on module delay when operating at `vdd` instead
    /// of the reference supply (`≥ 1` for `vdd` below the reference).
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        let num = vdd / (vdd - self.threshold).powi(2);
        let den = self.reference / (self.reference - self.threshold).powi(2);
        num / den
    }

    /// Multiplicative factor on switched energy at `vdd` relative to the
    /// reference supply (`Vdd²` scaling).
    pub fn energy_factor(&self, vdd: f64) -> f64 {
        (vdd / self.reference).powi(2)
    }

    /// The lowest allowed supply whose delay factor does not exceed
    /// `max_delay_factor`, or `None` if even the reference supply violates it.
    pub fn lowest_feasible(&self, max_delay_factor: f64) -> Option<f64> {
        self.levels
            .iter()
            .copied()
            .find(|&v| self.delay_factor(v) <= max_delay_factor)
    }
}

impl Default for VddScaling {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn reference_voltage_has_unit_factors() {
        let s = VddScaling::standard();
        assert!((s.delay_factor(5.0) - 1.0).abs() < 1e-12);
        assert!((s.energy_factor(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_voltage_is_slower_but_cheaper() {
        let s = VddScaling::standard();
        assert!(s.delay_factor(3.3) > 1.0);
        assert!(s.delay_factor(2.0) > s.delay_factor(3.3));
        assert!(s.energy_factor(3.3) < 1.0);
        assert!(s.energy_factor(2.0) < s.energy_factor(3.3));
    }

    #[test]
    fn energy_factor_is_quadratic() {
        let s = VddScaling::standard();
        assert!((s.energy_factor(2.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lowest_feasible_respects_the_delay_budget() {
        let s = VddScaling::standard();
        // With no slack only the reference supply fits.
        let v = s
            .lowest_feasible(1.0)
            .expect("reference supply is feasible");
        assert!((v - 5.0).abs() < 1e-9);
        // With 3x delay budget a much lower supply becomes feasible.
        let v3 = s.lowest_feasible(3.0).expect("a lower supply is feasible");
        assert!(v3 < 3.0);
        // The returned level is indeed feasible and the next lower one is not.
        assert!(s.delay_factor(v3) <= 3.0);
        let idx = s
            .levels()
            .iter()
            .position(|&l| (l - v3).abs() < 1e-9)
            .unwrap();
        if idx > 0 {
            assert!(s.delay_factor(s.levels()[idx - 1]) > 3.0);
        }
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let s = VddScaling::standard();
        assert!(s.lowest_feasible(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn levels_below_threshold_are_rejected() {
        let _ = VddScaling::new(5.0, 0.8, vec![0.5, 3.3]);
    }

    #[test]
    fn standard_grid_covers_1_2_to_5_volts() {
        let s = VddScaling::standard();
        assert!((s.levels()[0] - 1.2).abs() < 1e-9);
        assert!((s.levels().last().unwrap() - 5.0).abs() < 1e-9);
    }
}
