//! A single characterized RT-level module implementation.

use std::fmt;

use impact_cdfg::OpClass;

/// How a module's delay grows with operand bit width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DelayScaling {
    /// Delay grows linearly with width (e.g. ripple-carry adders).
    Linear,
    /// Delay grows with `log2(width)` (e.g. carry-lookahead adders, trees).
    Logarithmic,
    /// Delay is independent of width (e.g. bitwise logic).
    Constant,
}

/// One implementation choice for a functional-unit class, characterized at the
/// reference width of 8 bits and the reference supply of 5 V.
#[derive(Clone, PartialEq, Debug)]
pub struct ModuleVariant {
    /// Library name, e.g. `"cla_adder"` or `"wallace_multiplier"`.
    pub name: String,
    /// Functional-unit class the variant implements.
    pub class: OpClass,
    /// Propagation delay at 8 bits and 5 V, in nanoseconds.
    pub delay_ns: f64,
    /// Area at 8 bits, in equivalent two-input NAND gates.
    pub area: f64,
    /// Effective switched capacitance at 8 bits, in picofarads; energy per
    /// activation is `C · Vdd² · activity`.
    pub capacitance_pf: f64,
    /// How delay grows with operand width.
    pub scaling: DelayScaling,
}

/// Reference operand width the characterization numbers are quoted at.
pub const REFERENCE_WIDTH: u8 = 8;

impl ModuleVariant {
    /// Creates a variant description.
    pub fn new(
        name: &str,
        class: OpClass,
        delay_ns: f64,
        area: f64,
        capacitance_pf: f64,
        scaling: DelayScaling,
    ) -> Self {
        Self {
            name: name.to_string(),
            class,
            delay_ns,
            area,
            capacitance_pf,
            scaling,
        }
    }

    /// Delay at the given operand width (5 V supply), in nanoseconds.
    pub fn delay_for_width(&self, width: u8) -> f64 {
        let w = f64::from(width.max(1));
        let r = f64::from(REFERENCE_WIDTH);
        match self.scaling {
            DelayScaling::Linear => self.delay_ns * w / r,
            DelayScaling::Logarithmic => self.delay_ns * (w.log2().max(1.0) / r.log2()),
            DelayScaling::Constant => self.delay_ns,
        }
    }

    /// Effective switched capacitance at the given width, in picofarads.
    /// Capacitance grows linearly with the number of bits for every variant.
    pub fn capacitance_for_width(&self, width: u8) -> f64 {
        self.capacitance_pf * f64::from(width.max(1)) / f64::from(REFERENCE_WIDTH)
    }

    /// Area at the given width, in equivalent gates.
    pub fn area_for_width(&self, width: u8) -> f64 {
        let w = f64::from(width.max(1)) / f64::from(REFERENCE_WIDTH);
        match self.class {
            // Multipliers and dividers grow quadratically with width.
            OpClass::Mul | OpClass::Div => self.area * w * w,
            _ => self.area * w,
        }
    }
}

impl fmt::Display for ModuleVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}; {:.1} ns, {:.0} gates, {:.2} pF)",
            self.name, self.class, self.delay_ns, self.area, self.capacitance_pf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ripple() -> ModuleVariant {
        ModuleVariant::new(
            "ripple_adder",
            OpClass::AddSub,
            18.0,
            48.0,
            0.20,
            DelayScaling::Linear,
        )
    }

    #[test]
    fn linear_delay_scales_with_width() {
        let v = ripple();
        assert!((v.delay_for_width(8) - 18.0).abs() < 1e-9);
        assert!((v.delay_for_width(16) - 36.0).abs() < 1e-9);
        assert!((v.delay_for_width(4) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn logarithmic_delay_scales_slower_than_linear() {
        let v = ModuleVariant::new(
            "cla_adder",
            OpClass::AddSub,
            10.0,
            90.0,
            0.32,
            DelayScaling::Logarithmic,
        );
        assert!((v.delay_for_width(8) - 10.0).abs() < 1e-9);
        let d16 = v.delay_for_width(16);
        assert!(
            d16 > 10.0 && d16 < 20.0,
            "log scaling grows sub-linearly: {d16}"
        );
    }

    #[test]
    fn constant_delay_ignores_width() {
        let v = ModuleVariant::new(
            "logic_unit",
            OpClass::Logic,
            3.0,
            16.0,
            0.06,
            DelayScaling::Constant,
        );
        assert_eq!(v.delay_for_width(1), v.delay_for_width(64));
    }

    #[test]
    fn capacitance_scales_linearly_with_width() {
        let v = ripple();
        assert!((v.capacitance_for_width(16) - 0.40).abs() < 1e-9);
        assert!((v.capacitance_for_width(4) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn multiplier_area_grows_quadratically() {
        let v = ModuleVariant::new(
            "array_multiplier",
            OpClass::Mul,
            36.0,
            400.0,
            1.8,
            DelayScaling::Linear,
        );
        assert!((v.area_for_width(16) - 1600.0).abs() < 1e-9);
        let add = ripple();
        assert!((add.area_for_width(16) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_name_and_class() {
        let s = ripple().to_string();
        assert!(s.contains("ripple_adder"));
        assert!(s.contains("add/sub"));
    }

    #[test]
    fn zero_width_is_treated_as_one_bit() {
        let v = ripple();
        assert!(v.delay_for_width(0) > 0.0);
        assert!(v.capacitance_for_width(0) > 0.0);
    }
}
